#!/usr/bin/env python
"""Regenerate (or verify) the golden scenario corpus under tests/data/golden/.

Usage:
    python scripts/regenerate_golden.py             # rewrite stale files
    python scripts/regenerate_golden.py --check     # verify only, exit 1 on drift
    python scripts/regenerate_golden.py --only figure1 --only torus-flood

Each golden file records one registered scenario's default-parameter run
(``Run.to_dict``) together with the KnowledgeChecker answers for all boundary
node pairs at every process's final node.  The regression test
(tests/integration/test_golden_corpus.py) requires the stored bytes to match
what the current code produces, so rerun this script -- and review the diff --
whenever an intentional behavioural change moves the corpus.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.golden import check_corpus, write_corpus  # noqa: E402
from repro.scenarios import list_scenarios  # noqa: E402

GOLDEN_DIR = REPO_ROOT / "tests" / "data" / "golden"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the stored corpus without writing; exit 1 on any drift",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="SCENARIO",
        help="restrict to one scenario (repeatable); default: all registered",
    )
    args = parser.parse_args(argv)

    names = args.only if args.only else list(list_scenarios())
    unknown = sorted(set(names) - set(list_scenarios()))
    if unknown:
        print(f"error: unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.check:
        problems = check_corpus(GOLDEN_DIR, names)
        for name, problem in problems:
            print(f"[drift] {name}: {problem}")
        if problems:
            print(f"{len(problems)} stale/missing golden file(s)", file=sys.stderr)
            return 1
        print(f"golden corpus OK ({len(names)} scenario(s))")
        return 0

    results = write_corpus(GOLDEN_DIR, names)
    for name, path, changed in results:
        status = "rewrote" if changed else "unchanged"
        print(f"[{status}] {name} -> {path.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
