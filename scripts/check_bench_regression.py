#!/usr/bin/env python
"""Diff freshly measured BENCH_*.json artifacts against committed baselines.

Usage:
    python scripts/check_bench_regression.py \
        [--current benchmarks/BENCH_runs.json --baseline benchmarks/BENCH_runs.baseline.json] \
        [--tolerance 2.0] [--strict-times]

With no ``--current``/``--baseline`` pair, every committed
``benchmarks/BENCH_<name>.baseline.json`` is checked against its
``benchmarks/BENCH_<name>.json`` sibling, so the whole bench trajectory
(runs, knowledge, coordination, ...) is gated by one invocation; adding a
new benchmark family to CI is just committing its baseline.

Ratio metrics (``*_speedup``) are hardware-robust, so they are gated hard:
``current >= min(baseline / tolerance, speedup-cap)``.  The cap (default 25x,
five times the benches' own 5x acceptance gates) keeps extreme baselines from
becoming flaky requirements -- a 900x baseline measured against a
sub-millisecond denominator must not hard-fail CI because one GC pause turned
it into 400x.  Absolute timings (``*_s``) vary with the runner, so by default
they only warn when ``current > baseline * tolerance``; ``--strict-times``
turns those warnings into failures.  Counter metrics (anything else, e.g.
``steps``/``queries``) must match the baseline exactly -- they drift only
when the workload itself changed, which should be a conscious re-record.  A
workload present in the baseline but missing from the current artifact is
always a failure (the bench silently lost coverage).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
BASELINE_SUFFIX = ".baseline.json"


def load(path: Path) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def artifact_pairs() -> List[Tuple[Path, Path]]:
    """Every committed baseline with its current-artifact sibling."""
    pairs = []
    for baseline in sorted(BENCH_DIR.glob(f"BENCH_*{BASELINE_SUFFIX}")):
        current = baseline.with_name(
            baseline.name[: -len(BASELINE_SUFFIX)] + ".json"
        )
        pairs.append((current, baseline))
    return pairs


def check_pair(
    current_path: Path,
    baseline_path: Path,
    tolerance: float,
    speedup_cap: float,
    strict_times: bool,
    failures: List[str],
    warnings: List[str],
) -> bool:
    """Diff one artifact pair; returns False when the current file is missing."""
    label = current_path.name
    try:
        current = load(current_path)
    except FileNotFoundError:
        failures.append(f"{label}: missing current artifact {current_path}")
        return False
    baseline = load(baseline_path)

    for workload, base_numbers in sorted(baseline.get("workloads", {}).items()):
        cur_numbers = current.get("workloads", {}).get(workload)
        if cur_numbers is None:
            failures.append(f"{label}:{workload}: missing from current artifact")
            continue
        for metric, base_value in sorted(base_numbers.items()):
            cur_value = cur_numbers.get(metric)
            where = f"{label}:{workload}.{metric}"
            if cur_value is None:
                failures.append(f"{where}: missing from current artifact")
                continue
            if metric.endswith("_speedup"):
                floor = min(base_value / tolerance, speedup_cap)
                status = "ok" if cur_value >= floor else "FAIL"
                print(
                    f"[{status}] {where}: {cur_value:.1f}x "
                    f"(baseline {base_value:.1f}x, floor {floor:.1f}x)"
                )
                if cur_value < floor:
                    failures.append(f"{where}: {cur_value:.1f}x < floor {floor:.1f}x")
            elif metric.endswith("_s"):
                ceiling = base_value * tolerance
                regressed = cur_value > ceiling
                status = "warn" if (regressed and not strict_times) else (
                    "FAIL" if regressed else "ok"
                )
                print(
                    f"[{status}] {where}: {cur_value:.6f}s "
                    f"(baseline {base_value:.6f}s, ceiling {ceiling:.6f}s)"
                )
                if regressed:
                    message = f"{where}: {cur_value:.6f}s > ceiling {ceiling:.6f}s"
                    (failures if strict_times else warnings).append(message)
            else:
                status = "ok" if cur_value == base_value else "FAIL"
                print(f"[{status}] {where}: {cur_value} (baseline {base_value})")
                if cur_value != base_value:
                    failures.append(
                        f"{where}: workload drifted ({cur_value} != {base_value})"
                    )
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=Path,
        default=None,
        help="check a single artifact (requires --baseline or infers the sibling)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline for --current (default: every benchmarks/BENCH_*.baseline.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="allowed regression factor (default: 2.0)",
    )
    parser.add_argument(
        "--strict-times",
        action="store_true",
        help="fail (instead of warn) on absolute-time regressions",
    )
    parser.add_argument(
        "--speedup-cap",
        type=float,
        default=25.0,
        help="ceiling on the speedup floor derived from the baseline (default: 25x)",
    )
    args = parser.parse_args(argv)

    if args.current is not None or args.baseline is not None:
        current = args.current
        baseline = args.baseline
        if baseline is None:
            baseline = current.with_name(current.stem + BASELINE_SUFFIX)
        if current is None:
            current = baseline.with_name(
                baseline.name[: -len(BASELINE_SUFFIX)] + ".json"
            )
        pairs = [(current, baseline)]
    else:
        pairs = artifact_pairs()
    if not pairs:
        print("error: no benchmarks/BENCH_*.baseline.json found", file=sys.stderr)
        return 2

    failures: List[str] = []
    warnings: List[str] = []
    missing_current = False
    for current, baseline in pairs:
        if not check_pair(
            current,
            baseline,
            args.tolerance,
            args.speedup_cap,
            args.strict_times,
            failures,
            warnings,
        ):
            missing_current = True

    for message in warnings:
        print(f"warning: {message}")
    if missing_current:
        print(
            "run: PYTHONPATH=src python -m pytest benchmarks/ -q  (to refresh artifacts)"
        )
    if failures:
        for message in failures:
            print(f"regression: {message}", file=sys.stderr)
        return 2 if missing_current else 1
    print(f"bench trajectory OK vs baseline ({len(pairs)} artifact pair(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
