#!/usr/bin/env python
"""Diff a freshly measured BENCH_runs.json against the committed baseline.

Usage:
    python scripts/check_bench_regression.py \
        [--current benchmarks/BENCH_runs.json] \
        [--baseline benchmarks/BENCH_runs.baseline.json] \
        [--tolerance 2.0] [--strict-times]

Ratio metrics (``*_speedup``) are hardware-robust, so they are gated hard:
``current >= min(baseline / tolerance, speedup-cap)``.  The cap (default 25x,
five times the bench's own 5x acceptance gate) keeps extreme baselines from
becoming flaky requirements -- a 900x baseline measured against a
sub-millisecond denominator must not hard-fail CI because one GC pause turned
it into 400x.  Absolute timings (``*_s``) vary with the runner, so by default
they only warn when ``current > baseline * tolerance``; ``--strict-times``
turns those warnings into failures.  A workload present in the baseline but
missing from the current artifact is always a failure (the bench silently
lost coverage).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load(path: Path) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", type=Path, default=REPO_ROOT / "benchmarks" / "BENCH_runs.json"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "BENCH_runs.baseline.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="allowed regression factor (default: 2.0)",
    )
    parser.add_argument(
        "--strict-times",
        action="store_true",
        help="fail (instead of warn) on absolute-time regressions",
    )
    parser.add_argument(
        "--speedup-cap",
        type=float,
        default=25.0,
        help="ceiling on the speedup floor derived from the baseline (default: 25x)",
    )
    args = parser.parse_args(argv)

    try:
        current = load(args.current)
    except FileNotFoundError:
        print(f"error: missing current artifact {args.current}", file=sys.stderr)
        print("run: PYTHONPATH=src python -m pytest benchmarks/test_bench_runs.py -q")
        return 2
    baseline = load(args.baseline)

    failures = []
    warnings = []
    for workload, base_numbers in sorted(baseline.get("workloads", {}).items()):
        cur_numbers = current.get("workloads", {}).get(workload)
        if cur_numbers is None:
            failures.append(f"{workload}: missing from current artifact")
            continue
        for metric, base_value in sorted(base_numbers.items()):
            cur_value = cur_numbers.get(metric)
            if cur_value is None:
                failures.append(f"{workload}.{metric}: missing from current artifact")
                continue
            if metric.endswith("_speedup"):
                floor = min(base_value / args.tolerance, args.speedup_cap)
                status = "ok" if cur_value >= floor else "FAIL"
                print(
                    f"[{status}] {workload}.{metric}: {cur_value:.1f}x "
                    f"(baseline {base_value:.1f}x, floor {floor:.1f}x)"
                )
                if cur_value < floor:
                    failures.append(
                        f"{workload}.{metric}: {cur_value:.1f}x < floor {floor:.1f}x"
                    )
            elif metric.endswith("_s"):
                ceiling = base_value * args.tolerance
                regressed = cur_value > ceiling
                status = "warn" if (regressed and not args.strict_times) else (
                    "FAIL" if regressed else "ok"
                )
                print(
                    f"[{status}] {workload}.{metric}: {cur_value:.6f}s "
                    f"(baseline {base_value:.6f}s, ceiling {ceiling:.6f}s)"
                )
                if regressed:
                    message = (
                        f"{workload}.{metric}: {cur_value:.6f}s > ceiling {ceiling:.6f}s"
                    )
                    (failures if args.strict_times else warnings).append(message)

    for message in warnings:
        print(f"warning: {message}")
    if failures:
        for message in failures:
            print(f"regression: {message}", file=sys.stderr)
        return 1
    print("bench trajectory OK vs baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
