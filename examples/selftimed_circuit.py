"""Bundled-data hand-off in a self-timed (clockless) circuit.

The paper points at asynchronous VLSI as a natural home for the bcm model:
there is no clock, but wire and gate delays have known bounds.  The classic
bundled-data discipline is exactly an ``Early`` coordination problem:

* the sender's controller (process ``Ctrl``, the paper's C) fires a transfer;
* the *data* propagates to the receiving latch (process ``Latch``, the paper's
  B), which must be set up -- action ``b`` -- at least ``setup`` time units
  *before*
* the *request* edge travels down its delay-matched line and triggers the
  capture (process ``Capture``, the paper's A, performing action ``a``).

``Early<b --setup--> a>`` holds by construction when the request line's lower
bound exceeds the data path's upper bound plus the setup time -- the Figure 1
fork with the roles of the two legs swapped.  The example also shows what
happens when the delay matching is too tight: the optimal protocol simply
refuses to certify the setup time (it never acts), rather than acting unsafely.

Run with:  python examples/selftimed_circuit.py
"""

from repro.coordination import OptimalCoordinationProtocol, early_task, evaluate, guaranteed_margin
from repro.scenarios import Scenario
from repro.simulation import (
    ExternalInput,
    GO_TRIGGER,
    ProtocolAssignment,
    SeededRandomDelivery,
    actor_protocol,
    go_sender_protocol,
    timed_network,
)
from repro.viz import action_table, spacetime_diagram


def stage(request_bounds, data_bounds, setup: int, seed: int = 0) -> tuple[Scenario, object]:
    """One bundled-data stage: Ctrl fans out to the capture path and the data path."""
    net = timed_network(
        {
            ("Ctrl", "Capture"): request_bounds,  # delay-matched request line
            ("Ctrl", "Latch"): data_bounds,  # combinational data path
        }
    )
    task = early_task(setup, actor_a="Capture", actor_b="Latch", go_sender="Ctrl")
    protocols = ProtocolAssignment()
    protocols.assign("Ctrl", go_sender_protocol())
    protocols.assign("Capture", actor_protocol("a", "Ctrl"))
    protocols.assign("Latch", OptimalCoordinationProtocol(task))
    scenario = Scenario(
        name="bundled-data-stage",
        timed_network=net,
        protocols=protocols,
        external_inputs=[ExternalInput(2, "Ctrl", GO_TRIGGER)],
        delivery=SeededRandomDelivery(seed=seed),
        horizon=25,
        description=(
            f"request line {request_bounds}, data path {data_bounds}, setup {setup}"
        ),
    )
    return scenario, task


def main() -> None:
    print("Well-matched stage: request line (8, 10), data path (1, 3), setup 4")
    scenario, task = stage(request_bounds=(8, 10), data_bounds=(1, 3), setup=4)
    print(
        "statically guaranteed setup margin (L_req - U_data): "
        f"{guaranteed_margin(scenario.timed_network, task)}"
    )
    for seed in range(3):
        run, _ = scenario.with_delivery(SeededRandomDelivery(seed=seed)).run(), None
        outcome = evaluate(run, task)
        print(f"  seed {seed}: latch set up at t={outcome.b_time}, capture at t={outcome.a_time}, "
              f"setup achieved {outcome.achieved_margin} -> satisfied={outcome.satisfied}")
        assert outcome.satisfied
        assert outcome.b_performed, "a well-matched stage always certifies the setup time"
    print()
    print(spacetime_diagram(scenario.run(), end=14))
    print(action_table(scenario.run()))
    print()

    print("Badly-matched stage: request line (3, 5), data path (1, 4), setup 4")
    tight_scenario, tight_task = stage(request_bounds=(3, 5), data_bounds=(1, 4), setup=4)
    print(
        "statically guaranteed setup margin: "
        f"{guaranteed_margin(tight_scenario.timed_network, tight_task)}"
    )
    run = tight_scenario.run()
    outcome = evaluate(run, tight_task)
    print(
        f"  latch certified the hand-off: {outcome.b_performed} "
        "(the optimal protocol refuses rather than risking a setup violation)"
    )
    assert outcome.satisfied


if __name__ == "__main__":
    main()
