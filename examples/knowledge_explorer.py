"""Exploring what a process can *know* about timing it never observed.

This example digs one level below the coordination protocols and exposes the
paper's analysis machinery directly:

* the basic bounds graph ``GB(r)`` of a run and its longest paths (the tight
  constraints of Theorem 2, realised by the slow run);
* the extended bounds graph ``GE(r, sigma)`` of an observer, including the
  "over the horizon" inferences that auxiliary nodes provide; and
* how the observer's knowledge of ``time(b-node) - time(a-node)`` sharpens
  step by step as more of the zigzag pattern becomes visible to it.

Run with:  python examples/knowledge_explorer.py
"""

from repro.core import (
    ExtendedBoundsGraph,
    KnowledgeChecker,
    basic_bounds_graph,
    check_theorem2,
    general,
    past_nodes,
    slow_run,
)
from repro.scenarios import figure2b_scenario, zigzag_chain_equation_weight
from repro.viz import extended_graph_listing, path_listing, spacetime_diagram


def main() -> None:
    margin = 7
    scenario = figure2b_scenario(margin=margin)
    run = scenario.run()
    print("Run (Figure 2b pattern):")
    print(spacetime_diagram(run, end=20))
    print()

    go_node = next(r.receiver_node for r in run.external_deliveries if r.process == "C")
    theta_a = general(go_node, ("C", "A"))
    a_node = run.resolve(theta_a)
    b_record = run.find_action("B", "b")
    assert b_record is not None

    # --- Theorem 2: the tightest provable constraint between a's and b's nodes.
    report = check_theorem2(run, a_node, b_record.node)
    print(
        f"Longest GB(r) path from a's node to b's node has weight {report.constraint_weight} "
        f"(Equation (1) gives {zigzag_chain_equation_weight(scenario, 2)})"
    )
    graph = basic_bounds_graph(run)
    weight, edges = graph.longest_path(a_node, b_record.node)
    print(path_listing(edges, run))
    slowed = slow_run(run, b_record.node)
    print(
        "In the slow run (every constraint tight) the gap becomes exactly "
        f"{slowed.time_of(b_record.node) - slowed.time_of(a_node)}."
    )
    print()

    # --- How B's knowledge evolves along its own timeline.
    print("B's knowledge of  time(B's node) - time(a)  as its local state grows:")
    for time, node in run.timelines["B"]:
        if node.is_initial or go_node not in past_nodes(node):
            continue
        checker = KnowledgeChecker(node, run.timed_network)
        known = checker.max_known_gap(theta_a, node)
        marker = "  <- acts here" if node == b_record.node else ""
        print(f"  t={time:>3}: B knows the gap is at least {known}{marker}")
    print()

    # --- The extended bounds graph that produced those answers.
    sigma = b_record.node
    extended = ExtendedBoundsGraph(sigma, run.timed_network)
    print("Extended bounds graph at B's action node:")
    print(extended_graph_listing(extended, run))


if __name__ == "__main__":
    main()
