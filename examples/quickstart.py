"""Quickstart: coordinate two actions without clocks, using zigzag causality.

This walks the full pipeline on the paper's Figure 2b pattern:

1. build a timed network (channels with lower/upper transmission bounds);
2. simulate a run in which C spontaneously triggers A's action ``a`` and B
   must perform ``b`` at least ``x`` time units later (``Late<a --x--> b>``);
3. let B run the paper's optimal Protocol 2, which acts exactly when a
   sigma-visible zigzag of weight >= x exists;
4. inspect *why* B was allowed to act: the knowledge computed from its
   extended bounds graph, and the witnessing zigzag pattern.

Run with:  python examples/quickstart.py
"""

from repro.core import KnowledgeChecker, TwoLeggedFork, ZigzagPattern, general, is_visible_zigzag
from repro.coordination import evaluate, late_task
from repro.scenarios import figure2b_scenario, zigzag_chain_equation_weight
from repro.viz import action_table, spacetime_diagram


def main() -> None:
    margin = 5
    task = late_task(margin)

    # Figure 2b: C -> {A, D}, E -> {D, B}, plus D -> B reports that make the
    # zigzag visible to B.  B runs the optimal protocol for Late<a --5--> b>.
    scenario = figure2b_scenario(margin=margin)
    print(f"Scenario: {scenario.name} -- {scenario.description}\n")

    run = scenario.run()
    print("Space-time diagram (time flows right, G! = external trigger):")
    print(spacetime_diagram(run, end=min(run.horizon, 22)))
    print()
    print("Actions performed:")
    print(action_table(run))
    print()

    outcome = evaluate(run, task)
    print(f"Task {task.describe()}: {outcome.describe()}")
    assert outcome.satisfied

    # Why was B allowed to act?  Reconstruct its knowledge at the action node.
    sigma = run.find_action("B", "b").node
    go_node = next(r.receiver_node for r in run.external_deliveries if r.process == "C")
    theta_a = general(go_node, ("C", "A"))  # the node at which A performs `a`
    checker = KnowledgeChecker(sigma, run.timed_network)
    known = checker.max_known_gap(theta_a, sigma)
    print(
        f"\nAt its action node, B knows  time(b) - time(a) >= {known} "
        f"(required margin: {margin})."
    )

    # The witnessing sigma-visible zigzag (Figure 2b's two forks).
    externals = {r.process: r.receiver_node for r in run.external_deliveries}
    pattern = ZigzagPattern(
        (
            TwoLeggedFork(general(externals["C"]), ("C", "D"), ("C", "A")),
            TwoLeggedFork(general(externals["E"]), ("E", "B"), ("E", "D")),
        )
    )
    print(f"Witnessing zigzag: {pattern.describe()}")
    print(f"  weight in this run: {pattern.weight(run)}")
    print(f"  visible to B at its action node: {is_visible_zigzag(pattern, sigma, run)}")
    print(
        "  Equation (1) fork-weight sum: "
        f"{zigzag_chain_equation_weight(scenario, 2)}"
    )


if __name__ == "__main__":
    main()
