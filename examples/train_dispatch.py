"""Train dispatch over a single-track section, without clocks.

The paper's introduction motivates timed coordination with railway dispatch:
two trains must use a single-lane section of track, and the second may enter
only a safety margin after the first has been cleared in.  Here:

* ``Control`` (process C) spontaneously decides to dispatch; its "go" message
  clears the *express* (process A) into the section -- action ``a``.
* The *freight* dispatcher (process B) must release its train -- action ``b``
  -- at least ``margin`` minutes after the express entered, so the section has
  drained (``Late<a --margin--> b>``).
* Nobody has a clock.  Signal boxes relay messages with known lower/upper
  latencies, and the freight dispatcher may only act when the message pattern
  it has seen *proves* the margin.

Two station layouts are compared: one where only a direct control->freight
channel exists (a single fork suffices), and one where the proof has to go
through an intermediate junction's report (a visible zigzag, Figure 2b style).

Run with:  python examples/train_dispatch.py
"""

from repro.coordination import (
    ChainLowerBoundProtocol,
    OptimalCoordinationProtocol,
    evaluate,
    guaranteed_margin,
    late_task,
)
from repro.scenarios import Scenario
from repro.simulation import (
    ExternalInput,
    GO_TRIGGER,
    LatestDelivery,
    ProtocolAssignment,
    actor_protocol,
    go_sender_protocol,
    timed_network,
)
from repro.viz import action_table, spacetime_diagram


def fork_layout(margin: int) -> Scenario:
    """Layout 1: control reaches both dispatchers directly (Figure 1 pattern).

    The line to the freight yard is slow (high lower bound), the line to the
    express platform is fast (low upper bound): the difference is the margin
    the layout guarantees by construction.
    """
    net = timed_network(
        {
            ("Control", "Express"): (2, 4),  # clear the express in: at most 4 min
            ("Control", "Freight"): (12, 15),  # the freight yard telegraph is slow
        }
    )
    task = late_task(margin, actor_a="Express", actor_b="Freight", go_sender="Control")
    protocols = ProtocolAssignment()
    protocols.assign("Control", go_sender_protocol())
    protocols.assign("Express", actor_protocol("a", "Control"))
    protocols.assign("Freight", OptimalCoordinationProtocol(task))
    return Scenario(
        name="train-dispatch-fork",
        timed_network=net,
        protocols=protocols,
        external_inputs=[ExternalInput(3, "Control", GO_TRIGGER)],
        delivery=LatestDelivery(),  # worst case: every telegraph is as slow as allowed
        horizon=40,
        description=(
            "single-fork layout, guaranteed margin "
            f"{net.L('Control','Freight') - net.U('Control','Express')}"
        ),
    )


def junction_layout(margin: int) -> Scenario:
    """Layout 2: the freight dispatcher hears only via the junction (zigzag pattern).

    Control clears the express and informs the junction; an independent yard
    master (process ``Yard``) later messages both the junction and the freight
    dispatcher.  The junction's report on the *order* in which it heard the two
    is what lets the freight dispatcher prove the margin -- a visible zigzag.
    """
    net = timed_network(
        {
            ("Control", "Express"): (2, 4),
            ("Control", "Junction"): (8, 10),
            ("Yard", "Junction"): (1, 3),
            ("Yard", "Freight"): (9, 12),
            ("Junction", "Freight"): (1, 2),
        }
    )
    task = late_task(margin, actor_a="Express", actor_b="Freight", go_sender="Control")
    protocols = ProtocolAssignment()
    protocols.assign("Control", go_sender_protocol())
    protocols.assign("Express", actor_protocol("a", "Control"))
    protocols.assign("Yard", go_sender_protocol("yard_ready"))
    protocols.assign("Freight", OptimalCoordinationProtocol(task))
    return Scenario(
        name="train-dispatch-junction",
        timed_network=net,
        protocols=protocols,
        external_inputs=[
            ExternalInput(3, "Control", GO_TRIGGER),
            ExternalInput(14, "Yard", "yard_ready"),
        ],
        delivery=LatestDelivery(),
        horizon=45,
        description="zigzag layout: the proof goes through the junction's report",
    )


def main() -> None:
    margin = 6
    for build in (fork_layout, junction_layout):
        scenario = build(margin)
        task = late_task(margin, actor_a="Express", actor_b="Freight", go_sender="Control")
        print("=" * 72)
        print(f"{scenario.name}: {scenario.description}")
        static = guaranteed_margin(scenario.timed_network, task)
        print(f"statically guaranteed single-fork margin: {static}")
        run = scenario.run()
        print(spacetime_diagram(run, end=min(run.horizon, 32)))
        print(action_table(run))
        outcome = evaluate(run, task)
        print(f"-> {outcome.describe()}")
        assert outcome.satisfied, "the dispatcher protocol must never violate the margin"

        # Contrast with a chain-based dispatcher, which waits to *hear* that the
        # express entered; on these layouts no express->freight telegraph exists,
        # so it can never release the freight train at all.
        chain_scenario = scenario.with_protocol("Freight", ChainLowerBoundProtocol(task))
        chain_run = chain_scenario.run()
        chain_outcome = evaluate(chain_run, task)
        print(
            "chain-based dispatcher released the freight train: "
            f"{chain_outcome.b_performed} (optimal released it: {outcome.b_performed})"
        )
        print()


if __name__ == "__main__":
    main()
