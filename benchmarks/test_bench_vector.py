"""Benchmarks for the vectorized longest-path kernels on large bounds graphs.

The ``bounds_stats`` analysis pass asks the engine for a row per final node
-- dozens of sources against thousands of constraint edges on the grid and
torus workloads a sweep produces.  The list kernel pays Python-interpreter
cost per edge relaxation; the numpy kernels relax whole dst-sorted edge
blocks per operation (chunked ``maximum.reduceat`` sweeps in alternating
directions, see :mod:`repro.core.longest_paths`), and the multi-source batch
entry point (:meth:`LongestPathEngine.rows`) settles every requested row
against one ``(nodes, sources)`` matrix.

These benchmarks build the basic bounds graph of large grid/torus flooding
runs (both above ``VECTOR_MIN_EDGES``, so the auto kernel choice also picks
numpy), compute all final-node rows through a forced-vectorized and a
forced-list engine, assert bit-identical results, and gate a >= 5x speedup.
Numbers are appended to ``BENCH_vector.json``, which CI diffs against the
committed ``BENCH_vector.baseline.json`` via
``scripts/check_bench_regression.py``.

Without numpy installed the forced-vectorized engine silently degrades to
the list kernel, so the gate is skipped (the agreement assertions still
run); the CI bench-smoke job installs numpy precisely to keep this gate
live.
"""

import time
from pathlib import Path

import pytest

from _bench_utils import record, report

from repro.core.bounds_graph import basic_bounds_graph
from repro.core.longest_paths import VECTOR_MIN_EDGES, LongestPathEngine, _np
from repro.scenarios import get_scenario
from repro.simulation.interning import intern_pool

#: Where the measured trajectory is written (diffed against the committed
#: ``BENCH_vector.baseline.json`` by ``scripts/check_bench_regression.py``).
ARTIFACT = Path(__file__).resolve().parent / "BENCH_vector.json"

#: The acceptance criterion: vectorized multi-source rows >= 5x faster than
#: the list kernel on large grid/torus bounds graphs.
REQUIRED_SPEEDUP = 5.0

#: ``(name, scenario, params)``.  Sized so the bounds graphs comfortably
#: exceed ``VECTOR_MIN_EDGES`` (the auto-mode threshold) while the whole
#: file stays a few seconds on slow CI hardware.
WORKLOADS = [
    ("grid-bounds", "grid-flood", {"rows": 7, "cols": 7, "horizon": 20}),
    ("torus-bounds", "torus-flood", {"rows": 5, "cols": 5, "horizon": 24}),
]


def bounds_workload(scenario, params):
    """The bounds graph and final-node sources of one flooding run."""
    run = get_scenario(scenario).build(**params).run()
    graph = basic_bounds_graph(run)
    finals = sorted(
        (run.final_node(process) for process in run.processes),
        key=lambda node: node.process,
    )
    return graph, finals


def timed_rows(graph, finals, vectorized, repetitions):
    """Min-of-N wall time of a cold engine answering all final-node rows."""
    best = float("inf")
    rows = None
    for _ in range(repetitions):
        engine = LongestPathEngine(graph, vectorized=vectorized)
        started = time.perf_counter()
        rows = engine.rows(finals)
        best = min(best, time.perf_counter() - started)
    return rows, best


@pytest.mark.parametrize(
    "name,scenario,params", WORKLOADS, ids=[w[0] for w in WORKLOADS]
)
def test_bench_vectorized_rows(name, scenario, params):
    """Vectorized multi-source rows >= 5x faster than the list kernel."""
    with intern_pool():
        graph, finals = bounds_workload(scenario, params)
        edges = graph.edge_count()
        assert edges >= VECTOR_MIN_EDGES, (
            f"{name}: workload too small ({edges} edges) to exercise the "
            "auto-vectorization threshold"
        )

        list_rows, list_s = timed_rows(graph, finals, False, repetitions=2)
        vector_rows, vector_s = timed_rows(graph, finals, True, repetitions=3)

    assert vector_rows == list_rows, "vectorized rows disagree with list rows"

    speedup = list_s / vector_s if vector_s > 0 else float("inf")
    report(
        f"vectorized kernels ({name})",
        "matrix relaxation beats per-edge Python loops on GB(r) at sweep scale",
        f"{len(graph)} nodes, {edges} edges, {len(finals)} sources: "
        f"list {list_s * 1e3:.1f}ms, vector {vector_s * 1e3:.1f}ms, "
        f"speedup {speedup:.1f}x",
    )
    record(
        ARTIFACT,
        name,
        {
            "horizon": params["horizon"],
            "nodes": len(graph),
            "edges": edges,
            "sources": len(finals),
            "list_s": round(list_s, 6),
            "vector_s": round(vector_s, 6),
            "vector_speedup": round(speedup, 1),
        },
    )

    if _np is None:
        pytest.skip("numpy unavailable: forced-vectorized degraded to list kernel")
    assert speedup >= REQUIRED_SPEEDUP, (
        f"{name}: vectorized rows only {speedup:.1f}x faster "
        f"({list_s * 1e3:.1f}ms vs {vector_s * 1e3:.1f}ms)"
    )


def test_bench_vectorized_rows_throughput(benchmark):
    """pytest-benchmark timing of the batched vectorized rows (grid workload)."""
    name, scenario, params = WORKLOADS[0]
    with intern_pool():
        graph, finals = bounds_workload(scenario, params)
        expected = LongestPathEngine(graph, vectorized=False).rows(finals)

        def batch():
            return LongestPathEngine(graph, vectorized=True).rows(finals)

        rows = benchmark(batch)
    assert rows == expected
