"""Shared helpers for the benchmark harness.

Every benchmark both *times* the relevant pipeline (via pytest-benchmark) and
*asserts* the qualitative claim of the figure/theorem it reproduces, printing a
"paper vs measured" row that EXPERIMENTS.md summarises.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional


def report(experiment: str, paper_claim: str, measured: str) -> None:
    """Print one paper-vs-measured row (visible with ``pytest -s`` or in captured logs)."""
    print(f"\n[{experiment}] paper: {paper_claim} | measured: {measured}")


def record(
    artifact: Path,
    workload: str,
    numbers: Dict[str, object],
    top_level: Optional[Dict[str, object]] = None,
) -> None:
    """Merge one workload's numbers into a ``BENCH_*.json`` trajectory artifact.

    The artifacts are gitignored; CI regenerates them by running the bench
    files and then diffs them against the committed ``*.baseline.json``
    siblings via ``scripts/check_bench_regression.py``.  ``top_level``
    entries (e.g. a shared horizon) sit next to ``format``/``workloads``.
    """
    data: Dict[str, object] = {"format": 1, "workloads": {}}
    if artifact.exists():
        try:
            data = json.loads(artifact.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            pass
    if top_level:
        data.update(top_level)
    data.setdefault("workloads", {})[workload] = numbers
    artifact.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
