"""Shared helpers for the benchmark harness.

Every benchmark both *times* the relevant pipeline (via pytest-benchmark) and
*asserts* the qualitative claim of the figure/theorem it reproduces, printing a
"paper vs measured" row that EXPERIMENTS.md summarises.
"""

from __future__ import annotations


def report(experiment: str, paper_claim: str, measured: str) -> None:
    """Print one paper-vs-measured row (visible with ``pytest -s`` or in captured logs)."""
    print(f"\n[{experiment}] paper: {paper_claim} | measured: {measured}")
