"""Benchmarks for the hash-consed run substrate (history interning, PR 3).

The bcm model is full-information: every message embeds its sender's entire
history, so a run's state is a deeply nested DAG in which the same prefix is
re-embedded thousands of times.  The seed represented histories as full step
tuples with structural equality, which made ``History.extend`` O(n) (O(n^2)
per process per run), and made deep equality between two independently built
runs re-walk the shared structure exponentially often (a torus-flood ``Run
==`` took seconds).  The interning layer (:mod:`repro.simulation.interning`)
replaces that substrate: parent-pointer history chains, one object per
structural value, equality by identity, causal pasts as bitsets.

These benchmarks keep a faithful replica of the *seed* substrate (full-copy
``extend``, structural ``__eq__``/``__hash__``) next to the interned one,
run both on identical grid/torus/tree flooding workloads, and gate a >= 5x
speedup on the combined build-path (history extension) + equality substrate
cost.  Every workload's numbers are also appended to ``BENCH_runs.json`` so
CI can diff the trajectory against the committed baseline.
"""

import time
from pathlib import Path

import pytest

from _bench_utils import record, report

from repro.core.causality import boundary_nodes, past_nodes
from repro.scenarios import get_scenario
from repro.simulation.interning import intern_pool
from repro.simulation.messages import History, MessageReceipt

#: Where the measured trajectory is written (diffed against the committed
#: ``BENCH_runs.baseline.json`` by ``scripts/check_bench_regression.py``).
ARTIFACT = Path(__file__).resolve().parent / "BENCH_runs.json"

#: Deep enough for the quadratic/exponential structural costs to be clearly
#: visible while the structural reference still finishes in well under a
#: minute on slow CI hardware.
HORIZON = 14

WORKLOADS = [
    ("grid-flood", {"rows": 3, "cols": 3, "horizon": HORIZON}),
    ("torus-flood", {"horizon": HORIZON}),
    ("tree-flood", {"horizon": HORIZON}),
]

#: The acceptance criterion: interned substrate >= 5x faster on construction
#: plus equality, on every flooding workload.
REQUIRED_SPEEDUP = 5.0


# ---------------------------------------------------------------------------
# A faithful replica of the seed substrate.  ``extend`` re-normalises and
# re-hashes the full step tuple (exactly what the seed constructor did), and
# equality is structural with only the per-object identity shortcut the seed
# had -- no interning, so two independently built replicas share nothing.
# ---------------------------------------------------------------------------


class _StructuralHistory:
    __slots__ = ("process", "steps", "_hash")

    def __init__(self, process, steps=()):
        normalised = tuple(tuple(step) for step in steps)
        object.__setattr__(self, "process", str(process))
        object.__setattr__(self, "steps", normalised)
        object.__setattr__(self, "_hash", hash(("hist", self.process, normalised)))

    def extend(self, step):
        return _StructuralHistory(self.process, self.steps + (tuple(step),))

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        if self is other:
            return True
        return (
            self._hash == other._hash
            and self.process == other.process
            and self.steps == other.steps
        )


class _StructuralMessage:
    __slots__ = ("sender", "recipients", "sender_history", "payload", "_hash")

    def __init__(self, sender, recipients, sender_history, payload):
        object.__setattr__(self, "sender", sender)
        object.__setattr__(self, "recipients", recipients)
        object.__setattr__(self, "sender_history", sender_history)
        object.__setattr__(self, "payload", payload)
        object.__setattr__(
            self, "_hash", hash(("msg", sender, recipients, sender_history, payload))
        )

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        if self is other:
            return True
        return (
            self._hash == other._hash
            and self.sender == other.sender
            and self.recipients == other.recipients
            and self.payload == other.payload
            and self.sender_history == other.sender_history
        )


class _StructuralReceipt:
    __slots__ = ("message", "_hash")

    def __init__(self, message):
        object.__setattr__(self, "message", message)
        object.__setattr__(self, "_hash", hash(("recv", message)))

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        if self is other:
            return True
        return self.message == other.message


def _replicate_histories(run):
    """Rebuild the run's final histories on the structural substrate.

    Sharing *within* one replica mirrors one seed run (the engine reused
    message objects); separate calls share nothing, exactly like two
    independently simulated seed runs.
    """
    history_memo, message_memo = {}, {}

    def convert_history(history):
        replica = history_memo.get(id(history))
        if replica is None:
            steps = tuple(
                tuple(convert_observation(obs) for obs in step)
                for step in history.steps
            )
            replica = _StructuralHistory(history.process, steps)
            history_memo[id(history)] = replica
        return replica

    def convert_observation(observation):
        if isinstance(observation, MessageReceipt):
            message = observation.message
            replica = message_memo.get(id(message))
            if replica is None:
                replica = _StructuralMessage(
                    message.sender,
                    message.recipients,
                    convert_history(message.sender_history),
                    message.payload,
                )
                message_memo[id(message)] = replica
            return _StructuralReceipt(replica)
        return observation  # external receipts / actions are cheap leaves

    return {p: convert_history(run.final_node(p).history) for p in run.processes}


# ---------------------------------------------------------------------------
# The gated benchmark
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,params", WORKLOADS, ids=[w[0] for w in WORKLOADS])
def test_bench_substrate_speedup(name, params):
    """Interned construction + equality >= 5x faster than the seed substrate."""
    spec = get_scenario(name)

    # End-to-end run construction in a fresh pool (reported, not gated: the
    # engine's own bookkeeping dilutes the substrate ratio at this size).
    with intern_pool():
        started = time.perf_counter()
        run_a = spec.build(**params).run()
        construction_s = time.perf_counter() - started
        run_b = spec.build(**params).run()

        steps_by_process = {
            p: run_a.final_node(p).history.steps for p in run_a.processes
        }

        # Interned substrate: replay every timeline through a fresh pool
        # (every extend is a miss, as during real construction) ...
        with intern_pool():
            started = time.perf_counter()
            for process, steps in steps_by_process.items():
                history = History.initial(process)
                for step in steps:
                    history = history.extend(step)
            interned_extension_s = time.perf_counter() - started

        # ... and whole-run equality between two independently built runs.
        started = time.perf_counter()
        runs_equal = run_a == run_b
        interned_equality_s = time.perf_counter() - started
        assert runs_equal, f"{name}: identical cells produced different runs"

        # Structural (seed) substrate on the identical workload.
        started = time.perf_counter()
        for process, steps in steps_by_process.items():
            history = _StructuralHistory(process)
            for step in steps:
                history = history.extend(step)
        structural_extension_s = time.perf_counter() - started

        replica_a = _replicate_histories(run_a)
        replica_b = _replicate_histories(run_b)
        started = time.perf_counter()
        replicas_equal = all(replica_a[p] == replica_b[p] for p in replica_a)
        structural_equality_s = time.perf_counter() - started
        assert replicas_equal, f"{name}: structural replicas disagree"

        # Past-set build: cold bitset fold vs memoized re-query.
        sigma = max(
            (run_a.final_node(p) for p in sorted(run_a.processes)),
            key=lambda node: node.step_count,
        )
        started = time.perf_counter()
        past = past_nodes(sigma)
        past_cold_s = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(100):
            again = past_nodes(sigma)
            boundary_nodes(sigma)
        past_warm_s = (time.perf_counter() - started) / 100
        assert again is past, "memoized past should be the cached object"
        assert len(past) > 1

    interned_s = interned_extension_s + interned_equality_s
    structural_s = structural_extension_s + structural_equality_s
    speedup = structural_s / interned_s if interned_s > 0 else float("inf")

    report(
        f"run substrate ({name})",
        "hash-consed histories turn deep structural equality into pointer equality",
        f"extend+eq structural {structural_s * 1e3:.1f}ms vs interned "
        f"{interned_s * 1e3:.1f}ms ({speedup:.0f}x); run build {construction_s * 1e3:.1f}ms; "
        f"past cold {past_cold_s * 1e3:.2f}ms warm {past_warm_s * 1e6:.1f}us",
    )
    record(
        ARTIFACT,
        name,
        {
            "construction_s": round(construction_s, 6),
            "interned_extension_s": round(interned_extension_s, 6),
            "interned_equality_s": round(interned_equality_s, 6),
            "structural_extension_s": round(structural_extension_s, 6),
            "structural_equality_s": round(structural_equality_s, 6),
            "substrate_speedup": round(speedup, 1),
            "past_cold_s": round(past_cold_s, 6),
            "past_warm_s": round(past_warm_s, 9),
        },
        top_level={"horizon": HORIZON},
    )

    assert speedup >= REQUIRED_SPEEDUP, (
        f"{name}: interned substrate only {speedup:.1f}x faster "
        f"({structural_s * 1e3:.1f}ms vs {interned_s * 1e3:.1f}ms)"
    )


def test_bench_run_construction_throughput(benchmark):
    """pytest-benchmark timing of end-to-end run construction (torus flood)."""
    spec = get_scenario("torus-flood")
    params = dict(horizon=HORIZON)

    def construct():
        with intern_pool():
            return spec.build(**params).run()

    run = benchmark(construct)
    assert run.horizon == HORIZON


def test_bench_run_equality_regression():
    """Torus-flood ``Run ==`` completes in well under a second (was seconds)."""
    spec = get_scenario("torus-flood")
    with intern_pool():
        run_a = spec.build(horizon=HORIZON).run()
        run_b = spec.build(horizon=HORIZON).run()
        started = time.perf_counter()
        assert run_a == run_b
        elapsed = time.perf_counter() - started
    report(
        "run equality (torus-flood)",
        "identity equality makes whole-run comparison linear in the records",
        f"Run == in {elapsed * 1e3:.2f}ms at horizon {HORIZON}",
    )
    assert elapsed < 0.5, f"Run == took {elapsed:.3f}s"
