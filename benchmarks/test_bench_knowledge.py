"""Benchmarks for the batched longest-path engine behind knowledge queries.

Theorem 4 reduces every knowledge query to a longest-constraint-path lookup
in the extended bounds graph, so a node that issues many queries against one
local state used to pay one full Bellman-Ford relaxation *per query*.  The
batched engine pays one topologically-ordered DP row per distinct source
instead and answers everything else from memoized rows.

These benchmarks measure both pipelines on identical query sets (>= 50
ordered boundary-node pairs against one sigma) over ring/grid/torus flooding
scenarios, assert they agree pair-for-pair, and assert the batched engine is
at least 5x faster on the grid and torus workloads.  Every workload's numbers
are appended to ``BENCH_knowledge.json``, which CI diffs against the
committed ``BENCH_knowledge.baseline.json`` via
``scripts/check_bench_regression.py`` -- so the bench trajectory covers the
knowledge substrate, not just the run substrate.
"""

import time
from pathlib import Path

import pytest

from _bench_utils import record, report

from repro.core import KnowledgeChecker, general
from repro.core.causality import boundary_nodes
from repro.scenarios import get_scenario

#: Where the measured trajectory is written (diffed against the committed
#: ``BENCH_knowledge.baseline.json`` by ``scripts/check_bench_regression.py``).
ARTIFACT = Path(__file__).resolve().parent / "BENCH_knowledge.json"


def knowledge_workload(name, **params):
    """One sigma plus >= 50 ordered query pairs on the given scenario.

    The observer is the process whose final node saw the most of the run
    (largest boundary set), i.e. the node a real protocol would query from.
    """
    run = get_scenario(name).build(**params).run()
    process = max(
        sorted(run.processes),
        key=lambda p: len(boundary_nodes(run.final_node(p))),
    )
    sigma = run.final_node(process)
    boundary = sorted(boundary_nodes(sigma).values(), key=lambda node: node.process)
    # Boundary nodes plus their timeline predecessors: all inside past(sigma),
    # hence recognized, and enough nodes for >= 50 ordered pairs everywhere.
    queried = list(boundary)
    for node in boundary:
        previous = node.predecessor()
        if previous is not None and previous not in queried:
            queried.append(previous)
    pairs = [
        (general(earlier), general(later))
        for earlier in queried
        for later in queried
        if earlier is not later
    ]
    return run, sigma, pairs


def per_query_naive(run, sigma, pairs):
    """The pre-engine pipeline: a fresh relaxation for every single query."""
    checker = KnowledgeChecker(sigma, run.timed_network)
    extended = checker.extended_graph
    keys = [
        (extended.add_general_node(theta1), extended.add_general_node(theta2))
        for theta1, theta2 in pairs
    ]
    graph = extended.graph
    started = time.perf_counter()
    results = [
        graph.longest_path_weight(key1, key2, reference=True) for key1, key2 in keys
    ]
    return time.perf_counter() - started, results


def batched(run, sigma, pairs):
    """The engine pipeline: one batch over a fresh checker."""
    checker = KnowledgeChecker(sigma, run.timed_network)
    started = time.perf_counter()
    results = checker.max_known_gaps(pairs)
    return time.perf_counter() - started, results


WORKLOADS = [
    ("ring-flood", {"num_processes": 8}),
    ("grid-flood", {"rows": 3, "cols": 3}),
    ("torus-flood", {}),  # 3x3 torus by default
]

#: Workloads the acceptance criterion (>= 5x for >= 50 queries) binds to.
SPEEDUP_GATED = {"grid-flood", "torus-flood"}


@pytest.mark.parametrize("name,params", WORKLOADS, ids=[w[0] for w in WORKLOADS])
def test_bench_batched_vs_per_query(name, params):
    """Batched all-pairs answers >= 50 queries >= 5x faster than per-query."""
    run, sigma, pairs = knowledge_workload(name, **params)
    assert len(pairs) >= 50, f"{name}: only {len(pairs)} queries"

    naive_time, naive_results = min(
        (per_query_naive(run, sigma, pairs) for _ in range(2)),
        key=lambda timed: timed[0],
    )
    batched_time, batched_results = min(
        (batched(run, sigma, pairs) for _ in range(3)),
        key=lambda timed: timed[0],
    )
    assert batched_results == naive_results, "engine disagrees with naive reference"

    speedup = naive_time / batched_time if batched_time > 0 else float("inf")
    report(
        f"knowledge batching ({name})",
        "all-pairs longest paths amortize per-query relaxations (Theorem 4 hot path)",
        f"{len(pairs)} queries vs one sigma: per-query {naive_time * 1e3:.1f}ms, "
        f"batched {batched_time * 1e3:.1f}ms, speedup {speedup:.1f}x",
    )
    record(
        ARTIFACT,
        name,
        {
            "queries": len(pairs),
            "per_query_s": round(naive_time, 6),
            "batched_s": round(batched_time, 6),
            "batched_speedup": round(speedup, 1),
        },
    )
    if name in SPEEDUP_GATED:
        assert speedup >= 5, (
            f"{name}: batched engine only {speedup:.1f}x faster "
            f"({naive_time * 1e3:.1f}ms vs {batched_time * 1e3:.1f}ms)"
        )


def test_bench_batched_engine_throughput(benchmark):
    """pytest-benchmark timing of the batched pipeline on the torus workload."""
    run, sigma, pairs = knowledge_workload("torus-flood")
    _, expected = per_query_naive(run, sigma, pairs)

    def pipeline():
        return batched(run, sigma, pairs)[1]

    results = benchmark(pipeline)
    assert results == expected


def test_bench_incremental_growth_queries(benchmark):
    """Queries interleaved with graph growth stay exact and fast.

    Each round materialises one more unresolved chain hop (growing the
    extended graph) and re-queries the full pair set; the engine extends its
    memoized rows instead of recomputing them.
    """
    run, sigma, pairs = knowledge_workload("grid-flood", rows=3, cols=3)
    net = run.timed_network
    queried = sorted(boundary_nodes(sigma).values(), key=lambda node: node.process)
    senders = [node for node in queried if not node.is_initial]

    def pipeline():
        checker = KnowledgeChecker(sigma, net)
        totals = []
        for node in senders[:4]:
            hop = sorted(net.out_neighbors(node.process))[0]
            theta = general(node, (node.process, hop))
            totals.append(checker.max_known_gap(theta, sigma))
            totals.extend(checker.max_known_gaps(pairs))
        return totals

    totals = benchmark(pipeline)
    assert len(totals) == 4 * (len(pairs) + 1)

    # Cross-validate the final interleaved state against the naive reference.
    checker = KnowledgeChecker(sigma, net)
    reference_checker = KnowledgeChecker(sigma, net)
    for node in senders[:4]:
        hop = sorted(net.out_neighbors(node.process))[0]
        theta = general(node, (node.process, hop))
        engine_gap = checker.max_known_gap(theta, sigma)
        extended = reference_checker.extended_graph
        key1 = extended.add_general_node(theta)
        key2 = extended.add_general_node(general(sigma))
        assert engine_gap == extended.graph.longest_path_weight(
            key1, key2, reference=True
        )
