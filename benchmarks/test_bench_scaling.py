"""Scaling benchmarks: cost of the analysis machinery as instances grow.

The paper proves its characterisations but never measures them; these sweeps
document how the reproduction's data structures behave as the network size,
the run horizon, and the zigzag chain length grow.  They also serve as the
ablation harness called out in DESIGN.md (earliest/latest/random adversaries,
auxiliary-node reasoning on/off).
"""

import pytest

from _bench_utils import report

from repro.core import KnowledgeChecker, basic_bounds_graph, general
from repro.coordination import OptimalCoordinationProtocol, evaluate, late_task
from repro.scenarios import (
    flooding_scenario,
    zigzag_chain_equation_weight,
    zigzag_chain_scenario,
)
from repro.simulation import EarliestDelivery, LatestDelivery, SeededRandomDelivery


@pytest.mark.parametrize("num_processes", [4, 8, 12])
def test_bench_bounds_graph_construction(benchmark, num_processes):
    """GB(r) construction plus a longest-path query, vs. network size."""
    run = flooding_scenario(num_processes=num_processes, seed=1, horizon=12).run()
    source = run.final_node(run.processes[0])
    target = run.final_node(run.processes[-1])

    def pipeline():
        graph = basic_bounds_graph(run)
        return graph, graph.longest_path_weight(source, target)

    graph, weight = benchmark(pipeline)
    report(
        f"Scaling: GB(r) with n={num_processes}",
        "no measurement in the paper (machinery cost)",
        f"{len(graph)} nodes, {graph.edge_count()} edges, longest-path weight {weight}",
    )


@pytest.mark.parametrize("horizon", [8, 14, 20])
def test_bench_knowledge_query_vs_horizon(benchmark, horizon):
    """Extended-graph knowledge query cost as the observer's past grows."""
    run = flooding_scenario(num_processes=5, seed=3, horizon=horizon).run()
    sigma = run.final_node(run.processes[-1])
    anchors = [n for n in run.past(sigma) if not n.is_initial]
    anchor = min(anchors, key=run.time_of)

    def pipeline():
        checker = KnowledgeChecker(sigma, run.timed_network)
        return checker.max_known_gap(general(anchor), sigma)

    gap = benchmark(pipeline)
    assert gap is None or gap <= run.time_of(sigma) - run.time_of(anchor)
    report(
        f"Scaling: knowledge query, horizon={horizon}",
        "no measurement in the paper (machinery cost)",
        f"past size {len(run.past(sigma))}, known gap {gap}",
    )


@pytest.mark.parametrize("num_forks", [1, 2, 3, 4])
def test_bench_zigzag_chain_length(benchmark, num_forks):
    """End-to-end coordination as the zigzag pattern grows by whole forks."""
    margin = 1

    def pipeline():
        task = late_task(margin)
        scenario = zigzag_chain_scenario(
            num_forks=num_forks,
            with_reports=True,
            b_protocol=OptimalCoordinationProtocol(task),
        )
        run = scenario.run()
        return scenario, run, evaluate(run, task)

    scenario, run, outcome = benchmark(pipeline)
    assert outcome.satisfied
    weight = zigzag_chain_equation_weight(scenario, num_forks)
    report(
        f"Scaling: zigzag chain with {num_forks} fork(s)",
        "longer zigzags compose fork weights (Eq.(1) generalised)",
        f"equation weight {weight}, B acted: {outcome.b_performed} at t={outcome.b_time}",
    )


@pytest.mark.parametrize(
    "adversary_name,adversary",
    [
        ("earliest", EarliestDelivery()),
        ("latest", LatestDelivery()),
        ("random", SeededRandomDelivery(seed=5)),
    ],
)
def test_bench_delivery_adversary_ablation(benchmark, adversary_name, adversary):
    """Ablation: the guarantee is adversary-independent; achieved slack is not."""
    margin = 3
    task = late_task(margin)

    def pipeline():
        scenario = zigzag_chain_scenario(
            num_forks=2,
            with_reports=True,
            b_protocol=OptimalCoordinationProtocol(task),
            delivery=adversary,
        )
        run = scenario.run()
        return evaluate(run, task)

    outcome = benchmark(pipeline)
    assert outcome.satisfied
    report(
        f"Ablation: {adversary_name} adversary",
        "zigzag-derived guarantees hold under every legal schedule",
        f"B acted: {outcome.b_performed}, achieved margin {outcome.achieved_margin}",
    )


@pytest.mark.parametrize("include_auxiliary", [True, False])
def test_bench_auxiliary_nodes_ablation(benchmark, include_auxiliary):
    """Ablation: extended-graph (over-the-horizon) reasoning on/off."""
    run = flooding_scenario(num_processes=5, seed=2, horizon=14).run()
    sigma = run.final_node(run.processes[-1])
    anchors = [n for n in run.past(sigma) if not n.is_initial]
    anchor = min(anchors, key=run.time_of)

    def pipeline():
        checker = KnowledgeChecker(sigma, run.timed_network, include_auxiliary=include_auxiliary)
        return checker.max_known_gap(general(anchor), sigma)

    gap = benchmark(pipeline)
    report(
        f"Ablation: auxiliary nodes {'on' if include_auxiliary else 'off'}",
        "the extended graph can only strengthen what sigma knows",
        f"known gap {gap}",
    )
