"""Benchmark: Protocol 2 versus the baselines on the coordination tasks.

The paper's claim is qualitative: the optimal (visible-zigzag) protocol acts
as soon as knowledge permits, which is never later than any correct rule and
strictly earlier than chain-based reasoning on workloads where zigzag
structure exists.  This harness sweeps the Late margin and reports, per
protocol, whether B acts, when, and with what achieved margin -- always
asserting safety.
"""

import pytest

from _bench_utils import report

from repro.coordination import (
    ChainLowerBoundProtocol,
    LocalGraphProtocol,
    NeverActProtocol,
    OptimalCoordinationProtocol,
    evaluate,
    late_task,
)
from repro.scenarios import zigzag_chain_scenario
from repro.simulation import (
    Context,
    ProtocolAssignment,
    actor_protocol,
    fully_connected,
    go_at,
    go_sender_protocol,
    simulate,
)

PROTOCOLS = {
    "optimal": OptimalCoordinationProtocol,
    "local-graph": LocalGraphProtocol,
    "chain": ChainLowerBoundProtocol,
    "never": NeverActProtocol,
}


def run_zigzag_workload(protocol_name: str, margin: int):
    task = late_task(margin)
    protocol = PROTOCOLS[protocol_name](task)
    scenario = zigzag_chain_scenario(num_forks=2, with_reports=True, b_protocol=protocol)
    run = scenario.run()
    return evaluate(run, task)


@pytest.mark.parametrize("protocol_name", list(PROTOCOLS))
def test_bench_protocols_on_visible_zigzag_workload(benchmark, protocol_name):
    """Action time of each protocol on the Figure 2b workload (margin sweep)."""
    margins = (1, 3, 5, 7)

    def pipeline():
        return [run_zigzag_workload(protocol_name, margin) for margin in margins]

    outcomes = benchmark(pipeline)
    assert all(outcome.satisfied for outcome in outcomes)
    acted = [o.b_time for o in outcomes]
    report(
        f"Protocol comparison ({protocol_name})",
        "optimal acts whenever knowledge permits; baselines act later or never; all are safe",
        f"margins {margins} -> b times {acted}",
    )


def test_bench_protocol_ordering(benchmark):
    """The optimal protocol acts no later than the ablation, which acts no later than chains."""
    margins = (1, 2, 3)

    def pipeline():
        rows = []
        for margin in margins:
            times = {}
            for name in ("optimal", "local-graph", "chain"):
                outcome = run_zigzag_workload(name, margin)
                assert outcome.satisfied
                times[name] = outcome.b_time
            rows.append((margin, times))
        return rows

    rows = benchmark(pipeline)
    for margin, times in rows:
        if times["local-graph"] is not None:
            assert times["optimal"] is not None
            assert times["optimal"] <= times["local-graph"]
        if times["chain"] is not None and times["optimal"] is not None:
            assert times["optimal"] <= times["chain"]
    report(
        "Protocol ordering",
        "optimal <= local-graph <= chain in action time (when they act at all)",
        "; ".join(f"x={m}: {t}" for m, t in rows),
    )


def test_bench_fully_connected_chain_vs_optimal(benchmark):
    """On a dense network even the chain baseline acts, but later than optimal."""
    margin = 2
    net = fully_connected(["A", "B", "C", "D"], 1, 3)

    def pipeline():
        results = {}
        for name in ("optimal", "chain"):
            task = late_task(margin)
            protocols = ProtocolAssignment()
            protocols.assign("C", go_sender_protocol())
            protocols.assign("A", actor_protocol("a", "C"))
            protocols.assign("B", PROTOCOLS[name](task))
            run = simulate(Context(net), protocols, external_inputs=go_at(2, "C"), horizon=14)
            results[name] = evaluate(run, task)
        return results

    results = benchmark(pipeline)
    assert all(outcome.satisfied for outcome in results.values())
    assert results["optimal"].b_performed
    if results["chain"].b_performed:
        assert results["optimal"].b_time <= results["chain"].b_time
    report(
        "Dense-network comparison",
        "zigzag knowledge lets B act at least as early as chain-based reasoning",
        f"optimal b at {results['optimal'].b_time}, chain b at {results['chain'].b_time}",
    )
