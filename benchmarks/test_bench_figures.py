"""Benchmarks regenerating the paper's figures (Figures 1-8).

Each benchmark simulates the figure's communication pattern, times the full
pipeline (simulation plus the analysis the figure illustrates), and asserts the
figure's qualitative claim.  Absolute running times are properties of this
simulator, not of the paper (which reports no measurements); the asserted
*relationships* -- who precedes whom, by at least how much, and what each
process can know -- are the reproduction targets.
"""

from _bench_utils import report

from repro.core import (
    ExtendedBoundsGraph,
    TwoLeggedFork,
    ZigzagPattern,
    basic_bounds_graph,
    general,
    is_visible_zigzag,
)
from repro.coordination import evaluate, late_task
from repro.scenarios import (
    figure1_guaranteed_margin,
    figure1_scenario,
    figure2a_scenario,
    figure2b_scenario,
    figure3_fork_weight,
    figure3_scenario,
    figure4_scenario,
    figure5_scenario,
    figure6_scenario,
    figure8_scenario,
    zigzag_chain_equation_weight,
)
from repro.simulation import SeededRandomDelivery


def test_bench_figure1_single_fork(benchmark):
    """Figure 1: the fork guarantees a --(L_CB - U_CA)--> b with no A<->B traffic."""

    def pipeline():
        scenario = figure1_scenario(delivery=SeededRandomDelivery(seed=1))
        run = scenario.run()
        gap = run.action_time("B", "b") - run.action_time("A", "a")
        return scenario, run, gap

    scenario, run, gap = benchmark(pipeline)
    margin = figure1_guaranteed_margin(scenario)
    assert gap >= margin
    assert all({d.sender, d.destination} != {"A", "B"} for d in run.deliveries)
    report(
        "Figure 1",
        f"a precedes b by at least L_CB - U_CA = {margin}",
        f"observed gap {gap} with zero A<->B messages",
    )


def test_bench_figure2a_zigzag_equation1(benchmark):
    """Figure 2a / Equation (1): the two-fork zigzag bounds b's earliest time."""

    def pipeline():
        scenario = figure2a_scenario()
        run = scenario.run()
        externals = {r.process: r.receiver_node for r in run.external_deliveries}
        pattern = ZigzagPattern(
            (
                TwoLeggedFork(general(externals["C"]), ("C", "D"), ("C", "A")),
                TwoLeggedFork(general(externals["E"]), ("E", "B"), ("E", "D")),
            )
        )
        return scenario, run, pattern

    scenario, run, pattern = benchmark(pipeline)
    equation = zigzag_chain_equation_weight(scenario, 2)
    gap = run.action_time("B", "b") - run.action_time("A", "a")
    assert pattern.is_valid_in(run)
    assert pattern.weight(run) >= equation
    assert gap >= pattern.weight(run)
    report(
        "Figure 2a / Eq.(1)",
        f"-U_CA + L_CD - U_ED + L_EB = {equation} lower-bounds t_b - t_a",
        f"zigzag weight {pattern.weight(run)}, observed gap {gap}",
    )


def test_bench_figure2b_visible_zigzag(benchmark):
    """Figure 2b: with D's report the zigzag is visible and B acts safely."""
    margin = 5

    def pipeline():
        scenario = figure2b_scenario(margin=margin)
        run = scenario.run()
        return run

    run = benchmark(pipeline)
    outcome = evaluate(run, late_task(margin))
    assert outcome.b_performed and outcome.satisfied
    sigma = run.find_action("B", "b").node
    externals = {r.process: r.receiver_node for r in run.external_deliveries}
    pattern = ZigzagPattern(
        (
            TwoLeggedFork(general(externals["C"]), ("C", "D"), ("C", "A")),
            TwoLeggedFork(general(externals["E"]), ("E", "B"), ("E", "D")),
        )
    )
    assert is_visible_zigzag(pattern, sigma, run)
    report(
        "Figure 2b",
        "B detects the zigzag via D's report and performs b satisfying Late<a-x->b>",
        f"b at t={outcome.b_time}, margin achieved {outcome.achieved_margin} >= {margin}",
    )


def test_bench_figure3_multihop_fork(benchmark):
    """Figure 3: forks with multi-hop legs; weight = L(head chain) - U(tail chain)."""

    def pipeline():
        scenario = figure3_scenario(head_hops=3, tail_hops=2)
        run = scenario.run()
        return scenario, run

    scenario, run = benchmark(pipeline)
    weight = figure3_fork_weight(scenario, head_hops=3, tail_hops=2)
    gap = run.action_time("B", "b") - run.action_time("A", "a")
    assert gap >= weight
    report(
        "Figure 3",
        f"multi-hop fork weight L(p1) - U(p2) = {weight} bounds the gap",
        f"observed gap {gap}",
    )


def test_bench_figure4_three_fork_visible_zigzag(benchmark):
    """Figure 4: a sigma-visible zigzag of three forks supports B's knowledge."""
    margin = 4

    def pipeline():
        return figure4_scenario(margin=margin).run()

    run = benchmark(pipeline)
    outcome = evaluate(run, late_task(margin))
    assert outcome.b_performed and outcome.satisfied
    report(
        "Figure 4",
        "a 3-fork sigma-visible zigzag suffices for knowledge of the precedence",
        f"B acted at t={outcome.b_time} with margin {outcome.achieved_margin}",
    )


def test_bench_figure5_late_pattern(benchmark):
    """Figure 5: the visible-zigzag pattern tailored to Late<a --x--> b>."""
    margin = 6

    def pipeline():
        return figure5_scenario(margin=margin).run()

    run = benchmark(pipeline)
    outcome = evaluate(run, late_task(margin))
    assert outcome.satisfied
    report(
        "Figure 5",
        "the Late pattern needs no extra chain from the last fork's base to sigma",
        f"B acted: {outcome.b_performed}, margin {outcome.achieved_margin}",
    )


def test_bench_figure6_bound_edges(benchmark):
    """Figure 6: a single message induces the +L and -U bound edges."""

    def pipeline():
        run = figure6_scenario().run()
        return run, basic_bounds_graph(run)

    run, graph = benchmark(pipeline)
    delivery = run.deliveries[0]
    net = run.timed_network
    weights = {
        (e.source, e.target): e.weight
        for e in graph.edges
        if {e.source, e.target} == {delivery.sender_node, delivery.receiver_node}
    }
    assert weights[(delivery.sender_node, delivery.receiver_node)] == net.L("i", "j")
    assert weights[(delivery.receiver_node, delivery.sender_node)] == -net.U("i", "j")
    report(
        "Figure 6",
        "each delivery adds edges +L_ij (send->recv) and -U_ij (recv->send)",
        f"edges {sorted(weights.values())} for (L, U) = ({net.L('i','j')}, {net.U('i','j')})",
    )


def test_bench_figure7_bounds_graph_path(benchmark):
    """Figure 7: the GB(r) path that justifies Equation (1)."""

    def pipeline():
        scenario = figure2a_scenario()
        run = scenario.run()
        graph = basic_bounds_graph(run)
        a_node = run.find_action("A", "a").node
        b_node = run.find_action("B", "b").node
        weight, edges = graph.longest_path(a_node, b_node)
        return scenario, run, weight, edges

    scenario, run, weight, edges = benchmark(pipeline)
    equation = zigzag_chain_equation_weight(scenario, 2)
    assert weight >= equation
    labels = [edge.label for edge in edges]
    assert "upper" in labels and "lower" in labels
    report(
        "Figure 7",
        "a GB(r) path of weight >= Eq.(1) connects a's node to b's node",
        f"longest path weight {weight} (Eq.(1) = {equation}) over {len(edges)} edges",
    )


def test_bench_figure8_extended_bounds_graph(benchmark):
    """Figure 8: the extended bounds graph with E', E'', E''' edge sets."""

    def pipeline():
        run = figure8_scenario().run()
        sigma = run.final_node("i")
        extended = ExtendedBoundsGraph(sigma, run.timed_network)
        return run, extended

    run, extended = benchmark(pipeline)
    summary = extended.edge_summary()
    assert summary["aux"] >= 1
    assert summary["flooding"] == len(run.timed_network.channels)
    assert summary.get("undelivered", 0) >= 1
    report(
        "Figure 8",
        "GE(r, sigma) adds one auxiliary node per process and E'/E''/E''' edges",
        f"edge sets: aux={summary['aux']}, undelivered={summary.get('undelivered', 0)}, "
        f"flooding={summary['flooding']}",
    )
