"""Benchmarks for incremental knowledge sessions on coordination timelines.

Protocol 2 re-evaluates its knowledge guard at every scheduling step of B's
timeline.  Before the session substrate each evaluation rebuilt everything
from scratch: a full-past scan for the go node, a fresh local bounds graph,
a fresh auxiliary layer, a fresh longest-path engine -- O(past) work per step
although ``past(sigma_{t+1})`` extends ``past(sigma_t)`` by a handful of
nodes.  A :class:`~repro.core.knowledge_session.KnowledgeSession` advances
along the timeline instead, appending only the causal-past delta and
re-anchoring the (frontier-sized) auxiliary overlay.

These benchmarks replay B's guard over whole grid/torus coordination runs
through both pipelines -- the pre-session per-step rebuild is kept here as a
faithful replica -- assert they produce identical decisions at every node,
and gate a >= 5x end-to-end speedup.  Every workload's numbers are appended
to ``BENCH_coordination.json``, which CI diffs against the committed
``BENCH_coordination.baseline.json`` via ``scripts/check_bench_regression.py``.
"""

import time
from pathlib import Path

import pytest

from _bench_utils import record, report

from repro.coordination.optimal import find_go_node
from repro.core.causality import past_nodes
from repro.core.knowledge import KnowledgeChecker
from repro.core.knowledge_session import KnowledgeSession
from repro.core.nodes import general
from repro.simulation import (
    Context,
    EarliestDelivery,
    ProtocolAssignment,
    go_at,
    go_sender_protocol,
    simulate,
)
from repro.simulation.interning import intern_pool
from repro.simulation.network import grid, torus
from repro.simulation.protocols import relayed_actor_protocol

#: Where the measured trajectory is written (diffed against the committed
#: ``BENCH_coordination.baseline.json`` by ``scripts/check_bench_regression.py``).
ARTIFACT = Path(__file__).resolve().parent / "BENCH_coordination.json"

#: The acceptance criterion: session-based guard evaluation >= 5x faster
#: than the per-step from-scratch rebuild, on grid and torus coordination.
REQUIRED_SPEEDUP = 5.0

#: ``(name, network factory, go sender, actor A, actor B, horizon)``.  The
#: horizons are deep enough for the O(past)-per-step rebuild cost to clearly
#: dominate while the whole file stays a few seconds on slow CI hardware.
WORKLOADS = [
    ("grid-coordination", lambda: grid(3, 3, 1, 2), "r0c0", "r0c1", "r2c2", 36),
    ("torus-coordination", lambda: torus(3, 3, 1, 2), "r0c0", "r0c1", "r2c2", 30),
]


def coordination_run(net, go_sender, actor_a, horizon):
    """A flooding run in which C triggers A's action and B only observes.

    B stays a plain FFIP relay so its whole timeline is available for guard
    replay -- the shape :class:`EagerKnowledgeProbe` analyses.
    """
    protocols = ProtocolAssignment()
    protocols.assign(go_sender, go_sender_protocol())
    protocols.assign(actor_a, relayed_actor_protocol("a", go_sender))
    return simulate(
        Context(net),
        protocols,
        delivery=EarliestDelivery(),
        external_inputs=go_at(1, go_sender),
        horizon=horizon,
    )


def rebuild_guard_replay(run, net, go_sender, actor_a, actor_b):
    """The pre-session pipeline, replicated faithfully: per step, a full-past
    go-node scan plus a fresh ``KnowledgeChecker`` (fresh extended bounds
    graph, fresh engine).  This is exactly what
    ``OptimalCoordinationProtocol.should_act`` did before sessions."""
    gaps = []
    for _, node in run.timelines[actor_b]:
        if node.is_initial:
            continue
        go_node = find_go_node(node, go_sender)
        if go_node is None:
            gaps.append(None)
            continue
        theta_a = general(go_node, (go_sender, actor_a))
        checker = KnowledgeChecker(node, net)
        gaps.append(checker.max_known_gap(theta_a, node))
    return gaps


def session_guard_replay(run, net, go_sender, actor_a, actor_b):
    """The session pipeline: one session advanced along B's timeline."""
    session = KnowledgeSession(net)
    gaps = []
    for _, node in run.timelines[actor_b]:
        if node.is_initial:
            continue
        session.advance(node)
        go_node = session.find_go_node(go_sender)
        if go_node is None:
            gaps.append(None)
            continue
        theta_a = general(go_node, (go_sender, actor_a))
        gaps.append(session.max_known_gap(theta_a, node))
    return gaps


# ---------------------------------------------------------------------------
# The gated benchmark
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,net_factory,go_sender,actor_a,actor_b,horizon",
    WORKLOADS,
    ids=[w[0] for w in WORKLOADS],
)
def test_bench_session_vs_rebuild(name, net_factory, go_sender, actor_a, actor_b, horizon):
    """Session-based guard replay >= 5x faster than per-step rebuild."""
    with intern_pool():
        net = net_factory()
        run = coordination_run(net, go_sender, actor_a, horizon)
        steps = len(run.timelines[actor_b]) - 1
        past_size = len(past_nodes(run.final_node(actor_b)))

        # One untimed pass warms the pool's causal caches (bitset pasts,
        # delivery maps) that *both* pipelines ride on since PR 3.
        expected = rebuild_guard_replay(run, net, go_sender, actor_a, actor_b)

        rebuild_s = float("inf")
        for _ in range(2):
            started = time.perf_counter()
            rebuilt = rebuild_guard_replay(run, net, go_sender, actor_a, actor_b)
            rebuild_s = min(rebuild_s, time.perf_counter() - started)
        session_s = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            sessioned = session_guard_replay(run, net, go_sender, actor_a, actor_b)
            session_s = min(session_s, time.perf_counter() - started)

    assert rebuilt == expected
    assert sessioned == expected, "session disagrees with per-step rebuild"

    speedup = rebuild_s / session_s if session_s > 0 else float("inf")
    report(
        f"incremental sessions ({name})",
        "advancing GE(r, sigma) by the causal delta beats per-step rebuilds",
        f"{steps} steps, past {past_size}: rebuild {rebuild_s * 1e3:.1f}ms, "
        f"session {session_s * 1e3:.1f}ms, speedup {speedup:.1f}x",
    )
    record(
        ARTIFACT,
        name,
        {
            "horizon": horizon,
            "steps": steps,
            "past_size": past_size,
            "rebuild_s": round(rebuild_s, 6),
            "session_s": round(session_s, 6),
            "session_speedup": round(speedup, 1),
        },
    )

    assert speedup >= REQUIRED_SPEEDUP, (
        f"{name}: session replay only {speedup:.1f}x faster "
        f"({rebuild_s * 1e3:.1f}ms vs {session_s * 1e3:.1f}ms)"
    )


def test_bench_session_advance_throughput(benchmark):
    """pytest-benchmark timing of a full session replay (torus coordination)."""
    name, net_factory, go_sender, actor_a, actor_b, horizon = WORKLOADS[1]
    with intern_pool():
        net = net_factory()
        run = coordination_run(net, go_sender, actor_a, horizon)
        expected = rebuild_guard_replay(run, net, go_sender, actor_a, actor_b)

        def replay():
            return session_guard_replay(run, net, go_sender, actor_a, actor_b)

        gaps = benchmark(replay)
    assert gaps == expected
