"""Benchmark for the serve hub's content-addressed report cache (PR 10).

The service exists so repeat queries never pay compute: a ``/report`` over
an unchanged store is answered from the in-process cache keyed on the
store's on-disk ``stat_signature`` — no records re-read, no cells re-run.
This bench computes a small grid cold (the price a cacheless client pays),
then serves the warmed store over real HTTP and times repeat cached
``/report`` fetches end-to-end (socket, chunk, JSON).  The acceptance gate
is a >= 5x win for the cached fetch; ``scripts/check_bench_regression.py``
ratio-gates the recorded speedup against the committed baseline so the win
cannot silently erode.
"""

import json
import time
import urllib.request
from pathlib import Path

from _bench_utils import record, report

from repro.experiments.runner import expand_grid, run_sweep
from repro.experiments.serve import SweepService
from repro.experiments.store import ResultStore

ARTIFACT = Path(__file__).resolve().parent / "BENCH_serve.json"

SEEDS = 8
HORIZON = 12
FETCHES = 25
REQUIRED_SPEEDUP = 5.0


def test_bench_cached_report_vs_cold_compute(tmp_path):
    cells = expand_grid(["line-flood"], seeds=list(range(SEEDS)), horizon=HORIZON)

    # Cold: what answering the same question costs without the store/cache —
    # compute every cell of the grid.
    store_path = str(tmp_path / "results.jsonl")
    cold_started = time.perf_counter()
    outcome = run_sweep(cells, store=ResultStore(store_path), backend="serial")
    cold_compute_s = time.perf_counter() - cold_started
    assert outcome.errors == 0
    assert outcome.executed == len(cells)

    # Warm: serve the store over real HTTP; the first fetch builds the
    # report cache entry, repeats are pure cache hits.
    service = SweepService(store_path)
    host, port = service.start("127.0.0.1", 0)
    url = f"http://{host}:{port}/report?group_by=scenario,adversary"
    try:
        with urllib.request.urlopen(url, timeout=60) as response:
            first = json.loads(response.read())
        assert first["served_from_cache"] is False
        assert first["records"] == len(cells)

        cached_started = time.perf_counter()
        for _ in range(FETCHES):
            with urllib.request.urlopen(url, timeout=60) as response:
                body = json.loads(response.read())
            assert body["served_from_cache"] is True
        cached_report_s = (time.perf_counter() - cached_started) / FETCHES
    finally:
        service.stop()

    speedup = cold_compute_s / cached_report_s if cached_report_s > 0 else float("inf")
    report(
        "Serve hub: cached /report fetch vs cold grid compute",
        "no measurement in the paper (serving-layer cost)",
        f"{len(cells)} cells: cold compute {cold_compute_s * 1e3:.1f}ms, "
        f"cached HTTP /report {cached_report_s * 1e3:.2f}ms ({speedup:.0f}x)",
    )
    record(
        ARTIFACT,
        "cached-report",
        {
            "cells": len(cells),
            "fetches": FETCHES,
            "cold_compute_s": round(cold_compute_s, 6),
            "cached_report_s": round(cached_report_s, 6),
            "report_cache_speedup": round(speedup, 1),
        },
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"cached /report only {speedup:.1f}x faster than cold compute "
        f"(required >= {REQUIRED_SPEEDUP}x)"
    )
