"""Benchmarks for the sharded sweep execution backend (PR 5).

On sweeps of many small cells, per-cell process dispatch pays the full task
overhead — future bookkeeping, cell/record pickling, a fresh intern pool,
scenario construction — once per cell, which quickly dwarfs the cells' own
simulation cost.  The :class:`~repro.experiments.executors.\
ChunkedShardExecutor` amortises all of it: cells are grouped into per-worker
shards of structurally identical instances (shard-key params), one pool task
runs a whole shard, the hash-consing intern pool is shared across the shard,
and the base scenario is built once per parameter assignment.

This file gates the headline claim — the sharded backend is >= 2x faster
than per-cell dispatch on a many-small-cell sweep with identical results —
and appends the measured trajectory to ``BENCH_sweep.json``, which CI diffs
against the committed ``BENCH_sweep.baseline.json`` via
``scripts/check_bench_regression.py``.  A second workload records the warm
resume-scan cost (every cell served from the store) so cache-path
regressions show up in the trajectory too.
"""

import time
from pathlib import Path

from _bench_utils import record, report

from repro.experiments import ResultStore, expand_grid, run_sweep

#: Where the measured trajectory is written (diffed against the committed
#: ``BENCH_sweep.baseline.json`` by ``scripts/check_bench_regression.py``).
ARTIFACT = Path(__file__).resolve().parent / "BENCH_sweep.json"

#: The acceptance criterion: sharded execution >= 2x faster than per-cell
#: process dispatch on the many-small-cell grid below (measured ~2.5-3x).
REQUIRED_SPEEDUP = 2.0

#: 1 scenario x 3 adversaries x 192 seeds = 576 cells of ~0.3ms each: the
#: regime the sharded backend exists for.  ``summary`` keeps the per-cell
#: analysis cost small so dispatch overhead, not analysis, is measured.
GRID = dict(
    scenarios=["line-flood"],
    adversaries=["earliest", "latest", "random"],
    seeds=range(192),
    param_grid={"horizon": [3]},
    analyses=("summary",),
)

WORKERS = 2


def _grid():
    return expand_grid(
        GRID["scenarios"],
        adversaries=GRID["adversaries"],
        seeds=GRID["seeds"],
        param_grid=GRID["param_grid"],
        analyses=GRID["analyses"],
    )


def _strip(records):
    return [{k: v for k, v in r.items() if k != "duration_s"} for r in records]


def _best_of(rounds, fn):
    best = float("inf")
    outcome = None
    for _ in range(rounds):
        started = time.perf_counter()
        outcome = fn()
        best = min(best, time.perf_counter() - started)
    return best, outcome


def test_bench_sharded_vs_percell_dispatch():
    """Sharded backend >= 2x over per-cell dispatch, identical records."""
    cells = _grid()

    percell_s, percell = _best_of(
        2, lambda: run_sweep(cells, store=None, workers=WORKERS, backend="process")
    )
    sharded_s, sharded = _best_of(
        2, lambda: run_sweep(cells, store=None, workers=WORKERS, backend="sharded")
    )
    assert percell.errors == 0 and percell.executed == len(cells)
    assert sharded.errors == 0 and sharded.executed == len(cells)
    assert _strip(sharded.records) == _strip(percell.records), (
        "sharded backend changed sweep results"
    )

    speedup = percell_s / sharded_s if sharded_s > 0 else float("inf")
    report(
        "Sweep backends: sharded vs per-cell dispatch",
        "no measurement in the paper (harness cost)",
        f"{len(cells)} cells x {WORKERS} workers: per-cell {percell_s * 1e3:.0f}ms, "
        f"sharded {sharded_s * 1e3:.0f}ms, speedup {speedup:.1f}x",
    )
    record(
        ARTIFACT,
        "many-small-cells",
        {
            "cells": len(cells),
            "workers": WORKERS,
            "percell_s": round(percell_s, 6),
            "sharded_s": round(sharded_s, 6),
            "sharded_vs_percell_speedup": round(speedup, 1),
        },
    )

    assert speedup >= REQUIRED_SPEEDUP, (
        f"sharded backend only {speedup:.1f}x faster than per-cell dispatch "
        f"({percell_s * 1e3:.0f}ms vs {sharded_s * 1e3:.0f}ms)"
    )


def test_bench_resume_scan(tmp_path):
    """Warm resume: the whole grid served from the store, zero execution."""
    cells = _grid()
    store = ResultStore(str(tmp_path / "resume.jsonl"))
    cold = run_sweep(cells, store=store, workers=WORKERS, backend="sharded")
    assert cold.executed == len(cells) and cold.errors == 0

    scan_s, warm = _best_of(
        3,
        lambda: run_sweep(
            cells, store=ResultStore(store.path), workers=WORKERS, resume=True
        ),
    )
    assert warm.cached == len(cells) and warm.executed == 0

    report(
        "Sweep resume: warm scan (100% cache hits)",
        "no measurement in the paper (harness cost)",
        f"{len(cells)} cells scanned in {scan_s * 1e3:.1f}ms "
        f"({len(cells) / scan_s:.0f} cells/s)",
    )
    record(
        ARTIFACT,
        "resume-scan",
        {
            "cells": len(cells),
            "cached": warm.cached,
            "resume_scan_s": round(scan_s, 6),
        },
    )
