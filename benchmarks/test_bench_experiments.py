"""Benchmarks for the experiment sweep harness.

Measures the properties the subsystem exists to provide: warm (cache-hit)
sweeps must be orders of magnitude cheaper than cold ones, and multi-worker
execution must not lose determinism.  The grid is the seeded 3x3x4 default
(3 scenarios x 3 adversaries x 4 seeds = 36 cells).
"""

import pytest

from _bench_utils import report

from repro.experiments import ADVERSARIES, ResultStore, expand_grid, run_cell, run_sweep
from repro.experiments.cli import DEFAULT_SWEEP_SCENARIOS


def _grid():
    return expand_grid(
        list(DEFAULT_SWEEP_SCENARIOS),
        adversaries=list(ADVERSARIES),
        seeds=[0, 1, 2, 3],
    )


def test_bench_cold_sweep_serial(benchmark, tmp_path):
    """Cold sweep throughput: 36 cells simulated and analysed, no cache."""
    cells = _grid()

    def pipeline():
        store = ResultStore(str(tmp_path / f"cold-{pipeline.counter}.jsonl"))
        pipeline.counter += 1
        return run_sweep(cells, store=store, workers=1)

    pipeline.counter = 0
    outcome = benchmark(pipeline)
    assert outcome.executed == len(cells) and outcome.errors == 0
    report(
        "Experiments: cold 3x3x4 sweep (serial)",
        "no measurement in the paper (harness cost)",
        f"{outcome.total} cells in {outcome.duration_s:.3f}s "
        f"({outcome.total / outcome.duration_s:.0f} cells/s)",
    )


def test_bench_warm_sweep_cache_hits(benchmark, tmp_path):
    """Warm sweep throughput: every cell served from the JSONL store."""
    cells = _grid()
    store = ResultStore(str(tmp_path / "warm.jsonl"))
    cold = run_sweep(cells, store=store, workers=1)
    assert cold.executed == len(cells)

    outcome = benchmark(lambda: run_sweep(cells, store=store, workers=1))
    assert outcome.cached == len(cells) and outcome.executed == 0
    speedup = cold.duration_s / outcome.duration_s if outcome.duration_s else float("inf")
    report(
        "Experiments: warm 3x3x4 sweep (100% cache hits)",
        "no measurement in the paper (harness cost)",
        f"{outcome.total} hits in {outcome.duration_s * 1e3:.1f}ms "
        f"(~{speedup:.0f}x over cold)",
    )


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_bench_sweep_workers(benchmark, tmp_path, workers):
    """Serial vs. multi-worker speedup on an uncached heavy-ish grid.

    Uses larger instances (bigger torus, deeper tree, longer horizon) so the
    per-cell work dominates pool overhead.
    """
    cells = expand_grid(
        ["torus-flood", "tree-flood"],
        adversaries=["random"],
        seeds=[0, 1, 2],
        param_grid={"horizon": [16]},
    )

    def pipeline():
        return run_sweep(cells, store=None, workers=workers)

    outcome = benchmark.pedantic(pipeline, rounds=2, iterations=1)
    assert outcome.errors == 0 and outcome.executed == len(cells)
    report(
        f"Experiments: uncached sweep, workers={workers}",
        "no measurement in the paper (harness cost)",
        f"{outcome.total} cells in {outcome.duration_s:.3f}s",
    )


def test_bench_single_cell_analysis_cost(benchmark):
    """One cell end-to-end: build, simulate, and run the default analyses."""
    cells = expand_grid(["torus-flood"], adversaries=["random"], seeds=[0])
    record = benchmark(lambda: run_cell(cells[0]))
    assert record["status"] == "ok"
    report(
        "Experiments: single torus-flood cell",
        "no measurement in the paper (harness cost)",
        f"{record['duration_s'] * 1e3:.1f}ms "
        f"({record['analyses']['summary']['deliveries']} deliveries analysed)",
    )
