"""Benchmark gate for the observability layer (PR 6).

The ``repro.obs`` counters are *always on* — every engine row, session
advance, intern canonicalisation, and store append bumps a module-global
:class:`~repro.obs.metrics.Counter`.  That is only acceptable if the cost is
noise: this file measures the per-operation price of the two hot-path
idioms (``counter.value += 1`` and a ``span()`` enter/exit), counts how many
such operations a representative serial sweep actually performs (from the
registry delta itself), and gates the estimated instrumentation share of
the sweep's wall time at < 5%.

The estimate is deliberately conservative: counter deltas are summed by
*value*, so a single ``+= len(batch)`` bulk increment is priced as
``len(batch)`` separate operations.

Measured numbers land in ``BENCH_obs.json``.  No baseline is committed for
this file — the interesting quantity is the hard in-test gate, and the raw
op counts vary with grid shape, so an exact-match baseline would be brittle.
"""

import time
from pathlib import Path

from _bench_utils import record, report

from repro.experiments import expand_grid, run_sweep
from repro.obs import metrics as obs_metrics
from repro.obs.collect import registry_baseline, registry_delta
from repro.obs.trace import span

ARTIFACT = Path(__file__).resolve().parent / "BENCH_obs.json"

#: The acceptance criterion from the issue: always-on metrics must cost
#: less than 5% of a representative sweep's wall time.
MAX_OVERHEAD_FRACTION = 0.05

COUNTER_TIMING_OPS = 200_000
SPAN_TIMING_OPS = 20_000


def _time_counter_op() -> float:
    """Seconds per ``counter.value += 1`` (the hot-path idiom)."""
    counter = obs_metrics.counter("bench.obs.counter")
    start = time.perf_counter()
    for _ in range(COUNTER_TIMING_OPS):
        counter.value += 1
    return (time.perf_counter() - start) / COUNTER_TIMING_OPS


def _time_span_op() -> float:
    """Seconds per ``span()`` enter/exit (tracing off: histogram only)."""
    start = time.perf_counter()
    for _ in range(SPAN_TIMING_OPS):
        with span("bench.obs.span"):
            pass
    return (time.perf_counter() - start) / SPAN_TIMING_OPS


def test_metrics_overhead_under_five_percent():
    cells = expand_grid(
        ["line-flood"],
        adversaries=["earliest", "latest", "random"],
        seeds=range(48),
        param_grid={"horizon": [4]},
    )

    baseline = registry_baseline()
    start = time.perf_counter()
    outcome = run_sweep(cells, workers=1, backend="serial")
    workload_s = time.perf_counter() - start
    delta = registry_delta(baseline)
    assert outcome.errors == 0

    # Every counter unit and every histogram observation the sweep performed.
    counter_ops = sum(delta["counters"].values())
    span_ops = sum(h["count"] for h in delta["histograms"].values())
    assert counter_ops > 0 and span_ops > 0

    per_counter_s = _time_counter_op()
    per_span_s = _time_span_op()
    estimated_s = counter_ops * per_counter_s + span_ops * per_span_s
    fraction = estimated_s / workload_s

    report(
        "obs-overhead",
        f"always-on metrics cost < {MAX_OVERHEAD_FRACTION:.0%} of sweep time",
        f"{fraction:.2%} ({counter_ops} counter ops + {span_ops} spans "
        f"over {workload_s * 1e3:.0f}ms)",
    )
    record(
        ARTIFACT,
        "serial_sweep_overhead",
        {
            "workload_s": round(workload_s, 4),
            "counter_ops": counter_ops,
            "span_ops": span_ops,
            "counter_op_ns": round(per_counter_s * 1e9, 1),
            "span_op_ns": round(per_span_s * 1e9, 1),
            "estimated_overhead_s": round(estimated_s, 5),
            "overhead_fraction": round(fraction, 5),
        },
        top_level={"cells": len(cells)},
    )

    assert fraction < MAX_OVERHEAD_FRACTION, (
        f"instrumentation overhead {fraction:.2%} exceeds "
        f"{MAX_OVERHEAD_FRACTION:.0%} of workload time"
    )
