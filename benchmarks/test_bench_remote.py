"""Benchmarks for the distributed sweep fabric (PR 8).

The remote backend trades per-shard socket round-trips and JSON cell
encoding for the ability to run workers on other machines and survive their
deaths.  These benchmarks put numbers on that trade on a single host: the
coordination overhead of a clean one-worker remote sweep versus serial
execution, and the wall-clock cost of recovering from a severed worker
connection mid-sweep (lease expiry + reassignment).

A committed ``BENCH_remote.baseline.json`` gates the trajectory through
``scripts/check_bench_regression.py``: the fabric overhead rides the
hardware-robust ``serial_vs_remote_speedup`` ratio (how much of serial
throughput the remote path retains), absolute timings warn only, and
correctness (bit-identical records) is asserted here regardless.
"""

import time
from pathlib import Path

from _bench_utils import record, report

from repro.experiments import expand_grid, run_sweep
from repro.experiments.remote import RemoteExecutor, run_worker

ARTIFACT = Path(__file__).resolve().parent / "BENCH_remote.json"

GRID = dict(
    scenarios=["line-flood"],
    adversaries=["earliest", "latest"],
    seeds=range(12),
    analyses=("summary",),
)


def _grid():
    return expand_grid(
        GRID["scenarios"],
        adversaries=GRID["adversaries"],
        seeds=GRID["seeds"],
        analyses=GRID["analyses"],
        horizon=3,
    )


def _strip(records):
    return [{k: v for k, v in r.items() if k != "duration_s"} for r in records]


def _remote_sweep(cells, **worker_kwargs):
    import threading

    executor = RemoteExecutor(workers_hint=1, shard_size=4, poll_s=0.02,
                              **worker_kwargs.pop("executor_kwargs", {}))
    worker = threading.Thread(
        target=run_worker,
        args=(f"{executor.address[0]}:{executor.address[1]}",),
        kwargs={"heartbeat_s": 0.2, "connect_timeout_s": 15.0, **worker_kwargs},
        daemon=True,
    )
    worker.start()
    started = time.perf_counter()
    outcome = run_sweep(cells, store=None, backend=executor)
    elapsed = time.perf_counter() - started
    worker.join(timeout=10.0)
    return elapsed, outcome


def test_bench_remote_fabric_overhead():
    """Coordination cost of a clean one-worker remote sweep vs serial."""
    from repro.experiments import faults

    cells = _grid()
    started = time.perf_counter()
    serial = run_sweep(cells, store=None, backend="serial")
    serial_s = time.perf_counter() - started
    assert serial.errors == 0

    try:
        remote_s, remote = _remote_sweep(cells, worker_id="bench")
    finally:
        faults.reset()  # run_worker marks this process; undo for later tests
    assert remote.errors == 0
    assert _strip(remote.records) == _strip(serial.records), (
        "remote backend changed sweep results"
    )

    overhead = remote_s / serial_s if serial_s > 0 else float("inf")
    report(
        "Remote fabric: one local worker vs serial",
        "no measurement in the paper (harness cost)",
        f"{len(cells)} cells: serial {serial_s * 1e3:.0f}ms, "
        f"remote {remote_s * 1e3:.0f}ms ({overhead:.2f}x)",
    )
    record(
        ARTIFACT,
        "clean-one-worker",
        {
            "cells": len(cells),
            "serial_s": round(serial_s, 6),
            "remote_s": round(remote_s, 6),
            "serial_vs_remote_speedup": round(serial_s / remote_s, 2)
            if remote_s > 0
            else 0.0,
        },
    )


def test_bench_remote_drop_recovery():
    """Wall-clock cost of recovering one severed connection mid-sweep."""
    from repro.experiments import faults

    cells = _grid()
    try:
        clean_s, clean = _remote_sweep(
            cells,
            worker_id="bench-clean",
            executor_kwargs=dict(lease_base_s=1.0, lease_cell_s=0.1),
        )
        faults.reset()
        faulty_s, faulty = _remote_sweep(
            cells,
            worker_id="bench-faulty",
            faults_spec="drop@worker.result:1",
            executor_kwargs=dict(lease_base_s=1.0, lease_cell_s=0.1),
        )
    finally:
        faults.reset()
    assert clean.errors == 0 and faulty.errors == 0
    assert _strip(faulty.records) == _strip(clean.records), (
        "fault recovery changed sweep results"
    )

    report(
        "Remote fabric: dropped-connection recovery cost",
        "no measurement in the paper (harness cost)",
        f"{len(cells)} cells: clean {clean_s * 1e3:.0f}ms, "
        f"one drop {faulty_s * 1e3:.0f}ms (+{(faulty_s - clean_s) * 1e3:.0f}ms)",
    )
    record(
        ARTIFACT,
        "drop-recovery",
        {
            "cells": len(cells),
            "clean_s": round(clean_s, 6),
            "with_drop_s": round(faulty_s, 6),
            "recovery_cost_s": round(max(0.0, faulty_s - clean_s), 6),
        },
    )
