"""Benchmarks for the segmented result store (PR 9).

The sidecar index exists for one reason: resuming a large sweep must not
re-parse the whole store just to learn which cells are already done.  This
bench builds a ~10^4-record segmented store (~1 KiB per record, so tens of
sealed segments) and times the *resume probe* — a cold open followed by a
membership check for every cell — through the O(1) index against the same
store opened with the index disabled (``use_index=False``), which falls back
to a full CRC-verifying scan.  The acceptance gate is a >= 5x speedup;
``scripts/check_bench_regression.py`` ratio-gates the recorded number
against the committed baseline so the win cannot silently erode.

Sealing throughput (``migrate()`` on the same store) is recorded as an
ungated absolute timing, and the deterministic layout counters (records,
segments) are gated exactly — they drift only when the workload itself
changes.
"""

import time
from pathlib import Path

from _bench_utils import record, report

from repro.experiments.store import ResultStore

ARTIFACT = Path(__file__).resolve().parent / "BENCH_store.json"

RECORDS = 10_000
PAD = 900  # ~1 KiB per JSONL line once keyed and wrapped
ROTATE_BYTES = 256 * 1024  # tens of segments at ~1 KiB per record
PROBES = 2_000
REQUIRED_SPEEDUP = 5.0


def _key(i):
    return f"bench-{i:08d}"


def _build_store(path):
    store = ResultStore(path, rotate_bytes=ROTATE_BYTES)
    store.put_many(
        [
            {"key": _key(i), "status": "ok", "value": i, "pad": "x" * PAD}
            for i in range(RECORDS)
        ]
    )
    return store


def _probe(store, keys):
    """The resume scan's store half: cold open + one membership per cell."""
    started = time.perf_counter()
    hits = sum(1 for key in keys if key in store)
    return time.perf_counter() - started, hits


def test_bench_resume_probe_indexed_vs_full_scan(tmp_path):
    path = str(tmp_path / "results.jsonl")
    store = _build_store(path)
    seal_started = time.perf_counter()
    info = store.migrate()  # seal the tail so every record is segment-resident
    seal_s = time.perf_counter() - seal_started
    assert info["tail_records"] == 0
    assert info["index"] == "fresh"
    segments = len(info["segments"])
    assert segments >= 10

    probe_keys = [_key(i) for i in range(0, RECORDS, RECORDS // PROBES)]
    probe_keys += [f"missing-{i}" for i in range(len(probe_keys) // 10)]

    indexed_s, indexed_hits = _probe(
        ResultStore(path, rotate_bytes=ROTATE_BYTES), probe_keys
    )
    fullscan_s, fullscan_hits = _probe(
        ResultStore(path, rotate_bytes=ROTATE_BYTES, use_index=False), probe_keys
    )
    assert indexed_hits == fullscan_hits == PROBES

    speedup = fullscan_s / indexed_s if indexed_s > 0 else float("inf")
    report(
        "Segmented store: indexed resume probe vs full scan",
        "no measurement in the paper (harness cost)",
        f"{RECORDS} records / {segments} segments, {len(probe_keys)} probes: "
        f"full scan {fullscan_s * 1e3:.1f}ms, indexed {indexed_s * 1e3:.1f}ms "
        f"({speedup:.0f}x)",
    )
    record(
        ARTIFACT,
        "resume-probe",
        {
            "records": RECORDS,
            "segments": segments,
            "probes": len(probe_keys),
            "seal_s": round(seal_s, 6),
            "fullscan_probe_s": round(fullscan_s, 6),
            "indexed_probe_s": round(indexed_s, 6),
            "probe_speedup": round(speedup, 1),
        },
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"indexed resume probe only {speedup:.1f}x faster than the full scan "
        f"(required >= {REQUIRED_SPEEDUP}x)"
    )
