"""Benchmarks validating Theorems 1-4 on randomized and exhaustive workloads.

The paper's "results" are theorems; these benchmarks time the corresponding
checkers on non-trivial instances while asserting that the theorem statements
hold on every instance generated.
"""

import itertools

from _bench_utils import report

from repro.core import (
    KnowledgeChecker,
    check_theorem2,
    check_theorem3,
    empirical_min_gap,
    general,
    is_recognized,
    longest_zigzag_between,
)
from repro.scenarios import figure2b_scenario, flooding_scenario
from repro.simulation import (
    Context,
    ProtocolAssignment,
    actor_protocol,
    enumerate_runs,
    go_at,
    go_sender_protocol,
    simulate,
    timed_network,
)


def test_bench_theorem1_zigzag_sufficiency(benchmark):
    """Theorem 1: every extracted zigzag's weight is respected by the run."""

    def pipeline():
        checked = 0
        for seed in range(5):
            run = flooding_scenario(num_processes=4, seed=seed, horizon=12).run()
            finals = [run.final_node(p) for p in run.processes]
            for source, target in itertools.permutations(finals, 2):
                found = longest_zigzag_between(run, source, target)
                if found is None:
                    continue
                weight, pattern = found
                assert run.time_of(target) - run.time_of(source) >= weight
                checked += 1
        return checked

    checked = benchmark(pipeline)
    assert checked > 0
    report(
        "Theorem 1",
        "a zigzag of weight w from theta1 to theta2 forces time(theta2) - time(theta1) >= w",
        f"{checked} extracted zigzags across 5 random runs, zero violations",
    )


def test_bench_theorem2_zigzag_necessity(benchmark):
    """Theorem 2: supported precedences are witnessed by zigzags, tightly."""

    def pipeline():
        results = []
        for seed in range(5):
            run = flooding_scenario(num_processes=4, seed=seed, horizon=12).run()
            source = run.final_node(run.processes[0])
            target = run.final_node(run.processes[-1])
            rep = check_theorem2(run, source, target)
            if rep.has_constraint:
                results.append(rep)
        return results

    results = benchmark(pipeline)
    assert results
    assert all(rep.zigzag_weight == rep.constraint_weight for rep in results)
    assert all(rep.tight for rep in results)
    report(
        "Theorem 2",
        "the longest GB(r) path converts to an equal-weight zigzag and the slow run attains it",
        f"{len(results)} node pairs: all witnesses tight",
    )


def test_bench_theorem3_knowledge_of_preconditions(benchmark):
    """Theorem 3: whenever B acts under Protocol 2, it knows the precedence."""
    margins = (1, 3, 5, 7)

    def pipeline():
        reports = []
        for margin in margins:
            run = figure2b_scenario(margin=margin).run()
            reports.append(
                check_theorem3(
                    run,
                    actor="B",
                    action="b",
                    go_sender="C",
                    go_recipient="A",
                    margin=margin,
                    late=True,
                )
            )
        return reports

    reports = benchmark(pipeline)
    assert all(rep.holds for rep in reports)
    assert any(rep.acted for rep in reports)
    report(
        "Theorem 3",
        "B may perform b only knowing K_sigma(sigma_C.A --x--> sigma)",
        f"margins {margins}: all action points satisfied the knowledge precondition",
    )


def test_bench_theorem4_visible_zigzag_theorem(benchmark):
    """Theorem 4: graph-derived knowledge equals the enumerated minimum gap."""
    net = timed_network({("C", "A"): (1, 2), ("C", "B"): (2, 3), ("A", "B"): (1, 2)})
    protocols = ProtocolAssignment()
    protocols.assign("C", go_sender_protocol())
    protocols.assign("A", actor_protocol("a", "C"))
    context = Context(net)
    horizon = 7

    def pipeline():
        reference = simulate(context, protocols, external_inputs=go_at(1, "C"), horizon=horizon)
        runs = list(
            enumerate_runs(context, protocols, external_inputs=go_at(1, "C"), horizon=horizon)
        )
        go_node = reference.external_deliveries[0].receiver_node
        theta_a = general(go_node, ("C", "A"))
        rows = []
        for observer in ("A", "B"):
            sigma = reference.final_node(observer)
            if not is_recognized(theta_a, sigma):
                continue
            known = KnowledgeChecker(sigma, net).max_known_gap(theta_a, sigma)
            empirical = empirical_min_gap(runs, sigma, theta_a, sigma)
            rows.append((observer, known, empirical))
        return len(runs), rows

    num_runs, rows = benchmark(pipeline)
    assert rows
    for observer, known, empirical in rows:
        assert known is not None and empirical is not None
        assert known == empirical
    report(
        "Theorem 4",
        "K_sigma(theta1 --x--> theta2) iff a sigma-visible zigzag of weight >= x exists",
        f"{num_runs} enumerated runs; knowledge == empirical minimum for {rows}",
    )
