"""Unit tests for the weighted-graph toolkit (longest paths, cycles, subgraphs)."""

import pytest

from repro.core import PositiveCycleError, WeightedGraph


def chain_graph():
    graph = WeightedGraph()
    graph.add_edge("a", "b", 2)
    graph.add_edge("b", "c", 3)
    graph.add_edge("a", "c", 1)
    return graph


class TestConstruction:
    def test_nodes_and_edges(self):
        graph = chain_graph()
        assert set(graph.nodes) == {"a", "b", "c"}
        assert graph.edge_count() == 3
        assert len(graph) == 3
        assert "a" in graph and "z" not in graph

    def test_out_and_in_edges(self):
        graph = chain_graph()
        assert {e.target for e in graph.out_edges("a")} == {"b", "c"}
        assert {e.source for e in graph.in_edges("c")} == {"b", "a"}
        assert list(graph.successors("a")) == ["b", "c"]

    def test_isolated_node(self):
        graph = WeightedGraph()
        graph.add_node("solo")
        assert graph.out_edges("solo") == ()
        assert len(graph) == 1


class TestLongestPaths:
    def test_longest_path_weights(self):
        graph = chain_graph()
        weights = graph.longest_path_weights("a")
        assert weights["a"] == 0
        assert weights["b"] == 2
        assert weights["c"] == 5  # a->b->c beats a->c

    def test_longest_path_weight_unreachable(self):
        graph = chain_graph()
        graph.add_node("island")
        assert graph.longest_path_weight("a", "island") is None

    def test_longest_path_reconstruction(self):
        graph = chain_graph()
        weight, edges = graph.longest_path("a", "c")
        assert weight == 5
        assert [e.target for e in edges] == ["b", "c"]

    def test_longest_path_missing_target_raises(self):
        graph = chain_graph()
        with pytest.raises(KeyError):
            graph.longest_path_weight("a", "nope")
        with pytest.raises(KeyError):
            graph.longest_path_weights("nope")

    def test_negative_weights_allowed(self):
        graph = WeightedGraph()
        graph.add_edge("a", "b", -4)
        graph.add_edge("b", "c", 10)
        assert graph.longest_path_weight("a", "c") == 6

    def test_zero_weight_cycle_is_fine(self):
        graph = WeightedGraph()
        graph.add_edge("a", "b", 3)
        graph.add_edge("b", "a", -3)
        graph.add_edge("b", "c", 1)
        assert graph.longest_path_weight("a", "c") == 4
        assert not graph.has_positive_cycle()

    def test_positive_cycle_detected(self):
        graph = WeightedGraph()
        graph.add_edge("a", "b", 2)
        graph.add_edge("b", "a", -1)
        graph.add_edge("b", "c", 1)
        assert graph.has_positive_cycle()
        with pytest.raises(PositiveCycleError):
            graph.longest_path_weights("a")
        with pytest.raises(PositiveCycleError):
            graph.longest_path("a", "c")

    def test_self_distance_zero(self):
        graph = chain_graph()
        assert graph.longest_path_weight("a", "a") == 0
        weight, edges = graph.longest_path("b", "b")
        assert weight == 0 and edges == ()


class TestReachabilityAndSubgraphs:
    def test_reachable_to(self):
        graph = chain_graph()
        assert graph.reachable_to("c") == frozenset({"a", "b", "c"})
        assert graph.reachable_to("a") == frozenset({"a"})
        with pytest.raises(KeyError):
            graph.reachable_to("missing")

    def test_reachable_from(self):
        graph = chain_graph()
        assert graph.reachable_from("a") == frozenset({"a", "b", "c"})
        assert graph.reachable_from("c") == frozenset({"c"})

    def test_induced_subgraph(self):
        graph = chain_graph()
        sub = graph.induced_subgraph({"a", "b"})
        assert set(sub.nodes) == {"a", "b"}
        assert sub.edge_count() == 1
        assert sub.longest_path_weight("a", "b") == 2
