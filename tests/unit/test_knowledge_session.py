"""Unit tests for the engine overlay layer and the incremental knowledge session."""

import pytest

from repro.core import KnowledgeChecker, KnowledgeSession, general
from repro.core.causality import boundary_nodes, past_nodes
from repro.core.extended_graph import ExtendedGraphError
from repro.core.graph import NEG_INF, PositiveCycleError, WeightedGraph
from repro.coordination.optimal import find_go_node
from repro.simulation import (
    Context,
    EarliestDelivery,
    ProtocolAssignment,
    actor_protocol,
    fully_connected,
    go_at,
    go_sender_protocol,
    simulate,
)
from repro.simulation.interning import intern_pool


# ---------------------------------------------------------------------------
# LongestPathEngine.set_overlay / overlay_weight
# ---------------------------------------------------------------------------


def combined_reference(base, overlay):
    """Base + overlay as one plain graph, answered by the naive relaxation."""
    graph = WeightedGraph()
    for node in base.nodes:
        graph.add_node(node)
    for edge in base.edges:
        graph.add_edge(edge.source, edge.target, edge.weight, edge.label)
    for source, target, weight in overlay:
        graph.add_edge(source, target, weight, "overlay")
    return graph


class TestEngineOverlay:
    def base_graph(self):
        graph = WeightedGraph()
        graph.add_edge("a", "b", 2)
        graph.add_edge("b", "c", 3)
        graph.add_edge("a", "c", 4)
        graph.add_edge("c", "b", -5)
        return graph

    def test_empty_overlay_agrees_with_base_weight(self):
        graph = self.base_graph()
        graph.engine.set_overlay([])
        for source in "abc":
            for target in "abc":
                assert graph.engine.overlay_weight(source, target) == graph.engine.weight(
                    source, target
                )

    def test_overlay_edges_participate_and_retract(self):
        graph = self.base_graph()
        engine = graph.engine
        engine.set_overlay([("b", "psi", 1), ("psi", "a", -4)])
        reference = combined_reference(graph, [("b", "psi", 1), ("psi", "a", -4)])
        for source in ("a", "b", "c", "psi"):
            for target in ("a", "b", "c", "psi"):
                assert engine.overlay_weight(source, target) == reference.longest_path_weight(
                    source, target, reference=True
                ), (source, target)
        # Replacing the overlay *retracts* the old edges entirely.
        engine.set_overlay([("b", "psi", 1)])
        assert engine.overlay_weight("psi", "a") is None
        assert engine.overlay_weight("a", "psi") == 3  # longest a->b is 2, plus 1
        # The base graph itself never saw any overlay edge.
        assert engine.weight("a", "b") == 2
        with pytest.raises(KeyError):
            graph.engine.weight("psi", "a")

    def test_overlay_survives_base_growth(self):
        graph = self.base_graph()
        engine = graph.engine
        engine.set_overlay([("c", "psi", 0), ("psi", "d", 1)])
        assert engine.overlay_weight("a", "psi") == 5
        # Base grows after the overlay was installed; overlay remaps.
        graph.add_edge("c", "d", 10)
        assert engine.weight("a", "d") == 15
        assert engine.overlay_weight("a", "d") == 15
        assert engine.overlay_weight("a", "psi") == 5
        reference = combined_reference(graph, [("c", "psi", 0), ("psi", "d", 1)])
        for source in ("a", "b", "c", "d", "psi"):
            for target in ("a", "b", "c", "d", "psi"):
                assert engine.overlay_weight(source, target) == reference.longest_path_weight(
                    source, target, reference=True
                )

    def test_overlay_positive_cycle_raises(self):
        graph = WeightedGraph()
        graph.add_edge("a", "b", 1)
        engine = graph.engine
        engine.set_overlay([("b", "a", 1)])  # a -> b -> a has weight 2
        with pytest.raises(PositiveCycleError):
            engine.overlay_weight("a", "b")
        # Clearing the overlay clears the infeasibility.
        engine.set_overlay([])
        assert engine.overlay_weight("a", "b") == 1

    def test_overlay_row_covers_overlay_nodes(self):
        graph = self.base_graph()
        engine = graph.engine
        engine.set_overlay([("a", "x", 7)])
        row = engine.overlay_row("a")
        assert row["x"] == 7
        assert row["b"] == 2
        assert engine.overlay_row("x")["x"] == 0
        assert engine.overlay_row("x")["a"] == NEG_INF

    def test_overlay_rows_are_cached_per_install(self):
        graph = self.base_graph()
        engine = graph.engine
        engine.set_overlay([("a", "x", 7)])
        engine.overlay_weight("a", "x")
        computed = engine.stats.overlay_rows_computed
        engine.overlay_weight("a", "b")
        assert engine.stats.overlay_rows_computed == computed
        assert engine.stats.overlay_row_cache_hits >= 1
        engine.set_overlay([("a", "x", 8)])
        assert engine.overlay_weight("a", "x") == 8
        assert engine.stats.overlay_rows_computed == computed + 1


# ---------------------------------------------------------------------------
# KnowledgeSession lifecycle
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def coordination_run():
    net = fully_connected(["A", "B", "C"], 1, 3)
    protocols = ProtocolAssignment()
    protocols.assign("C", go_sender_protocol())
    protocols.assign("A", actor_protocol("a", "C"))
    run = simulate(
        Context(net),
        protocols,
        delivery=EarliestDelivery(),
        external_inputs=go_at(2, "C"),
        horizon=10,
    )
    return run


class TestKnowledgeSession:
    def test_advance_is_incremental_along_a_timeline(self, coordination_run):
        run = coordination_run
        session = KnowledgeSession(run.timed_network)
        appended = []
        for _, node in run.timelines["B"]:
            session.advance(node)
            appended.append(session.nodes_appended)
        assert session.resets == 0
        assert appended == sorted(appended)
        # Total appended work equals the final past -- each node entered once.
        assert session.nodes_appended == len(past_nodes(run.final_node("B")))

    def test_advance_is_idempotent(self, coordination_run):
        run = coordination_run
        sigma = run.final_node("B")
        session = KnowledgeSession(run.timed_network).advance(sigma)
        advances = session.advances
        session.advance(sigma)
        assert session.advances == advances

    def test_non_monotone_advance_resets_and_stays_correct(self, coordination_run):
        run = coordination_run
        net = run.timed_network
        session = KnowledgeSession(net)
        session.advance(run.final_node("B"))
        # A's final node does not contain B's final node in its past.
        sigma_a = run.final_node("A")
        session.advance(sigma_a)
        assert session.resets == 1
        checker = KnowledgeChecker(sigma_a, net)
        for earlier in boundary_nodes(sigma_a).values():
            assert session.max_known_gap(earlier, sigma_a) == checker.max_known_gap(
                earlier, sigma_a
            )

    def test_pool_swap_resets(self, coordination_run):
        run = coordination_run
        net = run.timed_network
        session = KnowledgeSession(net)
        session.advance(run.timelines["B"][2][1])
        with intern_pool():
            protocols = ProtocolAssignment()
            protocols.assign("C", go_sender_protocol())
            protocols.assign("A", actor_protocol("a", "C"))
            other = simulate(
                Context(net),
                protocols,
                delivery=EarliestDelivery(),
                external_inputs=go_at(2, "C"),
                horizon=8,
            )
            sigma = other.final_node("B")
            session.advance(sigma)
            assert session.resets == 1
            checker = KnowledgeChecker(sigma, net)
            for earlier in boundary_nodes(sigma).values():
                assert session.max_known_gap(earlier, sigma) == checker.max_known_gap(
                    earlier, sigma
                )

    def test_queries_before_advance_raise(self, coordination_run):
        run = coordination_run
        session = KnowledgeSession(run.timed_network)
        with pytest.raises(ExtendedGraphError):
            session.max_known_gap(run.final_node("B"), run.final_node("B"))
        with pytest.raises(ExtendedGraphError):
            session.find_go_node("C")

    def test_unrecognized_nodes_raise(self, coordination_run):
        run = coordination_run
        session = KnowledgeSession(run.timed_network)
        session.advance(run.timelines["B"][1][1])
        stranger = run.final_node("A")
        if stranger not in past_nodes(session.sigma):
            with pytest.raises(ExtendedGraphError):
                session.max_known_gap(stranger, session.sigma)

    def test_go_node_memoization(self, coordination_run):
        run = coordination_run
        session = KnowledgeSession(run.timed_network)
        found = []
        for _, node in run.timelines["B"]:
            if node.is_initial:
                continue
            session.advance(node)
            go = session.find_go_node("C")
            assert go == find_go_node(node, "C")
            found.append(go)
        # The trigger eventually becomes visible and stays the same object.
        assert found[-1] is not None
        first = next(index for index, go in enumerate(found) if go is not None)
        assert all(go is found[first] for go in found[first:])

    def test_known_window_and_knows_match_checker(self, coordination_run):
        run = coordination_run
        net = run.timed_network
        session = KnowledgeSession(net)
        for _, node in run.timelines["B"]:
            if node.is_initial:
                continue
            session.advance(node)
            checker = KnowledgeChecker(node, net)
            go = session.find_go_node("C")
            if go is None:
                continue
            theta = general(go, ("C", "A"))
            assert session.known_window(theta, node) == checker.known_window(theta, node)
            for margin in (-2, 0, 3):
                assert session.knows(theta, node, margin) == checker.knows(
                    theta, node, margin
                )

    def test_describe_mentions_progress(self, coordination_run):
        run = coordination_run
        session = KnowledgeSession(run.timed_network)
        assert "sigma=-" in session.describe()
        session.advance(run.final_node("B"))
        text = session.describe()
        assert "advances=1" in text and "core_edges=" in text
