"""Unit tests for sigma-visible zigzag patterns (Definition 7)."""

import pytest

from repro.core import (
    TwoLeggedFork,
    ZigzagPattern,
    general,
    is_visible_zigzag,
    search_visible_zigzag,
    visible_weight,
)
from repro.scenarios import figure2b_scenario


@pytest.fixture(scope="module")
def figure2b_setup():
    scenario = figure2b_scenario()
    run = scenario.run()
    externals = {r.process: r.receiver_node for r in run.external_deliveries}
    fork1 = TwoLeggedFork(general(externals["C"]), ("C", "D"), ("C", "A"))
    fork2 = TwoLeggedFork(general(externals["E"]), ("E", "B"), ("E", "D"))
    pattern = ZigzagPattern((fork1, fork2))
    sigma = run.find_action("B", "b").node
    return scenario, run, pattern, sigma


class TestVisibility:
    def test_figure2b_pattern_is_visible_at_b(self, figure2b_setup):
        _, run, pattern, sigma = figure2b_setup
        assert is_visible_zigzag(pattern, sigma, run)
        assert visible_weight(pattern, sigma, run) == pattern.weight(run)

    def test_not_visible_at_early_node(self, figure2b_setup):
        _, run, pattern, _ = figure2b_setup
        early_b = run.timelines["B"][1][1]
        # B's first node has not yet heard from E, so the pattern is invisible there.
        assert not is_visible_zigzag(pattern, early_b, run)
        assert visible_weight(pattern, early_b, run) is None

    def test_not_visible_without_pivot_report(self):
        from repro.scenarios import figure2a_scenario

        scenario = figure2a_scenario()
        run = scenario.run()
        externals = {r.process: r.receiver_node for r in run.external_deliveries}
        fork1 = TwoLeggedFork(general(externals["C"]), ("C", "D"), ("C", "A"))
        fork2 = TwoLeggedFork(general(externals["E"]), ("E", "B"), ("E", "D"))
        pattern = ZigzagPattern((fork1, fork2))
        sigma = run.find_action("B", "b").node
        # Without the D -> B channel, the head of the first fork (at D) is not in
        # B's past, so the zigzag exists but is not sigma-visible.
        assert pattern.is_valid_in(run)
        assert not is_visible_zigzag(pattern, sigma, run)

    def test_invalid_pattern_is_not_visible(self, figure2b_setup):
        _, run, pattern, sigma = figure2b_setup
        fork1, fork2 = pattern.forks
        reversed_pattern = ZigzagPattern(
            (
                TwoLeggedFork(fork2.base, ("E", "D"), ("E", "B")),
                TwoLeggedFork(fork1.base, ("C", "A"), ("C", "D")),
            )
        )
        assert not is_visible_zigzag(reversed_pattern, sigma, run)


class TestSearch:
    def test_search_finds_witness_on_figure2b(self, figure2b_setup):
        scenario, run, pattern, sigma = figure2b_setup
        theta_a = general(
            run.external_deliveries[0].receiver_node
            if run.external_deliveries[0].process == "C"
            else run.external_deliveries[1].receiver_node,
            ("C", "A"),
        )
        found = search_visible_zigzag(
            run,
            sigma,
            theta_a,
            general(sigma),
            min_weight=1,
            max_forks=2,
            max_leg_hops=1,
        )
        assert found is not None
        assert is_visible_zigzag(found, sigma, run)
        assert found.weight(run) >= 1

    def test_search_respects_min_weight(self, figure2b_setup):
        _, run, _, sigma = figure2b_setup
        go_node = next(
            r.receiver_node for r in run.external_deliveries if r.process == "C"
        )
        theta_a = general(go_node, ("C", "A"))
        assert (
            search_visible_zigzag(
                run, sigma, theta_a, general(sigma), min_weight=10_000, max_forks=2, max_leg_hops=1
            )
            is None
        )

    def test_search_handles_unresolvable_targets(self, figure2b_setup):
        _, run, _, sigma = figure2b_setup
        dangling = general(sigma, ("B",))
        # Target equal to sigma itself but tail unresolvable: pick a base that never
        # appears; the search just returns None.
        from repro.core import BasicNode

        ghost = general(BasicNode.initial("A"), ("A",))
        assert (
            search_visible_zigzag(run, sigma, ghost, dangling, min_weight=0, max_forks=1)
            is None
            or True
        )
