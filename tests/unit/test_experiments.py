"""Unit tests for the experiments subsystem: registry, store, runner, CLI."""

import json

import pytest

from repro.experiments import (
    DEFAULT_ANALYSES,
    TELEMETRY_KIND,
    ResultStore,
    SweepError,
    analysis_versions,
    build_cell_scenario,
    cell_key,
    cell_records,
    expand_grid,
    get_analysis,
    group_records,
    list_analyses,
    make_cell,
    make_delivery,
    run_analyses,
    run_cell,
    run_sweep,
    sweep_telemetry_key,
)
from repro.experiments.cli import main as cli_main
from repro.scenarios import (
    ParamSpec,
    RegistryError,
    get_scenario,
    list_scenarios,
    scenario_registry,
)
from repro.simulation import EarliestDelivery, LatestDelivery, SeededRandomDelivery


# ---------------------------------------------------------------------------
# Scenario registry.
# ---------------------------------------------------------------------------


class TestScenarioRegistry:
    def test_all_expected_scenarios_registered(self):
        names = set(list_scenarios())
        expected = {
            "figure1", "figure2a", "figure2b", "figure3", "figure4", "figure5",
            "figure6", "figure8", "zigzag-chain", "flooding", "random-workload",
            "line-flood", "ring-flood", "star-flood", "complete-flood",
            "grid-flood", "torus-flood", "tree-flood",
        }
        assert expected <= names

    def test_unknown_name_raises(self):
        with pytest.raises(RegistryError):
            get_scenario("nope")

    def test_build_applies_defaults_and_overrides(self):
        spec = get_scenario("figure1")
        scenario = spec.build(lower_cb=9)
        assert scenario.timed_network.L("C", "B") == 9
        assert scenario.timed_network.U("C", "A") == 4  # default preserved

    def test_build_rejects_unknown_parameter(self):
        with pytest.raises(RegistryError):
            get_scenario("figure1").build(bogus=1)

    def test_build_rejects_ill_typed_parameter(self):
        with pytest.raises(RegistryError):
            get_scenario("figure1").build(lower_cb="fast")

    def test_decorated_builder_still_callable_directly(self):
        from repro.scenarios import figure1_scenario

        scenario = figure1_scenario(lower_cb=9)
        assert scenario.timed_network.L("C", "B") == 9
        assert figure1_scenario.scenario_spec is get_scenario("figure1")

    def test_tag_filtering(self):
        flooding = list_scenarios(tag="flooding")
        assert "grid-flood" in flooding
        assert "figure1" not in flooding

    def test_registry_snapshot_is_a_copy(self):
        snapshot = scenario_registry()
        snapshot.pop("figure1")
        assert "figure1" in list_scenarios()


class TestParamSpec:
    def test_bool_parsing(self):
        spec = ParamSpec("flag", bool, False)
        assert spec.parse("true") is True
        assert spec.parse("0") is False
        with pytest.raises(RegistryError):
            spec.parse("maybe")

    def test_int_rejects_bool_value(self):
        spec = ParamSpec("n", int, 1)
        with pytest.raises(RegistryError):
            spec.validate(True)

    def test_choices_enforced(self):
        spec = ParamSpec("mode", str, "a", choices=("a", "b"))
        assert spec.validate("b") == "b"
        with pytest.raises(RegistryError):
            spec.validate("c")

    def test_unsupported_type_rejected(self):
        with pytest.raises(RegistryError):
            ParamSpec("x", list, [])

    def test_non_finite_floats_rejected(self):
        """inf/nan cannot feed JSON cache keys, so they are invalid values."""
        spec = ParamSpec("p", float, 0.5)
        for text in ("inf", "-inf", "nan"):
            with pytest.raises(RegistryError):
                spec.parse(text)
        with pytest.raises(RegistryError):
            spec.validate(float("inf"))


# ---------------------------------------------------------------------------
# Analyses.
# ---------------------------------------------------------------------------


class TestAnalyses:
    def test_default_analyses_registered(self):
        assert set(DEFAULT_ANALYSES) <= set(list_analyses())
        assert "knowledge" in list_analyses()

    def test_summary_counts_match_run(self, figure1_run):
        result = get_analysis("summary").run(figure1_run)
        assert result["deliveries"] == len(figure1_run.deliveries)
        assert result["sends"] == len(figure1_run.sends)
        assert result["first_action_times"]["a"] == figure1_run.action_time("A", "a")

    def test_coordination_infers_roles(self, figure1_run):
        result = get_analysis("coordination").run(figure1_run)
        assert result["applicable"] is True
        assert result["go_sender"] == "C"
        assert result["actor_a"] == "A" and result["actor_b"] == "B"
        assert result["achieved_margin"] == result["b_time"] - result["a_time"]

    def test_coordination_inapplicable_without_actions(self, flooding_run):
        result = get_analysis("coordination").run(flooding_run)
        assert result["applicable"] is False

    def test_knowledge_pass_on_figure2b(self):
        from repro.scenarios import figure2b_scenario

        run = figure2b_scenario().run()
        result = get_analysis("knowledge").run(run)
        assert result["applicable"] is True
        # B acted through the optimal protocol, so the precedence is known.
        assert result["known_gap"] is not None and result["known_gap"] >= 0

    def test_results_are_json_serialisable(self, figure1_run):
        results = run_analyses(figure1_run, list_analyses())
        json.dumps(results)  # must not raise

    def test_versions_feed_cache_key(self):
        versions = analysis_versions(DEFAULT_ANALYSES)
        key_a = cell_key("figure1", {}, "earliest", 0, versions)
        bumped = {**versions, "summary": versions["summary"] + 1}
        key_b = cell_key("figure1", {}, "earliest", 0, bumped)
        assert key_a != key_b


# ---------------------------------------------------------------------------
# Store.
# ---------------------------------------------------------------------------


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        record = {"key": "abc", "value": 1}
        store.put(record)
        assert store.get("abc") == record
        assert len(store) == 1

    def test_persists_across_instances(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        ResultStore(path).put({"key": "abc", "value": 1})
        reopened = ResultStore(path)
        assert reopened.get("abc") == {"key": "abc", "value": 1}

    def test_newest_record_wins(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        store = ResultStore(path)
        store.put({"key": "k", "value": 1})
        store.put({"key": "k", "value": 2})
        assert store.get("k")["value"] == 2
        assert len(ResultStore(path)) == 1

    def test_compact_drops_superseded_lines(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        store = ResultStore(path)
        store.put({"key": "k", "value": 1})
        store.put({"key": "k", "value": 2})
        store.put({"key": "j", "value": 3})
        assert store.compact() == 1
        reopened = ResultStore(path)
        assert len(reopened) == 2 and reopened.get("k")["value"] == 2

    def test_torn_trailing_line_ignored(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        ResultStore(path).put({"key": "good", "value": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "torn", "val')  # interrupted append
        store = ResultStore(path)
        assert store.get("good") is not None
        assert store.get("torn") is None

    def test_missing_key_rejected(self, tmp_path):
        from repro.experiments import StoreError

        store = ResultStore(str(tmp_path / "r.jsonl"))
        with pytest.raises(StoreError):
            store.put({"value": 1})

    def test_cell_key_is_stable_and_sensitive(self):
        versions = {"summary": 1}
        base = cell_key("flooding", {"seed": 1}, "random", 1, versions)
        assert base == cell_key("flooding", {"seed": 1}, "random", 1, versions)
        assert base != cell_key("flooding", {"seed": 2}, "random", 1, versions)
        assert base != cell_key("flooding", {"seed": 1}, "latest", 1, versions)


# ---------------------------------------------------------------------------
# Runner.
# ---------------------------------------------------------------------------


class TestRunner:
    def test_make_delivery(self):
        assert isinstance(make_delivery("earliest", 0), EarliestDelivery)
        assert isinstance(make_delivery("latest", 0), LatestDelivery)
        random_delivery = make_delivery("random", 7)
        assert isinstance(random_delivery, SeededRandomDelivery)
        assert random_delivery.seed == 7
        with pytest.raises(SweepError):
            make_delivery("chaotic", 0)

    def test_make_cell_resolves_full_params_and_injects_seed(self):
        cell = make_cell("flooding", seed=3)
        params = cell.params_dict()
        assert params["seed"] == 3  # injected from the seed axis
        assert params["num_processes"] == 4  # default resolved into the cell

    def test_explicit_seed_param_not_overridden(self):
        cell = make_cell("flooding", overrides={"seed": 99}, seed=3)
        assert cell.params_dict()["seed"] == 99

    def test_expand_grid_size_and_dedup(self):
        cells = expand_grid(
            ["flooding", "figure1"],
            adversaries=["earliest", "latest"],
            seeds=[0, 1],
        )
        # figure1 has no seed parameter, so its seed-axis cells collapse? No:
        # seed is part of the cell identity, so 2 scenarios x 2 x 2 = 8 cells.
        assert len(cells) == 8
        assert len({cell.key() for cell in cells}) == 8

    def test_expand_grid_param_values(self):
        cells = expand_grid(
            ["flooding"],
            adversaries=["earliest"],
            seeds=[0],
            param_grid={"num_processes": [3, 4, 5]},
        )
        assert sorted(c.params_dict()["num_processes"] for c in cells) == [3, 4, 5]

    def test_expand_grid_rejects_unknown_param(self):
        with pytest.raises(SweepError):
            expand_grid(["flooding"], seeds=[0], param_grid={"bogus": [1]})

    def test_cell_is_deterministic(self):
        cell = make_cell("flooding", adversary="random", seed=5)
        run_a = build_cell_scenario(cell).run()
        run_b = build_cell_scenario(cell).run()
        assert run_a.to_dict() == run_b.to_dict()

    def test_run_cell_record_shape(self):
        cell = make_cell("figure1", adversary="latest", seed=0)
        record = run_cell(cell)
        assert record["status"] == "ok"
        assert record["key"] == cell.key()
        assert record["adversary"] == "latest"
        assert set(record["analyses"]) == set(DEFAULT_ANALYSES)
        json.dumps(record)

    def test_run_sweep_serial_and_cache(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        cells = expand_grid(["figure1"], adversaries=["earliest", "latest"], seeds=[0])
        first = run_sweep(cells, store=store, workers=1)
        assert (first.executed, first.cached, first.errors) == (2, 0, 0)
        second = run_sweep(cells, store=store, workers=1)
        assert (second.executed, second.cached) == (0, 2)
        assert second.cache_hit_rate == 1.0
        forced = run_sweep(cells, store=store, workers=1, force=True)
        assert forced.executed == 2

    def test_run_sweep_isolates_cell_errors(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        good = make_cell("figure1", seed=0)
        # horizon=0 simulates nothing; validate() passes (empty run is legal),
        # so break it harder: a horizon below the go time means no actions, so
        # instead use an invalid scenario parameter bypassing make_cell checks.
        bad = good.__class__(
            scenario="figure1",
            params=(("go_time", -5),),  # ExternalInput rejects time < 1
            adversary="earliest",
            seed=0,
            analyses=good.analyses,
        )
        outcome = run_sweep([good, bad], store=store, workers=1)
        assert outcome.executed == 1 and outcome.errors == 1
        error_records = [r for r in outcome.records if r["status"] == "error"]
        assert len(error_records) == 1
        # Errors are quarantined: persisted with status "error"...
        assert store.get(bad.key())["status"] == "error"
        # ...a plain re-run retries them (and fails again here)...
        again = run_sweep([good, bad], store=store, workers=1)
        assert (again.executed, again.cached, again.errors) == (0, 1, 1)
        assert [r["status"] for r in again.records if not r.get("cached")] == ["error"]
        # ...a resume skips them without recomputing (still counted as errors)...
        resumed = run_sweep([good, bad], store=store, workers=1, resume=True)
        assert (resumed.executed, resumed.cached, resumed.errors) == (0, 1, 1)
        assert store.get(bad.key())["status"] == "error"
        # ...and --retry-errors recomputes exactly the quarantined cells.
        retried = run_sweep(
            [good, bad], store=store, workers=1, resume=True, retry_errors=True
        )
        assert (retried.executed, retried.cached, retried.errors) == (0, 1, 1)

    def test_retry_errors_requires_resume(self, tmp_path):
        store = ResultStore(str(tmp_path / "r.jsonl"))
        with pytest.raises(SweepError, match="retry_errors requires resume"):
            run_sweep([make_cell("figure1")], store=store, retry_errors=True)

    def test_telemetry_persisted_even_with_errors(self, tmp_path):
        from repro.experiments.runner import sweep_telemetry_key

        store = ResultStore(str(tmp_path / "r.jsonl"))
        good = make_cell("figure1", seed=0)
        bad = good.__class__(
            scenario="figure1",
            params=(("go_time", -5),),
            adversary="earliest",
            seed=0,
            analyses=good.analyses,
        )
        cells = [good, bad]
        outcome = run_sweep(cells, store=store, workers=1)
        assert outcome.errors == 1
        telemetry = store.get(sweep_telemetry_key(cells))
        assert telemetry is not None
        assert telemetry["cells"]["errors"] == 1


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "adversaries: earliest, latest, random" in out

    def test_run_json(self, capsys):
        assert cli_main(["run", "figure1", "--adversary", "latest", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["status"] == "ok" and record["scenario"] == "figure1"

    def test_run_viz(self, capsys):
        assert cli_main(["run", "figure1", "--viz"]) == 0
        out = capsys.readouterr().out
        assert "send_go" in out  # the space-time diagram marks C's action

    def test_run_rejects_unknown_scenario(self, capsys):
        assert cli_main(["run", "not-a-scenario"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_rejects_bad_set(self, capsys):
        assert cli_main(["run", "figure1", "--set", "bogus=1"]) == 2

    def test_sweep_dry_run(self, capsys):
        code = cli_main(
            ["sweep", "--scenario", "figure1,flooding", "--seeds", "2", "--dry-run"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "-> 12 cells" in out and "dry run: nothing executed" in out

    def test_sweep_and_report(self, tmp_path, capsys):
        store_path = str(tmp_path / "results.jsonl")
        code = cli_main(
            [
                "sweep", "--scenario", "figure1", "--adversary", "earliest,latest",
                "--seeds", "1", "--workers", "1", "--store", store_path,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 executed, 0 cached" in out
        code = cli_main(["report", "--store", store_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "earliest" in out

    def test_report_json(self, tmp_path, capsys):
        store_path = str(tmp_path / "results.jsonl")
        cli_main(
            ["sweep", "--scenario", "figure1", "--adversary", "earliest",
             "--seeds", "1", "--workers", "1", "--store", store_path]
        )
        capsys.readouterr()
        assert cli_main(["report", "--store", store_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["scenario"] == "figure1" and payload[0]["cells"] == 1

    def test_sweep_rejects_zero_workers(self, capsys):
        assert cli_main(["sweep", "--workers", "0"]) == 2
        err = capsys.readouterr().err
        assert "--workers must be >= 1" in err

    def test_sweep_rejects_negative_workers(self, capsys):
        assert cli_main(["sweep", "--workers", "-3"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_sweep_rejects_force_plus_resume(self, capsys):
        assert cli_main(["sweep", "--force", "--resume"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_sweep_rejects_bad_shard_size(self, capsys):
        assert cli_main(["sweep", "--backend", "sharded", "--shard-size", "0"]) == 2
        assert "--shard-size must be >= 1" in capsys.readouterr().err

    def test_sweep_rejects_shard_size_without_sharded_backend(self, capsys):
        assert cli_main(["sweep", "--shard-size", "4"]) == 2
        assert "--shard-size requires --backend sharded" in capsys.readouterr().err

    def test_sweep_single_worker_takes_serial_path(self, tmp_path, capsys):
        store_path = str(tmp_path / "results.jsonl")
        code = cli_main(
            ["sweep", "--scenario", "figure1", "--adversary", "earliest",
             "--seeds", "1", "--workers", "1", "--store", store_path]
        )
        assert code == 0
        assert "[backend=serial]" in capsys.readouterr().out

    def test_sweep_backend_sharded_and_resume(self, tmp_path, capsys):
        store_path = str(tmp_path / "results.jsonl")
        args = ["sweep", "--scenario", "figure1", "--adversary", "earliest,latest",
                "--seeds", "2", "--workers", "2", "--backend", "sharded",
                "--store", store_path]
        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "4 executed, 0 cached" in out and "[backend=sharded]" in out
        assert cli_main([*args, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 executed, 4 cached" in out

    def test_report_viz_by_prefix(self, tmp_path, capsys):
        store_path = str(tmp_path / "results.jsonl")
        cli_main(
            ["sweep", "--scenario", "figure1", "--adversary", "latest",
             "--seeds", "1", "--workers", "1", "--store", store_path]
        )
        capsys.readouterr()
        key = ResultStore(store_path).keys()[0]
        assert cli_main(["report", "--store", store_path, "--viz", key[:10]]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "send_go" in out


# ---------------------------------------------------------------------------
# Hot-path bugfix sweep: seed-list validation, non-finite sanitization, and
# the telemetry-never-masquerades-as-cells invariant.
# ---------------------------------------------------------------------------


class TestSeedListValidation:
    def test_empty_seed_list_rejected(self, capsys):
        assert cli_main(["sweep", "--seed-list", "", "--dry-run"]) == 2
        assert "--seed-list needs at least one seed" in capsys.readouterr().err

    def test_all_commas_seed_list_rejected(self, capsys):
        assert cli_main(["sweep", "--seed-list", ",,", "--dry-run"]) == 2
        assert "--seed-list needs at least one seed" in capsys.readouterr().err

    def test_non_integer_seed_list_rejected(self, capsys):
        assert cli_main(["sweep", "--seed-list", "1,x", "--dry-run"]) == 2
        assert "--seed-list expects integers" in capsys.readouterr().err

    def test_trailing_comma_tolerated(self, capsys):
        code = cli_main(
            ["sweep", "--scenario", "figure1", "--adversary", "earliest",
             "--seed-list", "3,7,", "--dry-run"]
        )
        assert code == 0
        assert "-> 2 cells" in capsys.readouterr().out


class TestNonFiniteSanitization:
    def test_sanitize_walks_containers(self):
        from repro.experiments.runner import sanitize_non_finite

        value = {
            "nan": float("nan"),
            "inf": float("inf"),
            "nested": {"ninf": float("-inf"), "ok": 1.5},
            "list": [float("nan"), 2.0, (float("inf"),)],
            "label": "x",
            "flag": True,
        }
        out = sanitize_non_finite(value)
        assert out["nan"] is None and out["inf"] is None
        assert out["nested"] == {"ninf": None, "ok": 1.5}
        assert out["list"] == [None, 2.0, [None]]
        assert out["label"] == "x" and out["flag"] is True

    def test_nan_producing_analysis_cannot_abort_sweep(self, tmp_path):
        # Regression: an analysis emitting NaN/inf used to blow up in
        # canonical_json(allow_nan=False) inside store.put, aborting the
        # whole sweep mid-flight instead of recording the cell.
        from repro.experiments.analyses import _ANALYSIS_REGISTRY, register_analysis

        name = "test-nan-prone"

        @register_analysis(name, version=1)
        def nan_pass(run):
            return {"ratio": float("nan"), "bound": float("inf"), "n": 3}

        try:
            store = ResultStore(str(tmp_path / "r.jsonl"))
            cell = make_cell("figure1", seed=0, analyses=("summary", name))
            outcome = run_sweep([cell], store=store, workers=1)
            assert (outcome.executed, outcome.errors) == (1, 0)
            record = store.get(cell.key())
            assert record is not None
            assert record["analyses"][name] == {"ratio": None, "bound": None, "n": 3}
        finally:
            _ANALYSIS_REGISTRY.pop(name, None)


class TestTelemetryInvariant:
    """Telemetry records share the store with cells but never count as cells."""

    @staticmethod
    def _sweep_store(tmp_path):
        store_path = str(tmp_path / "results.jsonl")
        store = ResultStore(store_path)
        cells = expand_grid(["figure1"], adversaries=["earliest"], seeds=[0])
        outcome = run_sweep(cells, store=store, workers=1)
        assert outcome.telemetry is not None
        return store_path, store, cells

    def test_sweep_persists_telemetry_alongside_cells(self, tmp_path):
        _, store, cells = self._sweep_store(tmp_path)
        telemetry = store.get(sweep_telemetry_key(cells))
        assert telemetry is not None and telemetry["kind"] == TELEMETRY_KIND
        assert len(store.records()) == 2  # one cell + one telemetry record

    def test_cell_records_filters_telemetry(self, tmp_path):
        _, store, _ = self._sweep_store(tmp_path)
        records = cell_records(store.records())
        assert len(records) == 1 and records[0]["status"] == "ok"
        # Even when error cells are kept, telemetry must not pass.
        lenient = cell_records(store.records(), require_ok=False)
        assert all(r.get("kind") != TELEMETRY_KIND for r in lenient)
        assert len(lenient) == 1

    def test_group_records_drops_telemetry_without_prefilter(self, tmp_path):
        _, store, _ = self._sweep_store(tmp_path)
        groups = group_records(store.records(), ["scenario"])
        assert set(groups) == {("figure1",)}
        assert len(groups[("figure1",)]) == 1

    def test_report_cell_counts_exclude_telemetry(self, tmp_path, capsys):
        store_path, _, _ = self._sweep_store(tmp_path)
        assert cli_main(["report", "--store", store_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1 and payload[0]["cells"] == 1

    def test_html_report_counts_only_cells(self, tmp_path, capsys):
        store_path, _, _ = self._sweep_store(tmp_path)
        html_path = str(tmp_path / "report.html")
        code = cli_main(["report", "--store", store_path, "--html", html_path])
        assert code == 0
        assert "(1 records)" in capsys.readouterr().out
        with open(html_path, encoding="utf-8") as handle:
            html = handle.read()
        # The telemetry surfaces in its own section, not as a cell row.
        assert "Sweep telemetry" in html

    def test_viz_rejects_exact_telemetry_key(self, tmp_path, capsys):
        store_path, _, cells = self._sweep_store(tmp_path)
        key = sweep_telemetry_key(cells)
        assert cli_main(["report", "--store", store_path, "--viz", key]) == 2
        assert "sweep-telemetry record, not a cell" in capsys.readouterr().err

    def test_viz_prefix_never_matches_telemetry(self, tmp_path, capsys):
        store_path, _, _ = self._sweep_store(tmp_path)
        assert cli_main(["report", "--store", store_path, "--viz", "telemetry"]) == 2
        assert "matches 0 records" in capsys.readouterr().err

    def test_cache_scan_never_reuses_telemetry_under_cell_key(self, tmp_path):
        _, store, cells = self._sweep_store(tmp_path)
        cell = cells[0]
        telemetry = store.get(sweep_telemetry_key(cells))
        # Adversarial store state: a telemetry record squatting on the cell's
        # key must not be served as a cache hit.
        store.put({**telemetry, "key": cell.key()})
        outcome = run_sweep(cells, store=store, workers=1)
        assert (outcome.executed, outcome.cached) == (1, 0)
        assert store.get(cell.key())["status"] == "ok"

    def test_compact_preserves_telemetry(self, tmp_path):
        _, store, cells = self._sweep_store(tmp_path)
        # Superseded duplicate lines to give compact something to drop.
        run_sweep(cells, store=store, workers=1, force=True)
        dropped = store.compact()
        assert dropped >= 1
        reloaded = ResultStore(store.path)
        telemetry = reloaded.get(sweep_telemetry_key(cells))
        assert telemetry is not None and telemetry["kind"] == TELEMETRY_KIND
        assert len(cell_records(reloaded.records())) == 1
