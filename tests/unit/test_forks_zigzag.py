"""Unit tests for two-legged forks and zigzag patterns."""

import pytest

from repro.core import (
    TwoLeggedFork,
    ZigzagError,
    ZigzagPattern,
    general,
    simple_fork,
    single_fork_pattern,
    trivial_fork,
)
from repro.core.nodes import NodeError
from repro.scenarios import figure1_scenario, figure2a_scenario, zigzag_chain_equation_weight


class TestTwoLeggedFork:
    def _figure1(self):
        scenario = figure1_scenario()
        run = scenario.run()
        go_node = run.external_deliveries[0].receiver_node
        fork = simple_fork(go_node, head_recipient="B", tail_recipient="A")
        return scenario, run, fork

    def test_endpoints(self):
        _, run, fork = self._figure1()
        assert fork.head.process == "B"
        assert fork.tail.process == "A"
        assert fork.base.process == "C"
        assert not fork.is_trivial

    def test_weight_matches_figure1(self):
        scenario, _, fork = self._figure1()
        net = scenario.timed_network
        assert fork.weight(net) == net.L("C", "B") - net.U("C", "A")

    def test_appears_and_observed_gap(self):
        _, run, fork = self._figure1()
        assert fork.appears_in(run)
        gap = fork.observed_gap(run)
        assert gap is not None
        assert gap >= fork.weight(run.timed_network)
        assert fork.satisfies_theorem1_in(run)

    def test_trivial_fork(self):
        _, run, _ = self._figure1()
        node = run.final_node("B")
        fork = trivial_fork(node)
        assert fork.is_trivial
        assert fork.weight(run.timed_network) == 0
        assert fork.observed_gap(run) == 0

    def test_legs_must_start_at_base(self):
        _, run, _ = self._figure1()
        go_node = run.external_deliveries[0].receiver_node
        with pytest.raises(NodeError):
            TwoLeggedFork(go_node, ("A", "B"), ("C",))

    def test_unresolved_fork_reports_none(self):
        _, run, _ = self._figure1()
        final_b = run.final_node("B")
        # B has no outgoing channels in Figure 1, so this chain never exists.
        fork = TwoLeggedFork(general(final_b), ("B",), ("B",))
        assert fork.observed_gap(run) == 0
        dangling = TwoLeggedFork(general(run.final_node("C")), ("C", "A"), ("C", "B"))
        # C's final node sent messages whose deliveries may be pending at the horizon.
        assert dangling.observed_gap(run) is None or isinstance(dangling.observed_gap(run), int)


class TestZigzagPattern:
    def _figure2a(self):
        scenario = figure2a_scenario()
        run = scenario.run()
        externals = {r.process: r.receiver_node for r in run.external_deliveries}
        fork1 = TwoLeggedFork(general(externals["C"]), ("C", "D"), ("C", "A"))
        fork2 = TwoLeggedFork(general(externals["E"]), ("E", "B"), ("E", "D"))
        pattern = ZigzagPattern((fork1, fork2))
        return scenario, run, pattern

    def test_empty_pattern_rejected(self):
        with pytest.raises(ZigzagError):
            ZigzagPattern(())

    def test_mismatched_fork_processes_rejected(self):
        scenario, run, pattern = self._figure2a()
        fork1, fork2 = pattern.forks
        bad_second = TwoLeggedFork(fork2.base, ("E", "B"), ("E", "B"))
        with pytest.raises(ZigzagError):
            ZigzagPattern((fork1, bad_second))

    def test_endpoints(self):
        _, run, pattern = self._figure2a()
        assert pattern.tail.process == "A"
        assert pattern.head.process == "B"
        assert len(pattern) == 2

    def test_validity_in_run(self):
        _, run, pattern = self._figure2a()
        assert pattern.appears_in(run)
        assert pattern.is_valid_in(run)

    def test_weight_matches_equation1_plus_separation(self):
        scenario, run, pattern = self._figure2a()
        equation = zigzag_chain_equation_weight(scenario, 2)
        # The two forks meet at distinct D-nodes, so S(Z) = 1.
        assert pattern.separations(run) == 1
        assert pattern.joined_flags(run) == (False,)
        assert pattern.weight(run) == equation + 1
        assert pattern.weight_lower_bound(run.timed_network) == equation

    def test_theorem1_gap(self):
        _, run, pattern = self._figure2a()
        assert pattern.observed_gap(run) >= pattern.weight(run)

    def test_single_fork_pattern(self):
        _, run, pattern = self._figure2a()
        single = single_fork_pattern(pattern.forks[0])
        assert len(single) == 1
        assert single.is_valid_in(run)

    def test_extend_and_concatenate(self):
        _, run, pattern = self._figure2a()
        first = single_fork_pattern(pattern.forks[0])
        extended = first.extend(pattern.forks[1])
        assert extended.forks == pattern.forks
        concatenated = first.concatenate(single_fork_pattern(pattern.forks[1]))
        assert concatenated.forks == pattern.forks

    def test_invalid_when_order_reversed(self):
        scenario, run, pattern = self._figure2a()
        fork1, fork2 = pattern.forks
        # Swapping the forks breaks the head-before-tail requirement at D.
        reversed_pattern = ZigzagPattern(
            (
                TwoLeggedFork(fork2.base, ("E", "D"), ("E", "B")),
                TwoLeggedFork(fork1.base, ("C", "A"), ("C", "D")),
            )
        )
        assert not reversed_pattern.is_valid_in(run)
