"""Unit tests for happens-before, pasts, boundary nodes, and recognition."""

import pytest

from repro.core import (
    boundary_nodes,
    common_past,
    general,
    happens_before,
    is_recognized,
    local_delivery_map,
    past_nodes,
    resolve_within_past,
)
from repro.core.causality import causal_frontier


class TestPastNodes:
    def test_past_includes_self_and_initial(self, triangle_run):
        node = triangle_run.final_node("B")
        past = past_nodes(node)
        assert node in past
        assert node.timeline_prefix()[0] in past  # B's initial node

    def test_past_is_closed_under_predecessors(self, triangle_run):
        node = triangle_run.final_node("B")
        past = past_nodes(node)
        for member in past:
            predecessor = member.predecessor()
            if predecessor is not None:
                assert predecessor in past

    def test_past_includes_message_senders(self, triangle_run):
        go_node = triangle_run.external_deliveries[0].receiver_node
        b_late = triangle_run.final_node("B")
        assert go_node in past_nodes(b_late)

    def test_initial_node_past_is_singleton(self):
        from repro.core import BasicNode

        node = BasicNode.initial("X")
        assert past_nodes(node) == frozenset({node})

    def test_past_agrees_with_run_past(self, triangle_run):
        node = triangle_run.final_node("A")
        assert past_nodes(node) == triangle_run.past(node)


class TestHappensBefore:
    def test_local_order(self, triangle_run):
        initial = triangle_run.initial_node("C")
        later = triangle_run.final_node("C")
        assert happens_before(initial, later)
        assert not happens_before(later, initial)

    def test_strict_excludes_equality(self, triangle_run):
        node = triangle_run.final_node("C")
        assert happens_before(node, node)
        assert not happens_before(node, node, strict=True)

    def test_cross_process_via_message(self, triangle_run):
        go_node = triangle_run.external_deliveries[0].receiver_node
        a_node = triangle_run.resolve(general(go_node, ("C", "A")))
        assert happens_before(go_node, a_node)
        assert not happens_before(a_node, go_node)

    def test_concurrent_nodes_unrelated(self, figure2a_run):
        # C's go node and E's spontaneous node are causally independent.
        externals = {r.process: r.receiver_node for r in figure2a_run.external_deliveries}
        assert not happens_before(externals["C"], externals["E"])
        assert not happens_before(externals["E"], externals["C"])

    def test_run_happens_before_wrapper(self, triangle_run):
        go_node = triangle_run.external_deliveries[0].receiver_node
        assert triangle_run.happens_before(go_node, triangle_run.final_node("B"))


class TestBoundaryAndDeliveryMaps:
    def test_boundary_nodes_are_latest(self, triangle_run):
        sigma = triangle_run.final_node("B")
        boundary = boundary_nodes(sigma)
        assert boundary["B"] == sigma
        for process, node in boundary.items():
            assert node.process == process
            # No later node of that process is in the past.
            for other in past_nodes(sigma):
                if other.process == process:
                    assert other.precedes_locally(node)

    def test_local_delivery_map_matches_run(self, triangle_run):
        sigma = triangle_run.final_node("B")
        delivered = local_delivery_map(sigma)
        for (sender_node, destination), receiver in delivered.items():
            record = triangle_run.delivery_of(sender_node, destination)
            assert record is not None
            assert record.receiver_node == receiver

    def test_causal_frontier_lists_boundary(self, triangle_run):
        sigma = triangle_run.final_node("B")
        frontier = causal_frontier(sigma)
        assert frontier["B"] == sigma


class TestRecognitionAndResolution:
    def test_recognized_iff_base_in_past(self, triangle_run):
        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        assert is_recognized(general(go_node, ("C", "A")), sigma)
        # A node from B's own future is not recognized at an earlier B node.
        early_b = triangle_run.timelines["B"][1][1]
        assert not is_recognized(general(sigma), early_b)

    def test_resolve_within_past_full_chain(self, triangle_run):
        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        theta = general(go_node, ("C", "A"))
        resolved, hops = resolve_within_past(theta, sigma)
        assert hops == 1
        assert resolved == triangle_run.resolve(theta)

    def test_resolve_within_past_partial_chain(self, triangle_run):
        sigma = triangle_run.timelines["B"][1][1]  # B's first non-initial node
        go_node = triangle_run.external_deliveries[0].receiver_node
        # The chain C -> A -> B -> A goes beyond what sigma has seen.
        theta = general(go_node, ("C", "A", "B", "A"))
        if is_recognized(theta, sigma):
            resolved, hops = resolve_within_past(theta, sigma)
            assert hops <= 2

    def test_resolve_unrecognized_raises(self, triangle_run):
        sigma = triangle_run.timelines["B"][1][1]
        future_b = triangle_run.final_node("B")
        if not is_recognized(general(future_b), sigma):
            with pytest.raises(ValueError):
                resolve_within_past(general(future_b), sigma)

    def test_common_past(self, triangle_run):
        a_final = triangle_run.final_node("A")
        b_final = triangle_run.final_node("B")
        shared = common_past([a_final, b_final])
        go_node = triangle_run.external_deliveries[0].receiver_node
        assert go_node in shared
        assert common_past([]) == frozenset()
