"""The public package surface: everything advertised in __all__ is importable."""

import pytest

import repro
import repro.coordination
import repro.core
import repro.scenarios
import repro.simulation
import repro.viz

@pytest.mark.parametrize(
    "module",
    [repro, repro.core, repro.simulation, repro.coordination, repro.scenarios, repro.viz],
    ids=lambda m: m.__name__,
)
def test_all_exports_resolve(module):
    assert module.__doc__, "every public module needs a docstring"
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module.__name__}.__all__ lists missing name {name}"


def test_version_is_exposed():
    assert repro.__version__ == "1.0.0"


def test_readme_quickstart_snippet_works():
    """The README's quickstart snippet must keep working verbatim."""
    from repro.coordination import evaluate, late_task
    from repro.scenarios import figure2b_scenario

    task = late_task(5)
    scenario = figure2b_scenario(margin=5)
    run = scenario.run()
    outcome = evaluate(run, task)
    assert outcome.satisfied and outcome.b_performed

    from repro.core import KnowledgeChecker, general

    sigma = run.find_action("B", "b").node
    go = next(r.receiver_node for r in run.external_deliveries if r.process == "C")
    theta_a = general(go, ("C", "A"))
    gap = KnowledgeChecker(sigma, run.timed_network).max_known_gap(theta_a, sigma)
    assert gap is not None and gap >= 5
