"""Unit tests for the ``repro.obs`` instrumentation layer."""

import time

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.collect import Collector, registry_baseline, registry_delta
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
    snapshot_diff,
)
from repro.obs.trace import drain_trace_events, set_tracing, span


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestMetricsPrimitives:
    def test_counter_inc_and_bare_value(self, registry):
        counter = registry.counter("x")
        counter.inc()
        counter.inc(4)
        counter.value += 1  # the hot-path idiom
        assert registry.counter("x").value == 6
        assert registry.counter("x") is counter

    def test_gauge_set_and_inc(self, registry):
        gauge = registry.gauge("g")
        gauge.set(2.5)
        gauge.inc(0.5)
        assert registry.gauge("g").value == 3.0

    def test_histogram_buckets_and_stats(self, registry):
        hist = registry.histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 55.5
        assert hist.vmin == 0.5 and hist.vmax == 50.0
        assert hist.counts == [1, 1, 1]  # <=1, <=10, overflow

    def test_snapshot_shape(self, registry):
        registry.counter("c").inc(2)
        registry.histogram("h", bounds=(1.0,)).observe(0.3)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["bounds"] == [1.0]

    def test_reset_zeroes_in_place(self, registry):
        counter = registry.counter("c")
        counter.inc(7)
        registry.reset()
        assert counter.value == 0  # same object, zeroed
        assert registry.counter("c") is counter


class TestSnapshotAlgebra:
    def test_diff_then_merge_roundtrip(self, registry):
        registry.counter("c").inc(3)
        before = registry.snapshot()
        registry.counter("c").inc(4)
        registry.histogram("h").observe(0.01)
        delta = snapshot_diff(before, registry.snapshot())
        assert delta["counters"]["c"] == 4
        assert delta["histograms"]["h"]["count"] == 1

        acc = empty_snapshot()
        merge_snapshots(acc, delta)
        merge_snapshots(acc, delta)
        assert acc["counters"]["c"] == 8
        assert acc["histograms"]["h"]["count"] == 2

    def test_merge_combines_min_max(self):
        a = empty_snapshot()
        merge_snapshots(
            a,
            {
                "counters": {},
                "gauges": {},
                "histograms": {
                    "h": {"bounds": [1.0], "counts": [1, 0], "count": 1,
                          "sum": 0.5, "min": 0.5, "max": 0.5}
                },
            },
        )
        merge_snapshots(
            a,
            {
                "counters": {},
                "gauges": {},
                "histograms": {
                    "h": {"bounds": [1.0], "counts": [0, 1], "count": 1,
                          "sum": 3.0, "min": 3.0, "max": 3.0}
                },
            },
        )
        hist = a["histograms"]["h"]
        assert hist["count"] == 2 and hist["min"] == 0.5 and hist["max"] == 3.0

    def test_module_registry_delta_helpers(self):
        baseline = registry_baseline()
        obs_metrics.counter("test.delta.helper").inc(5)
        delta = registry_delta(baseline)
        assert delta["counters"]["test.delta.helper"] == 5


class TestSpans:
    def test_span_records_histogram_always(self):
        baseline = registry_baseline()
        with span("unit.test.phase"):
            time.sleep(0.001)
        delta = registry_delta(baseline)
        hist = delta["histograms"]["span.unit.test.phase.s"]
        assert hist["count"] == 1

    def test_span_exposes_duration(self):
        with span("unit.test.duration") as s:
            time.sleep(0.001)
        assert s.duration_s > 0

    def test_trace_events_only_when_enabled(self):
        drain_trace_events()
        previous = set_tracing(False)
        try:
            with span("unit.test.quiet"):
                pass
            assert all(
                e["name"] != "unit.test.quiet" for e in obs_trace.trace_events()
            )
            set_tracing(True)
            with span("unit.test.loud", scenario="s1"):
                pass
            events = [
                e for e in drain_trace_events() if e["name"] == "unit.test.loud"
            ]
            assert len(events) == 1
            assert events[0]["attrs"] == {"scenario": "s1"}
            assert events[0]["duration_s"] >= 0
        finally:
            set_tracing(previous)
            drain_trace_events()

    def test_span_records_error_type(self):
        previous = set_tracing(True)
        try:
            drain_trace_events()
            with pytest.raises(ValueError):
                with span("unit.test.boom"):
                    raise ValueError("x")
            events = drain_trace_events()
            assert events[-1]["error"] == "ValueError"
        finally:
            set_tracing(previous)
            drain_trace_events()

    def test_event_buffer_is_bounded(self, monkeypatch):
        previous = set_tracing(True)
        monkeypatch.setattr(obs_trace, "TRACE_EVENT_LIMIT", 5)
        try:
            drain_trace_events()
            for _ in range(8):
                with span("unit.test.flood"):
                    pass
            assert len(obs_trace.trace_events()) == 5
            assert obs_trace.dropped_trace_events() == 3
        finally:
            set_tracing(previous)
            drain_trace_events()


class TestCollector:
    def test_collector_merges_and_counts_payloads(self):
        collector = Collector()
        snap = empty_snapshot()
        snap["counters"]["c"] = 2
        collector.add_metrics(snap)
        collector.add_metrics(snap)
        collector.add_metrics(None)  # ignored
        assert collector.merged["counters"]["c"] == 4
        assert collector.worker_payloads == 2

    def test_collector_shard_meta(self):
        collector = Collector()
        collector.add_shard(10, 2.0)
        collector.add_shard(4, 0.0, in_process=True)
        assert collector.shards[0]["cells_per_s"] == 5.0
        assert collector.shards[1]["cells_per_s"] is None
        assert collector.shards[1]["in_process"] is True
        assert collector.worker_wall_s() == 2.0
