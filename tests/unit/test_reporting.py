"""Unit tests for report aggregation: non-numeric fields must survive."""

import json

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.reporting import (
    aggregate_metric,
    discover_metrics,
    flatten_scalars,
    format_aggregate,
    group_records,
)


class TestFlattenScalars:
    def test_numbers_become_floats(self):
        flat = flatten_scalars({"a": 1, "b": {"c": 2.5}})
        assert flat == {"a": 1.0, "b.c": 2.5}

    def test_booleans_survive_as_booleans(self):
        flat = flatten_scalars({"applicable": True, "nested": {"ok": False}})
        assert flat["applicable"] is True
        assert flat["nested.ok"] is False

    def test_strings_and_none_survive(self):
        flat = flatten_scalars({"go_sender": "C", "actor_b": None})
        assert flat["go_sender"] == "C"
        assert flat["actor_b"] is None

    def test_lists_flatten_by_index(self):
        flat = flatten_scalars({"path": ["A", "B"], "weights": [1, 2]})
        assert flat == {"path.0": "A", "path.1": "B",
                        "weights.0": 1.0, "weights.1": 2.0}

    def test_unknown_leaves_degrade_to_repr(self):
        flat = flatten_scalars({"odd": {1, 2} and frozenset([3])})
        assert "frozenset" in flat["odd"]


class TestAggregateMetric:
    def test_numeric_column(self):
        rows = [{"m": 1.0}, {"m": 3.0}, {}]
        summary = aggregate_metric(rows, "m")
        assert summary == {"mean": 2.0, "min": 1.0, "max": 3.0, "n": 2}
        assert format_aggregate(summary) == "2.00/1/3"

    def test_boolean_column_counts(self):
        rows = [{"ok": True}, {"ok": True}, {"ok": False}]
        summary = aggregate_metric(rows, "ok")
        assert summary == {"counts": {"False": 1, "True": 2}, "n": 3}
        assert format_aggregate(summary) == "False:1 True:2"

    def test_label_column_counts(self):
        rows = [{"who": "C"}, {"who": "A"}, {"who": "C"}]
        assert aggregate_metric(rows, "who") == {
            "counts": {"A": 1, "C": 2}, "n": 3,
        }

    def test_mixed_column_is_categorical(self):
        rows = [{"m": 1.0}, {"m": "n/a"}]
        assert "counts" in aggregate_metric(rows, "m")

    def test_absent_metric(self):
        assert aggregate_metric([{"x": 1.0}], "y") is None
        assert format_aggregate(None) == "-"


class TestGrouping:
    RECORDS = [
        {"scenario": "s1", "adversary": "earliest",
         "analyses": {"coordination": {"satisfied": True, "margin": 2}}},
        {"scenario": "s1", "adversary": "latest",
         "analyses": {"coordination": {"satisfied": False, "margin": 0}}},
    ]

    def test_group_records(self):
        groups = group_records(self.RECORDS, ["scenario", "adversary"])
        assert set(groups) == {("s1", "earliest"), ("s1", "latest")}
        rows = groups[("s1", "earliest")]
        assert rows[0]["coordination.satisfied"] is True

    def test_discover_metrics(self):
        groups = group_records(self.RECORDS, ["scenario"])
        assert discover_metrics(groups) == [
            "coordination.margin", "coordination.satisfied",
        ]


class TestReportCliSurfacesNonNumeric:
    """End-to-end: booleans and labels appear in `repro report` output."""

    @pytest.fixture()
    def store_path(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        assert cli_main(
            ["sweep", "--scenario", "figure1", "--adversary", "earliest",
             "--seeds", "1", "--workers", "1", "--store", path]
        ) == 0
        return path

    def test_text_report_shows_booleans_and_labels(self, store_path, capsys):
        capsys.readouterr()
        assert cli_main(["report", "--store", store_path]) == 0
        out = capsys.readouterr().out
        # coordination.applicable is a boolean, go_sender a process label;
        # both were dropped by the old numeric-only flattening.
        assert "True:1" in out
        assert "C:1" in out

    def test_json_report_contains_categorical_summaries(self, store_path, capsys):
        capsys.readouterr()
        assert cli_main(
            ["report", "--store", store_path, "--json",
             "--metric", "coordination.applicable",
             "--metric", "coordination.go_sender",
             "--metric", "summary.sends"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        entry = payload[0]
        assert entry["coordination.applicable"] == {"counts": {"True": 1}, "n": 1}
        assert entry["coordination.go_sender"] == {"counts": {"C": 1}, "n": 1}
        assert entry["summary.sends"]["n"] == 1  # numeric path unchanged
