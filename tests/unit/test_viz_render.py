"""Structural tests for the viz renderers: deterministic, parseable output."""

import pytest

from repro.core.bounds_graph import basic_bounds_graph
from repro.core.extended_graph import ExtendedBoundsGraph
from repro.experiments.runner import build_cell_scenario, make_cell
from repro.viz.graphs import extended_graph_listing, graph_listing, path_listing
from repro.viz.html_report import render_html_report
from repro.viz.spacetime import action_table, message_table, spacetime_diagram


@pytest.fixture(scope="module")
def run():
    return build_cell_scenario(make_cell("figure1")).run()


class TestGraphListing:
    def test_deterministic(self, run):
        graph = basic_bounds_graph(run)
        assert graph_listing(graph, run) == graph_listing(graph, run)

    def test_header_counts_match_graph(self, run):
        graph = basic_bounds_graph(run)
        listing = graph_listing(graph, run)
        header = listing.splitlines()[0]
        assert header == f"nodes: {len(graph)}, edges: {graph.edge_count()}"
        # one line per edge after the header
        assert len(listing.splitlines()) == 1 + graph.edge_count()

    def test_edges_sorted_by_label_then_endpoints(self, run):
        graph = basic_bounds_graph(run)
        lines = graph_listing(graph, run).splitlines()[1:]
        labels = [line.split("]")[0].strip(" [") for line in lines]
        assert labels == sorted(labels)

    def test_label_filter(self, run):
        graph = basic_bounds_graph(run)
        listing = graph_listing(graph, run, labels=["succ"])
        body = listing.splitlines()[1:]
        assert body and all("succ" in line for line in body)

    def test_every_edge_line_carries_weight_arrow(self, run):
        graph = basic_bounds_graph(run)
        for line in graph_listing(graph, run).splitlines()[1:]:
            assert "--(" in line and ")-->" in line

    def test_extended_listing_reports_edge_sets(self, run):
        sigma = run.final_node(run.processes[0])
        extended = ExtendedBoundsGraph(sigma, run.timed_network)
        listing = extended_graph_listing(extended, run)
        assert "edge sets:" in listing
        assert "psi(" in listing

    def test_path_listing(self, run):
        graph = basic_bounds_graph(run)
        edges = list(graph.edges)[:2]
        listing = path_listing(edges, run)
        total = sum(edge.weight for edge in edges)
        assert listing.splitlines()[0] == f"path weight {total:+d}:"
        assert len(listing.splitlines()) == 1 + len(edges)
        assert path_listing([], run) == "(empty path, weight 0)"


class TestSpacetime:
    def test_deterministic(self, run):
        assert spacetime_diagram(run) == spacetime_diagram(run)

    def test_row_and_column_structure(self, run):
        lines = spacetime_diagram(run).splitlines()
        # Header row "t" plus one row per process, in network order.
        assert lines[0].split()[0] == "t"
        assert [line.split()[0] for line in lines[1:]] == list(run.processes)
        # The header enumerates every instant of the horizon.
        assert lines[0].split()[1:] == [str(t) for t in range(run.horizon + 1)]

    def test_window_bounds_columns(self, run):
        lines = spacetime_diagram(run, start=2, end=4).splitlines()
        assert lines[0].split()[1:] == ["2", "3", "4"]

    def test_message_table_rows_match_deliveries(self, run):
        lines = message_table(run).splitlines()
        assert len(lines) == 2 + len(run.deliveries)
        assert lines[0].split() == ["from", "to", "sent", "recv", "delay", "window"]
        assert message_table(run, limit=1).splitlines()[2:] == lines[2:3]

    def test_action_table_sorted_by_time(self, run):
        lines = action_table(run).splitlines()[2:]
        times = [int(line.split()[-1]) for line in lines]
        assert times == sorted(times)
        assert len(lines) == len(run.actions())


class TestHtmlReport:
    def test_deterministic_without_timestamp(self):
        args = (["scenario", "cells"], [["figure1", "2"]], 2, "store.jsonl")
        assert render_html_report(*args) == render_html_report(*args)

    def test_escapes_content(self):
        html = render_html_report(
            ["<th>"], [["<script>alert(1)</script>"]], 1, "a&b.jsonl"
        )
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html

    def test_sections_render(self):
        telemetry = {
            "backend": "sharded",
            "workers": 2,
            "cells": {"total": 4, "executed": 4, "cached": 0, "errors": 0},
            "timings": {"scan_s": 0.001, "execute_s": 0.5, "total_s": 0.51},
            "worker_wall_s": 0.9,
            "worker_utilization": 0.9,
            "worker_payloads": 2,
            "derived": {"engine_row_hit_rate": 0.25},
            "metrics": {"counters": {"engine.queries": 12}},
            "shards": [{"cells": 2, "wall_s": 0.4, "cells_per_s": 5.0}],
        }
        html = render_html_report(
            ["scenario"], [["figure1"]], 4, "s.jsonl",
            telemetry=telemetry,
            diagrams=[("figure1 cell", "t  0 1\nA  . .")],
            generated_at="2026-08-08",
        )
        assert "<h2>Sweep telemetry</h2>" in html
        assert "engine.queries" in html
        assert "<h3>Shards</h3>" in html
        assert "<h2>Space-time diagrams</h2>" in html
        assert "generated 2026-08-08" in html
