"""Unit tests for the pluggable sweep execution backends."""

import pytest

from repro.experiments import (
    ChunkedShardExecutor,
    ProcessExecutor,
    SerialExecutor,
    SweepError,
    expand_grid,
    make_cell,
    plan_shards,
    resolve_executor,
    run_shard,
    run_sweep,
    shard_signature,
)


def _small_grid():
    return expand_grid(
        ["line-flood", "tree-flood"],
        adversaries=["earliest", "random"],
        seeds=[0, 1],
        param_grid={"horizon": [5]},
    )


def _strip(record):
    return {k: v for k, v in record.items() if k != "duration_s"}


class TestShardSignature:
    def test_groups_by_structural_params_only(self):
        same_family = [
            make_cell("line-flood", adversary="earliest", seed=0),
            make_cell("line-flood", adversary="random", seed=7),
        ]
        assert shard_signature(same_family[0]) == shard_signature(same_family[1])

    def test_structural_param_splits_families(self):
        small = make_cell("line-flood", overrides={"num_processes": 3})
        large = make_cell("line-flood", overrides={"num_processes": 6})
        assert shard_signature(small) != shard_signature(large)

    def test_scenario_name_always_splits(self):
        line = make_cell("line-flood")
        ring = make_cell("ring-flood")
        assert shard_signature(line) != shard_signature(ring)

    def test_horizon_override_splits(self):
        base = make_cell("line-flood")
        overridden = make_cell("line-flood", horizon=4)
        assert shard_signature(base) != shard_signature(overridden)


class TestPlanShards:
    def test_explicit_shard_size_chunks_each_family(self):
        pending = list(enumerate(_small_grid()))
        shards = plan_shards(pending, workers=2, shard_size=3)
        assert all(len(shard) <= 3 for shard in shards)
        # Every pending cell appears exactly once, index preserved.
        flat = sorted(index for shard in shards for index, _ in shard)
        assert flat == list(range(len(pending)))
        # No shard mixes families.
        for shard in shards:
            signatures = {shard_signature(cell) for _, cell in shard}
            assert len(signatures) == 1

    def test_derived_shard_size_yields_enough_shards(self):
        pending = list(enumerate(_small_grid()))
        shards = plan_shards(pending, workers=2)
        assert len(shards) >= 2  # both workers get something

    def test_empty_pending(self):
        assert plan_shards([], workers=4) == []

    def test_rejects_bad_shard_size(self):
        with pytest.raises(SweepError):
            plan_shards([], workers=1, shard_size=0)


class TestRunShard:
    def test_matches_per_cell_execution(self):
        cells = _small_grid()[:4]
        from repro.experiments import run_cell

        sharded = [_strip(r) for r in run_shard(cells)]
        percell = [_strip(run_cell(cell)) for cell in cells]
        assert sharded == percell

    def test_isolates_cell_errors(self):
        good = make_cell("line-flood", overrides={"horizon": 4})
        # A negative horizon passes parameter validation but makes the
        # simulator raise; the rest of the shard must still complete.
        bad = make_cell("line-flood", overrides={"horizon": -1})
        records = run_shard([bad, good])
        assert records[0]["status"] == "error"
        assert "horizon" in records[0]["error"]
        assert records[1]["status"] == "ok"


class TestResolveExecutor:
    def test_auto_single_worker_is_serial(self):
        assert isinstance(resolve_executor("auto", workers=1), SerialExecutor)

    def test_auto_multi_worker_is_process(self):
        executor = resolve_executor("auto", workers=3)
        assert isinstance(executor, ProcessExecutor)
        assert executor.workers == 3

    def test_process_single_worker_degrades_to_serial(self):
        assert isinstance(resolve_executor("process", workers=1), SerialExecutor)

    def test_sharded_stays_sharded_single_worker(self):
        executor = resolve_executor("sharded", workers=1, shard_size=5)
        assert isinstance(executor, ChunkedShardExecutor)
        assert executor.shard_size == 5

    def test_ready_executor_passes_through(self):
        ready = SerialExecutor()
        assert resolve_executor(ready, workers=8) is ready

    def test_rejects_unknown_backend(self):
        with pytest.raises(SweepError):
            resolve_executor("threads", workers=2)

    def test_rejects_bad_workers(self):
        with pytest.raises(SweepError):
            resolve_executor("auto", workers=0)


class TestBackendEquivalence:
    def test_all_backends_agree(self, tmp_path):
        cells = _small_grid()
        reference = run_sweep(cells, workers=1, backend="serial")
        assert reference.errors == 0
        expected = [_strip(r) for r in reference.records]
        for backend, workers in [("process", 2), ("sharded", 2), ("sharded", 1)]:
            outcome = run_sweep(cells, workers=workers, backend=backend)
            assert outcome.backend == backend
            assert [_strip(r) for r in outcome.records] == expected, (backend, workers)

    def test_figure_scenario_with_stateful_protocol(self):
        """Shard reuse must not leak protocol session state across cells."""
        cells = expand_grid(["figure2b"], adversaries=["earliest", "latest"], seeds=[0])
        serial = run_sweep(cells, workers=1, backend="serial")
        sharded = run_sweep(cells, workers=1, backend="sharded", shard_size=8)
        assert serial.errors == 0 and sharded.errors == 0
        assert [_strip(r) for r in sharded.records] == [
            _strip(r) for r in serial.records
        ]

    def test_run_sweep_rejects_bad_workers(self):
        with pytest.raises(SweepError):
            run_sweep([], workers=0)

    def test_run_sweep_rejects_force_plus_resume(self, tmp_path):
        from repro.experiments import ResultStore

        store = ResultStore(str(tmp_path / "s.jsonl"))
        with pytest.raises(SweepError):
            run_sweep([], store=store, force=True, resume=True)

    def test_run_sweep_resume_requires_store(self):
        with pytest.raises(SweepError):
            run_sweep([], resume=True)


class TestPoolSupervision:
    """Hardened local backends: broken pools, deadlines, degradation.

    Fault plans travel to pool workers via the environment (inherited at
    fork and installed by the pool initializer); this test process itself is
    never marked as a worker, so nothing fires inline.
    """

    def _cells(self, count=4):
        return _small_grid()[:count]

    def test_broken_pool_restarts_and_completes(self, monkeypatch):
        """Each worker dies on its 2nd cell; the sweep still matches serial."""
        from repro.experiments.faults import FAULTS_ENV

        cells = self._cells()
        expected = [_strip(r) for r in run_sweep(cells, backend="serial").records]
        monkeypatch.setenv(FAULTS_ENV, "kill@worker.cell:2")
        executor = ProcessExecutor(2)
        outcome = run_sweep(cells, workers=2, backend=executor)
        assert outcome.errors == 0
        assert [_strip(r) for r in outcome.records] == expected
        assert executor.fabric["pool_restarts"] >= 1

    def test_workers_dying_instantly_degrade_to_serial(self, monkeypatch):
        """Every pool worker dies on its 1st cell: unrecoverable pools, so
        the leftover cells finish on the in-process serial path."""
        from repro.experiments.faults import FAULTS_ENV

        cells = self._cells()
        expected = [_strip(r) for r in run_sweep(cells, backend="serial").records]
        monkeypatch.setenv(FAULTS_ENV, "kill@worker.cell:1")
        executor = ProcessExecutor(2, max_restarts=2)
        outcome = run_sweep(cells, workers=2, backend=executor)
        assert outcome.errors == 0
        assert [_strip(r) for r in outcome.records] == expected
        assert executor.fabric["inline_fallback_cells"] == len(cells)

    def test_hung_cell_is_quarantined_not_waited_out(self, monkeypatch):
        """A cell hanging every worker trips its deadline twice, then becomes
        an error record — the sweep must not hang."""
        import time as _time

        from repro.experiments.faults import FAULTS_ENV

        cells = self._cells(2)
        monkeypatch.setenv(FAULTS_ENV, "hang@worker.cell:*:30")
        executor = ProcessExecutor(2, cell_timeout=0.4, max_attempts=2)
        seen = {}
        started = _time.perf_counter()
        executor.execute(
            list(enumerate(cells)), lambda i, c, r: seen.setdefault(i, r)
        )
        elapsed = _time.perf_counter() - started
        assert elapsed < 20  # far below the 30s hang: deadlines did their job
        assert sorted(seen) == [0, 1]  # handle called exactly once per cell
        assert all(r["status"] == "error" for r in seen.values())
        assert all("WorkerTimeout" in r["error"] for r in seen.values())
        assert executor.fabric["cells_quarantined"] == 2

    def test_sharded_pool_kill_recovers(self, monkeypatch):
        from repro.experiments.faults import FAULTS_ENV

        cells = self._cells()
        expected = [_strip(r) for r in run_sweep(cells, backend="serial").records]
        monkeypatch.setenv(FAULTS_ENV, "kill@worker.shard:1")
        executor = ChunkedShardExecutor(2, shard_size=1, max_restarts=2)
        outcome = run_sweep(cells, workers=2, backend=executor)
        assert outcome.errors == 0
        assert [_strip(r) for r in outcome.records] == expected

    def test_failed_shard_retries_inline_per_cell(self, monkeypatch):
        """A shard-level failure costs an inline per-cell retry, not the
        whole shard's records (drop faults sever shards, and the parent —
        never marked as a worker — re-runs the cells cleanly)."""
        from repro.experiments.faults import FAULTS_ENV

        cells = self._cells()
        expected = [_strip(r) for r in run_sweep(cells, backend="serial").records]
        monkeypatch.setenv(FAULTS_ENV, "drop@worker.shard:*")
        executor = ChunkedShardExecutor(2, shard_size=2)
        outcome = run_sweep(cells, workers=2, backend=executor)
        assert outcome.errors == 0
        assert [_strip(r) for r in outcome.records] == expected
        assert executor.fabric["shard_inline_retries"] >= 1
        assert "DropConnection" in executor.fabric["last_shard_error"]

    def test_serial_backend_ignores_fault_plans(self, monkeypatch):
        """The parent is never a fault-scoped worker: chaos plans in the
        environment cannot touch serial/in-process execution."""
        from repro.experiments.faults import FAULTS_ENV

        monkeypatch.setenv(FAULTS_ENV, "kill@worker.cell:1")
        outcome = run_sweep(self._cells(2), backend="serial")
        assert outcome.errors == 0
