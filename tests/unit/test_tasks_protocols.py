"""Unit tests for coordination tasks, the optimal protocol, and baselines."""

import pytest

from repro.coordination import (
    ChainLowerBoundProtocol,
    EagerKnowledgeProbe,
    LocalGraphProtocol,
    NeverActProtocol,
    OptimalCoordinationProtocol,
    early_task,
    evaluate,
    evaluate_many,
    find_go_node,
    late_task,
    summarise,
)
from repro.coordination.tasks import CoordinationTask
from repro.scenarios import figure1_scenario, figure2b_scenario


class TestTaskDefinitions:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            CoordinationTask(kind="sideways", margin=1)

    def test_late_and_early_helpers(self):
        late = late_task(4)
        early = early_task(2)
        assert late.is_late and not late.is_early
        assert early.is_early
        assert "Late" in late.describe() and "Early" in early.describe()

    def test_go_and_action_nodes(self, figure2b_run):
        task = late_task(3)
        go = task.go_node(figure2b_run)
        assert go is not None and go.process == "C"
        theta_a = task.action_node_a(figure2b_run)
        assert theta_a.path == ("C", "A")
        earlier, later = task.required_precedence(figure2b_run, figure2b_run.final_node("B"))
        assert earlier == theta_a

    def test_required_precedence_swaps_for_early(self, figure2b_run):
        task = early_task(1)
        b_node = figure2b_run.final_node("B")
        earlier, later = task.required_precedence(figure2b_run, b_node)
        assert earlier.base == b_node

    def test_go_node_absent(self, figure2b_run):
        task = late_task(3, go_sender="A")
        assert task.go_node(figure2b_run) is None
        assert task.required_precedence(figure2b_run, figure2b_run.final_node("B")) is None


class TestOutcomes:
    def test_late_outcome_satisfied(self, figure2b_run):
        outcome = evaluate(figure2b_run, late_task(5))
        assert outcome.a_performed and outcome.b_performed
        assert outcome.satisfied
        assert outcome.achieved_margin == outcome.b_time - outcome.a_time
        assert "satisfied=True" in outcome.describe()

    def test_vacuous_outcome(self):
        scenario = figure2b_scenario(margin=10_000)
        outcome = evaluate(scenario.run(), late_task(10_000))
        assert outcome.vacuous and outcome.satisfied

    def test_violation_detected(self, figure2a_run):
        # The naive Figure 2a rule acted; demanding an absurd margin shows violation.
        outcome = evaluate(figure2a_run, late_task(10_000))
        assert not outcome.satisfied

    def test_summary_statistics(self, figure2b_run, figure2a_run):
        task = late_task(5)
        outcomes = evaluate_many([figure2b_run, figure2a_run], task)
        summary = summarise(outcomes)
        assert summary.total == 2
        assert summary.acted == 2
        assert summary.safe
        assert summary.action_rate == 1.0
        assert summary.mean_b_time is not None
        assert summary.mean_margin is not None

    def test_empty_summary(self):
        summary = summarise([])
        assert summary.total == 0
        assert summary.action_rate == 0.0
        assert summary.mean_b_time is None


class TestOptimalProtocol:
    def test_acts_and_satisfies_late(self):
        margin = 5
        scenario = figure2b_scenario(margin=margin)
        run = scenario.run()
        outcome = evaluate(run, late_task(margin))
        assert outcome.b_performed
        assert outcome.satisfied
        assert outcome.achieved_margin >= margin

    def test_never_acts_for_unachievable_margin(self):
        scenario = figure2b_scenario(margin=10_000)
        run = scenario.run()
        assert run.action_time("B", "b") is None

    def test_early_task_on_figure1(self):
        # Early<b --2--> a>: b at least 2 before a.  L_CA=6 >= U_CB=2 + margin.
        task = early_task(2)
        scenario = figure1_scenario(
            lower_cb=1,
            upper_cb=2,
            lower_ca=6,
            upper_ca=8,
            b_protocol=OptimalCoordinationProtocol(task),
            delivery=None,
        )
        run = scenario.run()
        outcome = evaluate(run, task)
        assert outcome.b_performed, "B should act on receiving C's message"
        assert outcome.satisfied

    def test_find_go_node(self, figure2b_run):
        sigma = figure2b_run.final_node("B")
        go = find_go_node(sigma, "C")
        assert go is not None and go.process == "C"
        assert find_go_node(sigma, "A") is None

    def test_eager_probe_matches_protocol_action_time(self):
        margin = 3
        scenario = figure2b_scenario(margin=margin)
        run = scenario.run()
        probe = EagerKnowledgeProbe(late_task(margin))
        found = probe.first_actionable_node(run)
        assert found is not None
        _, probe_time = found
        assert probe_time == run.action_time("B", "b")

    def test_eager_probe_without_go(self, triangle_run):
        probe = EagerKnowledgeProbe(late_task(1, go_sender="B"))
        assert probe.first_actionable_node(triangle_run) is None


class TestBaselines:
    def test_never_act(self):
        task = late_task(3)
        scenario = figure2b_scenario(margin=3, b_protocol=NeverActProtocol(task))
        run = scenario.run()
        assert run.action_time("B", "b") is None

    def test_chain_baseline_is_safe_but_late(self):
        margin = 2
        task = late_task(margin)
        # Chain baseline needs to *see* a's action via a chain A -> ... -> B.  In the
        # zigzag chain scenario there is no channel out of A, so it never acts.
        scenario = figure2b_scenario(margin=margin, b_protocol=ChainLowerBoundProtocol(task))
        run = scenario.run()
        outcome = evaluate(run, task)
        assert outcome.satisfied
        assert not outcome.b_performed

    def test_chain_baseline_acts_when_chain_exists(self, triangle_net):
        from repro.simulation import (
            Context,
            ProtocolAssignment,
            actor_protocol,
            go_at,
            go_sender_protocol,
            simulate,
        )

        margin = 1
        task = late_task(margin)
        protocols = ProtocolAssignment()
        protocols.assign("C", go_sender_protocol())
        protocols.assign("A", actor_protocol("a", "C"))
        protocols.assign("B", ChainLowerBoundProtocol(task))
        run = simulate(Context(triangle_net), protocols, external_inputs=go_at(2, "C"), horizon=12)
        outcome = evaluate(run, task)
        assert outcome.b_performed
        assert outcome.satisfied

    def test_chain_baseline_never_solves_early(self, triangle_net):
        from repro.simulation import (
            Context,
            ProtocolAssignment,
            actor_protocol,
            go_at,
            go_sender_protocol,
            simulate,
        )

        task = early_task(0)
        protocols = ProtocolAssignment()
        protocols.assign("C", go_sender_protocol())
        protocols.assign("A", actor_protocol("a", "C"))
        protocols.assign("B", ChainLowerBoundProtocol(task))
        run = simulate(Context(triangle_net), protocols, external_inputs=go_at(2, "C"), horizon=12)
        assert run.action_time("B", "b") is None

    def test_local_graph_protocol_no_later_than_optimal_never_earlier(self):
        margin = 3
        task = late_task(margin)
        optimal_run = figure2b_scenario(margin=margin).run()
        local_run = figure2b_scenario(
            margin=margin, b_protocol=LocalGraphProtocol(task)
        ).run()
        optimal_time = optimal_run.action_time("B", "b")
        local_time = local_run.action_time("B", "b")
        assert optimal_time is not None
        if local_time is not None:
            assert optimal_time <= local_time
        assert evaluate(local_run, task).satisfied
