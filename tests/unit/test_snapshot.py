"""Tests for intern-pool + base-scenario snapshots (worker warm-start).

The warm-start contract: a snapshot only pre-populates caches — loading one
never changes results (warm and cold shard runs are record-identical), a
second load is idempotent, and a damaged or skewed file raises
:class:`SnapshotError` so callers can fall back to a cold start.
"""

import json

import pytest

from repro.experiments import (
    ResultStore,
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    load_snapshot,
    make_cell,
    run_sweep,
    write_snapshot,
)
from repro.experiments.executors import run_shard_monitored
from repro.experiments.snapshot import load_pool_snapshot, pool_snapshot
from repro.simulation.interning import current_pool, intern_pool


def _seeded_store(tmp_path, seeds=(0, 1)):
    store = ResultStore(str(tmp_path / "results.jsonl"))
    cells = [
        make_cell("line-flood", overrides={"horizon": 5}, seed=seed)
        for seed in seeds
    ]
    run_sweep(cells, store=store, workers=1)
    return store, cells


class TestWriteLoadRoundTrip:
    def test_round_trip_builds_executor_keyed_base_cache(self, tmp_path):
        store, cells = _seeded_store(tmp_path)
        path = str(tmp_path / "warm.json")
        summary = write_snapshot(store, path)
        assert summary["bases"] >= 1
        assert summary["nodes"] > 0
        assert summary["bytes"] > 0

        with intern_pool():
            base_cache = load_snapshot(path)
            assert base_cache
            # Keyed exactly like execute_cell_inline's probe.
            for cell in cells:
                expected = make_cell(
                    cell.scenario, overrides=cell.params_dict(), seed=cell.seed
                )
                assert (expected.scenario, expected.params) in base_cache

    def test_snapshot_skips_telemetry_records(self, tmp_path):
        store, _ = _seeded_store(tmp_path)
        # The telemetry record has no scenario/params axes; it must not
        # become a base (write_snapshot would fail to build it).
        path = str(tmp_path / "warm.json")
        summary = write_snapshot(store, path)
        data = json.loads(open(path, "rb").read())
        assert len(data["bases"]) == summary["bases"]
        for scenario, params in data["bases"]:
            assert isinstance(scenario, str) and isinstance(params, dict)

    def test_limit_validation(self, tmp_path):
        store, _ = _seeded_store(tmp_path)
        with pytest.raises(SnapshotError, match="limit"):
            write_snapshot(store, str(tmp_path / "warm.json"), limit=0)


class TestPoolSnapshot:
    def test_load_is_idempotent(self, tmp_path):
        store, _ = _seeded_store(tmp_path)
        path = str(tmp_path / "warm.json")
        write_snapshot(store, path)
        with intern_pool():
            load_snapshot(path)
            first = len(current_pool().nodes)
            load_snapshot(path)
            assert len(current_pool().nodes) == first

    def test_pool_round_trip_reinterns_every_node(self, tmp_path):
        store, cells = _seeded_store(tmp_path, seeds=(0,))
        with intern_pool():
            from repro.experiments.runner import execute_cell_inline

            execute_cell_inline(cells[0])
            encoded = pool_snapshot()
            count = len(current_pool().nodes)
        assert len(encoded["nodes"]) == count
        with intern_pool():
            assert load_pool_snapshot(encoded) == count
            assert len(current_pool().nodes) == count


class TestSnapshotFailureModes:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(str(tmp_path / "nope.json"))

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "warm.json"
        path.write_bytes(b'{"format": 1, "pool": {tor')
        with pytest.raises(SnapshotError, match="not valid JSON"):
            load_snapshot(str(path))

    def test_version_skew_raises(self, tmp_path):
        path = tmp_path / "warm.json"
        path.write_text(
            json.dumps(
                {"format": SNAPSHOT_FORMAT_VERSION + 1, "bases": [], "pool": {}}
            )
        )
        with pytest.raises(SnapshotError, match="format"):
            load_snapshot(str(path))

    def test_unregistered_scenario_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "warm.json"
        path.write_text(
            json.dumps(
                {
                    "format": SNAPSHOT_FORMAT_VERSION,
                    "bases": [["no-such-scenario", {}]],
                    "pool": {"histories": [], "messages": [], "nodes": []},
                }
            )
        )
        with intern_pool():
            assert load_snapshot(str(path)) == {}

    def test_malformed_base_entry_raises(self, tmp_path):
        path = tmp_path / "warm.json"
        path.write_text(
            json.dumps(
                {
                    "format": SNAPSHOT_FORMAT_VERSION,
                    "bases": [["line-flood"]],
                    "pool": {"histories": [], "messages": [], "nodes": []},
                }
            )
        )
        with pytest.raises(SnapshotError, match="bad base entry"):
            load_snapshot(str(path))


class TestWarmEqualsCold:
    def test_warm_shard_results_are_bit_identical_to_cold(self, tmp_path):
        store, cells = _seeded_store(tmp_path)
        path = str(tmp_path / "warm.json")
        write_snapshot(store, path)

        cold = run_shard_monitored(cells)["records"]
        with intern_pool():
            base_cache = load_snapshot(path)
            warm = run_shard_monitored(cells, base_cache=base_cache, fresh_pool=False)[
                "records"
            ]

        def strip(record):
            return {k: v for k, v in record.items() if k != "duration_s"}

        assert [strip(r) for r in warm] == [strip(r) for r in cold]
