"""Tests for GraphML/DOT export: determinism, escaping, networkx round-trip."""

import io

import pytest

from repro.core.bounds_graph import basic_bounds_graph
from repro.core.extended_graph import ExtendedBoundsGraph
from repro.core.graph import WeightedGraph
from repro.experiments.cli import main as cli_main
from repro.experiments.runner import build_cell_scenario, make_cell
from repro.viz.export import causal_dag, graph_to_dot, graph_to_graphml


@pytest.fixture()
def figure1_run():
    return build_cell_scenario(make_cell("figure1")).run()


class TestGraphML:
    def test_deterministic_output(self, figure1_run):
        first = graph_to_graphml(basic_bounds_graph(figure1_run), figure1_run)
        second = graph_to_graphml(basic_bounds_graph(figure1_run), figure1_run)
        assert first == second

    def test_declares_keys_and_labels(self, figure1_run):
        xml = graph_to_graphml(basic_bounds_graph(figure1_run), figure1_run)
        assert 'attr.name="label"' in xml
        assert 'attr.name="weight"' in xml
        assert "A@t0" in xml

    def test_escapes_xml_specials(self):
        graph = WeightedGraph()
        graph.add_edge("a<b", 'c&"d"', 1, label="<&>")
        xml = graph_to_graphml(graph)
        assert "a&lt;b" in xml and "c&amp;" in xml and "&lt;&amp;&gt;" in xml

    def test_networkx_roundtrip_bounds_graph(self, figure1_run):
        nx = pytest.importorskip("networkx")
        graph = basic_bounds_graph(figure1_run)
        loaded = nx.read_graphml(io.StringIO(graph_to_graphml(graph, figure1_run)))
        assert loaded.number_of_nodes() == len(graph)
        assert loaded.number_of_edges() == graph.edge_count()
        labels = {data["label"] for _, data in loaded.nodes(data=True)}
        assert "A@t0" in labels
        weights = [data["weight"] for _, _, data in loaded.edges(data=True)]
        assert all(isinstance(w, int) for w in weights)

    def test_networkx_roundtrip_preserves_parallel_edges(self):
        nx = pytest.importorskip("networkx")
        graph = WeightedGraph()
        graph.add_edge("a", "b", 1, label="fidelity")
        graph.add_edge("a", "b", 5, label="transmission")
        loaded = nx.read_graphml(io.StringIO(graph_to_graphml(graph)))
        assert loaded.is_multigraph()
        assert loaded.number_of_edges() == 2

    def test_networkx_roundtrip_extended_graph(self, figure1_run):
        nx = pytest.importorskip("networkx")
        sigma = figure1_run.final_node(figure1_run.processes[0])
        extended = ExtendedBoundsGraph(sigma, figure1_run.timed_network)
        xml = graph_to_graphml(extended.graph, figure1_run)
        loaded = nx.read_graphml(io.StringIO(xml))
        assert loaded.number_of_nodes() == len(extended.graph)
        labels = {data["label"] for _, data in loaded.nodes(data=True)}
        assert any(label.startswith("psi(") for label in labels)


class TestDot:
    def test_deterministic_and_quoted(self, figure1_run):
        dag = causal_dag(figure1_run)
        text = graph_to_dot(dag, figure1_run, name="causal")
        assert text == graph_to_dot(causal_dag(figure1_run), figure1_run, name="causal")
        assert text.startswith('digraph "causal" {')
        assert '[label="A@t0"];' in text
        assert text.rstrip().endswith("}")

    def test_quote_escaping(self):
        graph = WeightedGraph()
        graph.add_edge('say "hi"', "b\\c", 1)
        text = graph_to_dot(graph)
        assert '\\"hi\\"' in text
        assert "b\\\\c" in text


class TestCausalDag:
    def test_edges_match_run_structure(self, figure1_run):
        dag = causal_dag(figure1_run)
        locals_ = [e for e in dag.edges if e.label == "local"]
        messages = [e for e in dag.edges if e.label == "message"]
        expected_locals = sum(
            len(figure1_run.timelines[p]) - 1 for p in figure1_run.processes
        )
        assert len(locals_) == expected_locals
        assert len(messages) == len(figure1_run.deliveries)
        for edge in messages:
            assert edge.weight >= 0  # transmission delay

    def test_every_run_node_present(self, figure1_run):
        dag = causal_dag(figure1_run)
        for node in figure1_run.nodes():
            assert node in dag


class TestExportCli:
    def test_export_graphml_roundtrips(self, tmp_path, capsys):
        nx = pytest.importorskip("networkx")
        path = str(tmp_path / "g.graphml")
        assert cli_main(
            ["export", "figure1", "--graph", "bounds", "--output", path]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        loaded = nx.read_graphml(path)
        assert loaded.number_of_nodes() > 0

    def test_export_extended_with_sigma(self, tmp_path, capsys):
        path = str(tmp_path / "ge.graphml")
        code = cli_main(
            ["export", "figure1", "--graph", "extended", "--sigma", "A",
             "--output", path]
        )
        assert code == 0
        assert "psi(" in open(path, encoding="utf-8").read()

    def test_export_dot_to_stdout(self, capsys):
        assert cli_main(["export", "figure1", "--graph", "causal",
                         "--format", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_export_rejects_bad_sigma(self, capsys):
        assert cli_main(
            ["export", "figure1", "--graph", "extended", "--sigma", "ZZZ"]
        ) == 2
        assert "not in run" in capsys.readouterr().err
