"""Unit tests for timing functions, the slow timing, and run-by-timing (Lemma 8)."""

import pytest

from repro.core import (
    ConstructionError,
    TimingError,
    basic_bounds_graph,
    is_valid_timing,
    precedence_set,
    realized_gap,
    run_by_timing,
    run_timing,
    slow_run,
    slow_timing,
    slow_timing_domain,
    tight_gap,
    validate_timing,
)
from repro.core.timing import check_p_closed, longest_distances_to


class TestTimingFunctions:
    def test_actual_run_times_are_valid(self, triangle_run, figure2a_run, flooding_run):
        for run in (triangle_run, figure2a_run, flooding_run):
            graph = basic_bounds_graph(run)
            assert is_valid_timing(graph, run_timing(run))

    def test_validate_rejects_violation(self, triangle_run):
        graph = basic_bounds_graph(triangle_run)
        timing = run_timing(triangle_run)
        go_node = triangle_run.external_deliveries[0].receiver_node
        timing[go_node] = timing[go_node] + 500  # push C's node way past its receivers
        with pytest.raises(TimingError):
            validate_timing(graph, timing)

    def test_validate_rejects_negative_times(self, triangle_run):
        graph = basic_bounds_graph(triangle_run)
        timing = run_timing(triangle_run)
        some_node = next(iter(timing))
        timing[some_node] = -1
        with pytest.raises(TimingError):
            validate_timing(graph, timing)

    def test_longest_distances_to(self, triangle_run):
        graph = basic_bounds_graph(triangle_run)
        sigma = triangle_run.final_node("B")
        distances = longest_distances_to(graph, sigma)
        assert distances[sigma] == 0
        for node, weight in distances.items():
            assert graph.longest_path_weight(node, sigma) == weight


class TestSlowTiming:
    def test_domain_is_precedence_set(self, triangle_run):
        sigma = triangle_run.final_node("B")
        domain = slow_timing_domain(triangle_run, sigma)
        graph = basic_bounds_graph(triangle_run)
        assert domain == precedence_set(graph, sigma)
        assert check_p_closed(triangle_run, domain)

    def test_slow_timing_is_valid_and_tight(self, triangle_run):
        sigma = triangle_run.final_node("B")
        graph = basic_bounds_graph(triangle_run)
        timing = slow_timing(triangle_run, sigma)
        assert is_valid_timing(graph, timing)
        # Tightness: for every node in the domain the gap to sigma equals the
        # longest-path constraint.
        for node, assigned in timing.items():
            constraint = graph.longest_path_weight(node, sigma)
            assert timing[sigma] - assigned == constraint

    def test_slow_timing_unknown_node_raises(self, triangle_run):
        from repro.core import BasicNode

        with pytest.raises(TimingError):
            slow_timing(triangle_run, BasicNode.initial("nonexistent"))

    def test_tight_gap_matches_graph(self, triangle_run):
        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        graph = basic_bounds_graph(triangle_run)
        assert tight_gap(triangle_run, go_node, sigma) == graph.longest_path_weight(go_node, sigma)


class TestRunByTiming:
    def test_identity_retiming_reproduces_times(self, triangle_run):
        timing = run_timing(triangle_run)
        rebuilt = run_by_timing(triangle_run, timing)
        for node, time in timing.items():
            if not node.is_initial:
                assert rebuilt.time_of(node) == time

    def test_slow_run_is_legal_and_tight(self, triangle_run, figure2a_run):
        for run in (triangle_run, figure2a_run):
            sigma = run.final_node("B")
            slowed = slow_run(run, sigma)
            slowed.validate(require_forced_delivery=False)
            graph = basic_bounds_graph(run)
            for node in slow_timing_domain(run, sigma):
                if node.is_initial:
                    continue
                constraint = graph.longest_path_weight(node, sigma)
                assert realized_gap(slowed, node, sigma) == constraint

    def test_slow_run_preserves_local_states(self, triangle_run):
        sigma = triangle_run.final_node("B")
        slowed = slow_run(triangle_run, sigma)
        assert slowed.appears(sigma)
        # The past of sigma is identical in both runs (same basic nodes).
        assert triangle_run.past(sigma) <= set(slowed.past(sigma)) | set()

    def test_rejects_non_p_closed_domain(self, triangle_run):
        sigma = triangle_run.final_node("B")
        timing = {sigma: triangle_run.time_of(sigma)}
        with pytest.raises(ConstructionError):
            run_by_timing(triangle_run, timing)

    def test_rejects_unknown_nodes(self, triangle_run):
        from repro.core import BasicNode

        with pytest.raises(ConstructionError):
            run_by_timing(triangle_run, {BasicNode.initial("ghost"): 0})

    def test_realized_gap_handles_missing_nodes(self, triangle_run):
        sigma = triangle_run.final_node("B")
        slowed = slow_run(triangle_run, sigma)
        from repro.core import BasicNode

        assert realized_gap(slowed, BasicNode.initial("ghost"), sigma) is None
