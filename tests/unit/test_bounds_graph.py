"""Unit tests for the basic and local bounds graphs (Definitions 8 and 14)."""

from repro.core import (
    LOWER_EDGE,
    SUCCESSOR_EDGE,
    UPPER_EDGE,
    basic_bounds_graph,
    is_p_closed,
    local_bounds_graph,
    local_bounds_graph_from_run,
    precedence_set,
    verify_against_run,
)


class TestBasicBoundsGraph:
    def test_contains_every_basic_node(self, triangle_run):
        graph = basic_bounds_graph(triangle_run)
        for node in triangle_run.nodes():
            assert node in graph

    def test_edge_kinds_and_weights(self, figure6_run):
        graph = basic_bounds_graph(figure6_run)
        labels = {}
        for edge in graph.edges:
            labels.setdefault(edge.label, []).append(edge)
        # One message from i to j: one lower edge (+L) and one upper edge (-U).
        net = figure6_run.timed_network
        assert len(labels[LOWER_EDGE]) == 1
        assert labels[LOWER_EDGE][0].weight == net.L("i", "j")
        assert len(labels[UPPER_EDGE]) == 1
        assert labels[UPPER_EDGE][0].weight == -net.U("i", "j")
        # Successor edges: i has 1 step, j has 1 step.
        assert len(labels[SUCCESSOR_EDGE]) == 2
        assert all(edge.weight == 1 for edge in labels[SUCCESSOR_EDGE])

    def test_no_positive_cycles(self, triangle_run, figure2a_run, flooding_run):
        for run in (triangle_run, figure2a_run, flooding_run):
            assert not basic_bounds_graph(run).has_positive_cycle()

    def test_every_edge_constraint_holds_in_run(self, triangle_run, figure2a_run):
        for run in (triangle_run, figure2a_run):
            ok, message = verify_against_run(basic_bounds_graph(run), run)
            assert ok, message

    def test_longest_path_is_a_valid_constraint(self, triangle_run):
        graph = basic_bounds_graph(triangle_run)
        go_node = triangle_run.external_deliveries[0].receiver_node
        target = triangle_run.final_node("B")
        weight = graph.longest_path_weight(go_node, target)
        assert weight is not None
        gap = triangle_run.time_of(target) - triangle_run.time_of(go_node)
        assert gap >= weight


class TestLocalBoundsGraph:
    def test_matches_induced_subgraph_of_run_graph(self, triangle_run):
        sigma = triangle_run.final_node("B")
        local = local_bounds_graph(sigma, triangle_run.timed_network)
        from_run = local_bounds_graph_from_run(triangle_run, sigma)
        assert set(local.nodes) == set(from_run.nodes)
        local_edges = {(e.source, e.target, e.weight, e.label) for e in local.edges}
        run_edges = {(e.source, e.target, e.weight, e.label) for e in from_run.edges}
        assert local_edges == run_edges

    def test_local_graph_only_contains_past(self, triangle_run):
        sigma = triangle_run.timelines["B"][1][1]
        local = local_bounds_graph(sigma, triangle_run.timed_network)
        past = triangle_run.past(sigma)
        assert set(local.nodes) == set(past)

    def test_local_graph_constraints_hold(self, figure2b_run):
        sigma = figure2b_run.final_node("B")
        local = local_bounds_graph(sigma, figure2b_run.timed_network)
        ok, message = verify_against_run(local, figure2b_run)
        assert ok, message


class TestPrecedenceSets:
    def test_precedence_set_contains_target(self, triangle_run):
        graph = basic_bounds_graph(triangle_run)
        sigma = triangle_run.final_node("B")
        nodes = precedence_set(graph, sigma)
        assert sigma in nodes

    def test_precedence_set_is_p_closed(self, triangle_run, figure2a_run):
        for run in (triangle_run, figure2a_run):
            graph = basic_bounds_graph(run)
            sigma = run.final_node("B")
            assert is_p_closed(graph, precedence_set(graph, sigma))

    def test_arbitrary_subset_usually_not_p_closed(self, triangle_run):
        graph = basic_bounds_graph(triangle_run)
        sigma = triangle_run.final_node("B")
        assert not is_p_closed(graph, {sigma})
