"""Unit tests for the knowledge layer (K_sigma of timed precedence)."""

import pytest

from repro.core import (
    KnowledgeChecker,
    empirical_min_gap,
    general,
    indistinguishable,
    knows_precedence,
    max_known_gap,
)
from repro.core.extended_graph import ExtendedGraphError


class TestKnowledgeChecker:
    def test_known_gap_is_sound_in_the_actual_run(self, triangle_run):
        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        theta_a = general(go_node, ("C", "A"))
        checker = KnowledgeChecker(sigma, triangle_run.timed_network)
        gap = checker.max_known_gap(theta_a, sigma)
        assert gap is not None
        actual = triangle_run.time_of(sigma) - triangle_run.time_of_general(theta_a)
        assert gap <= actual

    def test_knows_matches_max_gap(self, triangle_run):
        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        checker = KnowledgeChecker(sigma, triangle_run.timed_network)
        gap = checker.max_known_gap(go_node, sigma)
        assert checker.knows(go_node, sigma, gap)
        assert not checker.knows(go_node, sigma, gap + 1)

    def test_knows_statement_wrapper(self, triangle_run):
        from repro.core import precedes

        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        checker = KnowledgeChecker(sigma, triangle_run.timed_network)
        gap = checker.max_known_gap(go_node, sigma)
        assert checker.knows_statement(precedes(go_node, sigma, gap))

    def test_max_known_gaps_matches_per_pair_queries(self, triangle_run):
        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        theta_a = general(go_node, ("C", "A"))
        pairs = [
            (go_node, sigma),
            (sigma, go_node),
            (theta_a, sigma),
            (sigma, sigma),
        ]
        checker = KnowledgeChecker(sigma, triangle_run.timed_network)
        batched = checker.max_known_gaps(pairs)
        assert batched == [
            checker.max_known_gap(earlier, later) for earlier, later in pairs
        ]

    def test_max_known_gaps_rejects_unrecognized_nodes(self, triangle_run):
        sigma = triangle_run.final_node("B")
        late_c = triangle_run.final_node("C")
        checker = KnowledgeChecker(sigma, triangle_run.timed_network)
        with pytest.raises(ExtendedGraphError):
            checker.max_known_gaps([(sigma, sigma), (late_c, sigma)])

    def test_knows_statements_matches_singleton_queries(self, triangle_run):
        from repro.core import precedes

        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        checker = KnowledgeChecker(sigma, triangle_run.timed_network)
        gap = checker.max_known_gap(go_node, sigma)
        statements = [
            precedes(go_node, sigma, gap),
            precedes(go_node, sigma, gap + 1),
            precedes(sigma, sigma, 0),
        ]
        assert checker.knows_statements(statements) == [
            checker.knows_statement(statement) for statement in statements
        ]
        assert checker.knows_statements(statements) == [True, False, True]

    def test_precompute_all_pairs_is_idempotent(self, triangle_run):
        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        checker = KnowledgeChecker(sigma, triangle_run.timed_network)
        assert checker.precompute_all_pairs() > 0
        # Everything is now memoized: a second precompute has nothing to do
        # and answers still match a cold checker.
        assert checker.precompute_all_pairs() == 0
        cold = KnowledgeChecker(sigma, triangle_run.timed_network)
        assert checker.max_known_gap(go_node, sigma) == cold.max_known_gap(
            go_node, sigma
        )

    def test_known_window_brackets_truth(self, triangle_run):
        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        checker = KnowledgeChecker(sigma, triangle_run.timed_network)
        low, high = checker.known_window(go_node, sigma)
        actual = triangle_run.time_of(sigma) - triangle_run.time_of(go_node)
        assert low is not None and low <= actual
        if high is not None:
            assert actual <= high
            assert low <= high

    def test_self_gap_is_zero(self, triangle_run):
        sigma = triangle_run.final_node("B")
        checker = KnowledgeChecker(sigma, triangle_run.timed_network)
        assert checker.max_known_gap(sigma, sigma) == 0

    def test_unrecognized_node_rejected(self, triangle_run):
        early_b = triangle_run.timelines["B"][1][1]
        late_b = triangle_run.final_node("B")
        checker = KnowledgeChecker(early_b, triangle_run.timed_network)
        with pytest.raises(ExtendedGraphError):
            checker.max_known_gap(late_b, early_b)

    def test_convenience_wrappers(self, triangle_run):
        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        gap = max_known_gap(sigma, go_node, sigma, triangle_run.timed_network)
        assert gap is not None
        assert knows_precedence(sigma, go_node, sigma, gap, triangle_run.timed_network)
        assert not knows_precedence(sigma, go_node, sigma, gap + 5, triangle_run.timed_network)

    def test_local_only_checker_is_weaker_or_equal(self, figure2b_run):
        sigma = figure2b_run.final_node("B")
        go_node = figure2b_run.external_deliveries[0].receiver_node
        theta_a = general(go_node, ("C", "A"))
        net = figure2b_run.timed_network
        full = KnowledgeChecker(sigma, net).max_known_gap(theta_a, sigma)
        local = KnowledgeChecker(sigma, net, include_auxiliary=False).max_known_gap(
            theta_a, sigma
        )
        assert full is not None
        if local is not None:
            assert local <= full

    def test_knowledge_grows_along_timeline(self, figure2b_run):
        """Later B-nodes know at least as strong a bound as earlier ones."""
        run = figure2b_run
        go_node = run.external_deliveries[0].receiver_node
        theta_a = general(go_node, ("C", "A"))
        net = run.timed_network
        previous_offset = None
        for time, node in run.timelines["B"]:
            if node.is_initial:
                continue
            from repro.core import past_nodes

            if go_node not in past_nodes(node):
                continue
            gap = KnowledgeChecker(node, net).max_known_gap(theta_a, node)
            assert gap is not None
            # Normalise to an absolute lower bound on time(sigma_B) - time(a):
            # it can only improve (weakly) as B's time advances.
            offset = gap - time
            if previous_offset is not None:
                assert offset >= previous_offset - (time - previous_time)
            previous_offset, previous_time = offset, time


class TestEmpiricalHelpers:
    def test_indistinguishable(self, triangle_run, figure1_run):
        go_triangle = triangle_run.external_deliveries[0].receiver_node
        assert indistinguishable(triangle_run, triangle_run, go_triangle)
        # C's post-go local state is the same in the figure 1 run.
        assert indistinguishable(triangle_run, figure1_run, go_triangle)
        b_node = triangle_run.final_node("B")
        assert not indistinguishable(triangle_run, figure1_run, b_node)

    def test_empirical_min_gap(self, triangle_run):
        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        gap = empirical_min_gap([triangle_run], sigma, go_node, sigma)
        assert gap == triangle_run.time_of(sigma) - triangle_run.time_of(go_node)
        assert empirical_min_gap([], sigma, go_node, sigma) is None
