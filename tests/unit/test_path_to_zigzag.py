"""Unit tests for the Lemma 5 conversion: bounds-graph paths to zigzag patterns."""

import pytest

from repro.core import (
    ConversionError,
    basic_bounds_graph,
    check_theorem1,
    general,
    longest_zigzag_between,
    path_to_zigzag,
)


class TestPathToZigzag:
    def test_empty_path_needs_endpoints(self, triangle_run):
        with pytest.raises(ConversionError):
            path_to_zigzag(triangle_run, [])

    def test_empty_path_with_matching_endpoints(self, triangle_run):
        node = triangle_run.final_node("B")
        pattern = path_to_zigzag(triangle_run, [], general(node), general(node))
        assert pattern.weight(triangle_run) == 0
        assert pattern.is_valid_in(triangle_run)

    def test_empty_path_with_mismatched_endpoints_rejected(self, triangle_run):
        node = triangle_run.final_node("B")
        other = triangle_run.final_node("A")
        with pytest.raises(ConversionError):
            path_to_zigzag(triangle_run, [], general(node), general(other))

    def test_single_lower_edge(self, figure6_run):
        graph = basic_bounds_graph(figure6_run)
        go_node = figure6_run.external_deliveries[0].receiver_node
        receiver = figure6_run.deliveries[0].receiver_node
        weight, edges = graph.longest_path(go_node, receiver)
        pattern = path_to_zigzag(figure6_run, edges)
        assert pattern.weight(figure6_run) == weight
        assert figure6_run.resolve(pattern.tail) == go_node
        assert figure6_run.resolve(pattern.head) == receiver

    def test_single_upper_edge(self, figure6_run):
        graph = basic_bounds_graph(figure6_run)
        go_node = figure6_run.external_deliveries[0].receiver_node
        receiver = figure6_run.deliveries[0].receiver_node
        weight, edges = graph.longest_path(receiver, go_node)
        pattern = path_to_zigzag(figure6_run, edges)
        assert pattern.weight(figure6_run) == weight
        assert figure6_run.resolve(pattern.tail) == receiver
        assert figure6_run.resolve(pattern.head) == go_node

    def test_noncontiguous_edges_rejected(self, triangle_run):
        graph = basic_bounds_graph(triangle_run)
        edges = list(graph.edges)
        bad = [edges[0], edges[0]] if edges[0].target != edges[0].source else edges[:1]
        if bad[0].target != bad[-1].source:
            with pytest.raises(ConversionError):
                path_to_zigzag(triangle_run, bad)

    def test_wrong_general_endpoints_rejected(self, figure6_run):
        graph = basic_bounds_graph(figure6_run)
        go_node = figure6_run.external_deliveries[0].receiver_node
        receiver = figure6_run.deliveries[0].receiver_node
        _, edges = graph.longest_path(go_node, receiver)
        with pytest.raises(ConversionError):
            path_to_zigzag(figure6_run, edges, general(receiver), general(receiver))

    @pytest.mark.parametrize(
        "source_process,target_process",
        [("C", "B"), ("A", "B"), ("C", "A"), ("B", "C")],
    )
    def test_longest_path_conversion_preserves_weight(
        self, triangle_run, source_process, target_process
    ):
        graph = basic_bounds_graph(triangle_run)
        source = (
            triangle_run.final_node(source_process)
            if source_process != "C"
            else triangle_run.external_deliveries[0].receiver_node
        )
        target = triangle_run.final_node(target_process)
        result = graph.longest_path(source, target)
        if result is None:
            pytest.skip("no constraint between the chosen nodes")
        weight, edges = result
        pattern = path_to_zigzag(triangle_run, edges)
        assert pattern.is_valid_in(triangle_run)
        assert pattern.weight(triangle_run) == weight
        report = check_theorem1(triangle_run, pattern)
        assert report.holds


class TestLongestZigzagBetween:
    def test_matches_longest_path(self, figure2a_run):
        run = figure2a_run
        externals = {r.process: r.receiver_node for r in run.external_deliveries}
        a_node = run.resolve(general(externals["C"], ("C", "A")))
        b_node = run.find_action("B", "b").node
        found = longest_zigzag_between(run, a_node, b_node)
        assert found is not None
        weight, pattern = found
        assert pattern.weight(run) == weight
        assert run.resolve(pattern.tail) == a_node
        assert run.resolve(pattern.head) == b_node
        # The constraint is satisfied by the actual run times (Theorem 1).
        assert run.time_of(b_node) - run.time_of(a_node) >= weight

    def test_returns_none_without_constraint(self, figure2a_run):
        run = figure2a_run
        # Nothing constrains how late A's action can be relative to B's action
        # node in this pattern (no path from B's node back to A's).
        a_node = run.find_action("A", "a").node
        b_node = run.find_action("B", "b").node
        assert longest_zigzag_between(run, b_node, a_node) is None

    def test_every_pair_conversion_is_consistent(self, flooding_run):
        run = flooding_run
        graph = basic_bounds_graph(run)
        nodes = [run.final_node(p) for p in run.processes]
        for source in nodes:
            for target in nodes:
                result = graph.longest_path(source, target)
                if result is None:
                    continue
                weight, edges = result
                pattern = path_to_zigzag(run, edges, general(source), general(target))
                assert pattern.weight(run) == weight
                assert check_theorem1(run, pattern).holds
