"""Tests for the segmented result store: rotation, index, CRC, migration.

The durability contract this file pins down:

* small stores stay bit-for-bit the legacy single-file layout (no sidecars);
* rotation seals CRC-checksummed segments and the sidecar index makes
  lookups O(1) — and the index is *advisory*: deleting or staling it only
  costs a rebuild, never an answer;
* per-record corruption degrades to a cache miss (recompute-and-supersede),
  never to garbage served;
* legacy stores read transparently and ``migrate()`` round-trips records
  bit-identically;
* several OS processes can share one store under the flock protocol
  without losing records (the multi-writer satellite).
"""

import json
import multiprocessing
import os

import pytest

from repro.experiments import faults
from repro.experiments.store import (
    DEFAULT_ROTATE_BYTES,
    ResultStore,
    StoreError,
    canonical_json,
)


def _record(key, value=0, pad=0):
    record = {"key": key, "status": "ok", "value": value}
    if pad:
        record["pad"] = "x" * pad
    return record


def _fill(store, count, pad=40, prefix="k"):
    for i in range(count):
        store.put(_record(f"{prefix}{i}", i, pad=pad))


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.reset()
    yield
    faults.reset()


class TestLegacyCompatibility:
    def test_small_stores_never_grow_sidecars(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"))
        _fill(store, 10)
        assert sorted(os.listdir(tmp_path)) == ["results.jsonl", "results.jsonl.lock"]
        # The tail is plain legacy JSONL: every line parses directly.
        with open(store.path, "rb") as handle:
            for line in handle.read().strip().split(b"\n"):
                assert json.loads(line)["key"].startswith("k")

    def test_rotation_disabled_with_none(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"), rotate_bytes=None)
        _fill(store, 50, pad=200)
        assert not os.path.exists(store.segments_dir)
        assert len(ResultStore(store.path)) == 50

    def test_rejects_bad_rotate_bytes(self, tmp_path):
        with pytest.raises(StoreError):
            ResultStore(str(tmp_path / "r.jsonl"), rotate_bytes=0)

    def test_default_rotate_threshold_is_sane(self):
        assert DEFAULT_ROTATE_BYTES >= 1024 * 1024


class TestRotation:
    def test_rotation_seals_segments_and_keeps_every_record(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"), rotate_bytes=512)
        _fill(store, 50)
        info = store.info()
        assert info["segments"], "rotation never happened"
        assert info["keys"] == 50
        reopened = ResultStore(store.path, rotate_bytes=512)
        assert len(reopened) == 50
        for i in range(50):
            assert reopened.get(f"k{i}") == _record(f"k{i}", i, pad=40)

    def test_sealed_lines_are_crc_wrapped(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"), rotate_bytes=256)
        _fill(store, 20)
        name = store.info()["segments"][0]
        with open(os.path.join(store.segments_dir, name), "rb") as handle:
            meta_line, first, *_ = handle.read().split(b"\n")
        meta = json.loads(meta_line)["seg"]
        assert meta["format"] == 2 and ":" in meta["owner"]
        wrapper = json.loads(first)
        assert set(wrapper) == {"c", "r"} and isinstance(wrapper["c"], int)

    def test_force_rotate_seals_any_size(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"))
        _fill(store, 3)
        assert store.rotate(force=True) is not None
        assert store.info()["tail_records"] == 0
        assert len(ResultStore(store.path)) == 3

    def test_rotate_below_threshold_is_a_no_op(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"))
        _fill(store, 3)
        assert store.rotate() is None
        assert not os.path.exists(store.segments_dir)

    def test_appends_after_rotation_win_over_sealed_records(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"))
        store.put(_record("hot", 1))
        store.rotate(force=True)
        store.put(_record("hot", 2))
        assert store.get("hot")["value"] == 2
        assert ResultStore(store.path).get("hot")["value"] == 2
        assert len(ResultStore(store.path)) == 1


class TestIndex:
    def _segmented(self, tmp_path, count=50):
        store = ResultStore(str(tmp_path / "results.jsonl"), rotate_bytes=512)
        _fill(store, count)
        assert store.info()["segments"]
        return store

    def test_index_is_fresh_after_rotation(self, tmp_path):
        store = self._segmented(tmp_path)
        assert ResultStore(store.path, rotate_bytes=512).info()["index"] == "fresh"

    def test_deleted_index_is_rebuilt_and_persisted(self, tmp_path):
        store = self._segmented(tmp_path)
        os.unlink(store.index_path)
        fresh = ResultStore(store.path, rotate_bytes=512)
        assert fresh.get("k7")["value"] == 7
        assert os.path.exists(store.index_path)
        assert ResultStore(store.path, rotate_bytes=512).info()["index"] == "fresh"

    def test_stale_index_is_detected_and_rebuilt(self, tmp_path):
        store = self._segmented(tmp_path)
        with open(store.index_path, "rb") as handle:
            index = json.loads(handle.read())
        index["segments"] = index["segments"][:-1]  # lie about the disk
        with open(store.index_path, "w") as handle:
            handle.write(canonical_json(index))
        fresh = ResultStore(store.path, rotate_bytes=512)
        assert fresh.info()["index"] == "fresh"  # info reloads post-rebuild
        assert all(fresh.get(f"k{i}") is not None for i in range(50))

    def test_corrupt_index_file_is_rebuilt(self, tmp_path):
        store = self._segmented(tmp_path)
        with open(store.index_path, "wb") as handle:
            handle.write(b"not json{{{")
        fresh = ResultStore(store.path, rotate_bytes=512)
        assert all(fresh.get(f"k{i}") is not None for i in range(50))

    def test_full_scan_mode_matches_indexed_mode(self, tmp_path):
        store = self._segmented(tmp_path)
        indexed = ResultStore(store.path, rotate_bytes=512)
        fullscan = ResultStore(store.path, rotate_bytes=512, use_index=False)
        assert sorted(indexed.keys()) == sorted(fullscan.keys())
        assert len(indexed) == len(fullscan)
        for key in indexed.keys():
            assert indexed.get(key) == fullscan.get(key)
        by_key = {record["key"]: record for record in fullscan.records()}
        assert {r["key"]: r for r in indexed.records()} == by_key


class TestCorruptionSelfHealing:
    def _corrupt_one_byte(self, store):
        name = store.info()["segments"][0]
        path = os.path.join(store.segments_dir, name)
        with open(path, "rb") as handle:
            raw = bytearray(handle.read())
        raw[len(raw) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(raw))

    def test_crc_mismatch_degrades_to_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"), rotate_bytes=512)
        _fill(store, 50)
        self._corrupt_one_byte(store)
        fresh = ResultStore(store.path, rotate_bytes=512)
        missing = [f"k{i}" for i in range(50) if fresh.get(f"k{i}") is None]
        assert len(missing) == 1  # exactly the record the flipped byte hit
        served = [f"k{i}" for i in range(50) if f"k{i}" not in missing]
        for key in served:
            assert fresh.get(key)["key"] == key  # everyone else intact

    def test_recomputed_record_supersedes_the_corrupt_one(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"), rotate_bytes=512)
        _fill(store, 50)
        self._corrupt_one_byte(store)
        fresh = ResultStore(store.path, rotate_bytes=512)
        missing = [f"k{i}" for i in range(50) if fresh.get(f"k{i}") is None]
        fresh.put(_record(missing[0], 999, pad=40))  # the "recompute"
        assert fresh.get(missing[0])["value"] == 999
        assert ResultStore(store.path).get(missing[0])["value"] == 999

    def test_verify_reports_and_repair_heals(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"), rotate_bytes=512)
        _fill(store, 50)
        assert store.verify()["ok"]
        self._corrupt_one_byte(store)
        damaged = ResultStore(store.path, rotate_bytes=512)
        report = damaged.verify()
        assert not report["ok"] and report["corrupt_records"] == 1
        repaired = damaged.verify(repair=True)
        assert repaired["repaired"] and repaired["corrupt_dropped"] == 1
        final = ResultStore(store.path, rotate_bytes=512)
        assert final.verify()["ok"]
        assert len(final) == 49  # the corrupt record is gone, not resurrected

    def test_repair_heals_a_truncated_segment(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"), rotate_bytes=512)
        _fill(store, 50)
        name = store.info()["segments"][0]
        path = os.path.join(store.segments_dir, name)
        with open(path, "rb+") as handle:
            handle.truncate(os.path.getsize(path) - 17)  # tear the last record
        damaged = ResultStore(store.path, rotate_bytes=512)
        assert not damaged.verify()["ok"]
        damaged.verify(repair=True)
        assert ResultStore(store.path, rotate_bytes=512).verify()["ok"]

    def test_verify_flags_a_torn_tail(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"))
        _fill(store, 3)
        with open(store.path, "ab") as handle:
            handle.write(b'{"key": "torn')
        report = ResultStore(store.path).verify()
        assert not report["ok"] and report["tail_torn_lines"] == 1
        ResultStore(store.path).verify(repair=True)
        assert ResultStore(store.path).verify()["ok"]


class TestRecoverStaysShallow:
    def test_recover_drops_tail_lines_and_heals_the_index(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"), rotate_bytes=512)
        _fill(store, 50)
        with open(store.path, "ab") as handle:
            handle.write(b'{"key": "torn-partial')
        os.unlink(store.index_path)
        fresh = ResultStore(store.path, rotate_bytes=512)
        assert fresh.recover() == 1  # only the torn tail line counts
        assert os.path.exists(store.index_path)  # freshness check rebuilt it
        assert len(fresh) == 50
        assert fresh.recover() == 0

    def test_recover_does_not_drop_corrupt_sealed_records(self, tmp_path):
        """recover() is shallow by contract: segment damage heals lazily at
        fetch time, so resume cost stays independent of store size."""
        store = ResultStore(str(tmp_path / "results.jsonl"), rotate_bytes=512)
        _fill(store, 50)
        name = store.info()["segments"][0]
        path = os.path.join(store.segments_dir, name)
        with open(path, "rb") as handle:
            raw = bytearray(handle.read())
        raw[len(raw) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        fresh = ResultStore(store.path, rotate_bytes=512)
        assert fresh.recover() == 0
        with open(path, "rb") as handle:
            assert handle.read() == bytes(raw)  # segment untouched


class TestMigration:
    def _legacy_store(self, tmp_path, count=30):
        """A store laid out exactly as the pre-segment format wrote it."""
        path = str(tmp_path / "legacy.jsonl")
        with open(path, "w") as handle:
            for i in range(count):
                handle.write(canonical_json(_record(f"c{i}", i, pad=25)) + "\n")
        return path

    def test_legacy_stores_read_transparently(self, tmp_path):
        path = self._legacy_store(tmp_path)
        store = ResultStore(path)
        assert len(store) == 30
        assert store.get("c4") == _record("c4", 4, pad=25)
        assert store.info()["segments"] == []

    def test_migrate_round_trips_records_bit_identically(self, tmp_path):
        path = self._legacy_store(tmp_path)
        before = {
            record["key"]: canonical_json(record)
            for record in ResultStore(path).records()
        }
        info = ResultStore(path).migrate()
        assert info["segments"] and info["index"] == "fresh"
        assert info["tail_records"] == 0
        migrated = ResultStore(path)
        after = {
            record["key"]: canonical_json(record) for record in migrated.records()
        }
        assert after == before
        for key, encoded in before.items():
            assert canonical_json(migrated.get(key)) == encoded

    def test_migrate_is_idempotent(self, tmp_path):
        path = self._legacy_store(tmp_path)
        first = ResultStore(path).migrate()
        second = ResultStore(path).migrate()
        assert second["segments"] == first["segments"]
        assert second["keys"] == first["keys"] == 30

    def test_appends_after_migration_land_in_the_tail(self, tmp_path):
        path = self._legacy_store(tmp_path)
        ResultStore(path).migrate()
        store = ResultStore(path)
        store.put(_record("new", 1))
        assert store.info()["tail_records"] == 1
        assert ResultStore(path).get("new") == _record("new", 1)


class TestSegmentedCompaction:
    def test_compact_collapses_small_segmented_stores_to_legacy(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"), rotate_bytes=512)
        for i in range(50):
            store.put(_record(f"k{i % 10}", i, pad=40))
        assert store.info()["segments"]
        collapsed = ResultStore(store.path, rotate_bytes=None)
        assert collapsed.compact() == 40
        assert not os.path.exists(store.segments_dir)
        assert not os.path.exists(store.index_path)
        final = ResultStore(store.path)
        assert len(final) == 10
        assert final.get("k3")["value"] == 43  # newest per key won

    def test_compact_reseal_numbers_new_segments_after_old(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"), rotate_bytes=512)
        for i in range(100):
            store.put(_record(f"k{i % 40}", i, pad=40))
        old = set(store.info()["segments"])
        compactor = ResultStore(store.path, rotate_bytes=512)
        assert compactor.compact() > 0
        new = set(compactor.info()["segments"])
        assert new and not (new & old)
        # A crash mid-compaction would leave old+new mixed: new names sort
        # after every old name, so newest records still win the scan order.
        assert min(new) > max(old)
        final = ResultStore(store.path, rotate_bytes=512)
        assert len(final) == 40
        assert final.get("k0")["value"] == 80
        assert final.compact() == 0  # idempotent


class TestStorageFaultInjection:
    def test_torn_write_loses_exactly_that_record(self, tmp_path):
        faults.mark_storage("torn-write@store.append:2")
        store = ResultStore(str(tmp_path / "results.jsonl"))
        store.put(_record("a"))
        store.put(_record("b"))  # torn mid-line
        store.put(_record("c"))  # folds a newline over the fragment
        assert "b" not in store  # the writer does not lie to itself either
        fresh = ResultStore(store.path)
        assert sorted(fresh.keys()) == ["a", "c"]
        assert fresh.recover() == 1

    def test_corrupt_segment_at_seal_is_caught_by_verify(self, tmp_path):
        faults.mark_storage("corrupt-segment@store.seal:1")
        store = ResultStore(str(tmp_path / "results.jsonl"), rotate_bytes=256)
        _fill(store, 20)
        faults.reset()
        report = ResultStore(store.path, rotate_bytes=256).verify()
        assert not report["ok"] and report["corrupt_records"] >= 1
        ResultStore(store.path, rotate_bytes=256).verify(repair=True)
        assert ResultStore(store.path, rotate_bytes=256).verify()["ok"]

    def test_partial_fsync_tears_the_segment_end(self, tmp_path):
        faults.mark_storage("partial-fsync@store.seal:1")
        store = ResultStore(str(tmp_path / "results.jsonl"), rotate_bytes=256)
        _fill(store, 20)
        faults.reset()
        report = ResultStore(store.path, rotate_bytes=256).verify()
        assert not report["ok"]
        ResultStore(store.path, rotate_bytes=256).verify(repair=True)
        assert ResultStore(store.path, rotate_bytes=256).verify()["ok"]

    def test_stale_index_heals_on_next_open(self, tmp_path):
        faults.mark_storage("stale-index@store.rotate:*")
        store = ResultStore(str(tmp_path / "results.jsonl"), rotate_bytes=256)
        _fill(store, 20)
        faults.reset()
        # Every index write was suppressed, so the sidecar never landed ...
        assert store.info()["segments"]
        assert not os.path.exists(store.index_path)
        # ... and the next open self-heals: rebuild, serve, persist.
        fresh = ResultStore(store.path, rotate_bytes=256)
        assert all(fresh.get(f"k{i}") is not None for i in range(20))
        assert ResultStore(store.path, rotate_bytes=256).info()["index"] == "fresh"

    def test_no_faults_without_a_mark(self, tmp_path):
        faults.install_plan(faults.parse_plan("torn-write@store.append:1"))
        store = ResultStore(str(tmp_path / "results.jsonl"))
        store.put(_record("a"))
        assert ResultStore(store.path).get("a") == _record("a")


def _mp_put_many(path, prefix, count, rotate_bytes):
    store = ResultStore(path, rotate_bytes=rotate_bytes)
    store.put_many([_record(f"{prefix}-{i}", i, pad=30) for i in range(count)])


def _mp_compact_loop(path, rounds, rotate_bytes):
    store = ResultStore(path, rotate_bytes=rotate_bytes)
    for _ in range(rounds):
        store.compact()
        store.reload()


def _mp_append_hot_keys(path, count, rotate_bytes):
    store = ResultStore(path, rotate_bytes=rotate_bytes)
    for i in range(count):
        store.put(_record(f"hot-{i % 5}", i, pad=30))


class TestMultiWriterProcesses:
    """Several OS processes sharing one store under the flock protocol."""

    def _run_all(self, processes):
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60.0)
        assert all(process.exitcode == 0 for process in processes)

    def test_two_processes_interleave_put_many_without_loss(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        ctx = multiprocessing.get_context("spawn")
        self._run_all(
            [
                ctx.Process(target=_mp_put_many, args=(path, "alpha", 60, 1024)),
                ctx.Process(target=_mp_put_many, args=(path, "beta", 60, 1024)),
            ]
        )
        final = ResultStore(path, rotate_bytes=1024)
        expected = sorted(
            [f"alpha-{i}" for i in range(60)] + [f"beta-{i}" for i in range(60)]
        )
        assert sorted(final.keys()) == expected
        assert final.verify()["ok"] or final.verify()["index"] in ("stale", "missing")
        for i in range(60):
            assert final.get(f"alpha-{i}")["value"] == i
            assert final.get(f"beta-{i}")["value"] == i

    def test_compaction_racing_a_live_appender_loses_nothing(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        seed = ResultStore(path, rotate_bytes=None)
        for i in range(30):
            seed.put(_record(f"hot-{i % 5}", i, pad=30))
        ctx = multiprocessing.get_context("spawn")
        self._run_all(
            [
                ctx.Process(target=_mp_append_hot_keys, args=(path, 80, None)),
                ctx.Process(target=_mp_compact_loop, args=(path, 15, None)),
            ]
        )
        final = ResultStore(path)
        # No record loss: every hot key survives, and last-write-wins holds
        # (the appender's final values are 75..79 for hot-0..hot-4).
        assert sorted(final.keys()) == [f"hot-{i}" for i in range(5)]
        for i in range(5):
            assert final.get(f"hot-{i}")["value"] == 75 + i
        final.compact()
        assert sorted(ResultStore(path).keys()) == [f"hot-{i}" for i in range(5)]
