"""Unit tests for exhaustive run enumeration."""

import pytest

from repro.simulation import (
    Context,
    ProtocolAssignment,
    actor_protocol,
    enumerate_indistinguishable_runs,
    enumerate_runs,
    go_at,
    go_sender_protocol,
    simulate,
    timed_network,
)


@pytest.fixture()
def tiny_context():
    net = timed_network({("C", "A"): (1, 2), ("C", "B"): (1, 3)})
    protocols = ProtocolAssignment()
    protocols.assign("C", go_sender_protocol())
    protocols.assign("A", actor_protocol("a", "C"))
    return Context(net), protocols


class TestEnumeration:
    def test_number_of_runs_matches_delivery_choices(self, tiny_context):
        context, protocols = tiny_context
        runs = list(
            enumerate_runs(context, protocols, external_inputs=go_at(1, "C"), horizon=6)
        )
        # C sends one message to A (2 possible delays) and one to B (3 possible
        # delays); A and B have no outgoing channels, so that's all the branching.
        assert len(runs) == 6

    def test_all_runs_are_legal_and_distinct(self, tiny_context):
        context, protocols = tiny_context
        runs = list(
            enumerate_runs(context, protocols, external_inputs=go_at(1, "C"), horizon=6)
        )
        signatures = set()
        for run in runs:
            run.validate()
            signature = tuple(
                (d.sender, d.destination, d.send_time, d.delivery_time)
                for d in sorted(run.deliveries, key=lambda d: (d.sender, d.destination))
            )
            signatures.add(signature)
        assert len(signatures) == len(runs)

    def test_pending_choice_collapsed(self, tiny_context):
        context, protocols = tiny_context
        # Horizon 2: C -> B (delays 1..3) can land at 2 or stay pending (delays 2, 3
        # both exceed the horizon and collapse into one "pending" branch).
        runs = list(
            enumerate_runs(context, protocols, external_inputs=go_at(1, "C"), horizon=2)
        )
        assert len(runs) == 4  # (A: delay1, pending) x (B: delay1, pending)

    def test_max_runs_cap(self, tiny_context):
        context, protocols = tiny_context
        runs = list(
            enumerate_runs(
                context, protocols, external_inputs=go_at(1, "C"), horizon=6, max_runs=3
            )
        )
        assert len(runs) == 3

    def test_simulated_run_is_among_enumerated(self, tiny_context):
        context, protocols = tiny_context
        simulated = simulate(context, protocols, external_inputs=go_at(1, "C"), horizon=6)
        enumerated = list(
            enumerate_runs(context, protocols, external_inputs=go_at(1, "C"), horizon=6)
        )
        target = {
            (d.sender, d.destination, d.send_time, d.delivery_time)
            for d in simulated.deliveries
        }
        assert any(
            {
                (d.sender, d.destination, d.send_time, d.delivery_time)
                for d in run.deliveries
            }
            == target
            for run in enumerated
        )

    def test_no_external_input_yields_single_quiet_run(self, tiny_context):
        context, protocols = tiny_context
        runs = list(enumerate_runs(context, protocols, horizon=4))
        assert len(runs) == 1
        assert not runs[0].deliveries

    def test_indistinguishable_filter(self, tiny_context):
        context, protocols = tiny_context
        simulated = simulate(context, protocols, external_inputs=go_at(1, "C"), horizon=6)
        a_node = simulated.find_action("A", "a").node
        matching = list(
            enumerate_indistinguishable_runs(
                context,
                a_node,
                protocols,
                external_inputs=go_at(1, "C"),
                horizon=6,
            )
        )
        assert matching
        for run in matching:
            assert run.appears(a_node)
        # A's local state does not encode real time, so every schedule (any C->A
        # delay, any C->B delay) is indistinguishable at A's node.
        assert len(matching) == 6
