"""Unit tests for networks, bounds, and path arithmetic."""

import pytest

from repro.simulation import Bounds, Network, NetworkError, TimedNetwork, timed_network
from repro.simulation.network import (
    as_path,
    compose_paths,
    concatenate_paths,
    fully_connected,
    grid,
    line,
    ring,
    star,
    torus,
    tree,
)


class TestNetwork:
    def test_basic_construction(self):
        net = Network(["A", "B"], [("A", "B")])
        assert net.processes == ("A", "B")
        assert net.has_channel("A", "B")
        assert not net.has_channel("B", "A")

    def test_duplicate_process_rejected(self):
        with pytest.raises(NetworkError):
            Network(["A", "A"], [])

    def test_empty_process_set_rejected(self):
        with pytest.raises(NetworkError):
            Network([], [])

    def test_unknown_channel_endpoint_rejected(self):
        with pytest.raises(NetworkError):
            Network(["A"], [("A", "B")])

    def test_duplicate_channel_rejected(self):
        with pytest.raises(NetworkError):
            Network(["A", "B"], [("A", "B"), ("A", "B")])

    def test_neighbors(self):
        net = Network(["A", "B", "C"], [("A", "B"), ("A", "C"), ("B", "C")])
        assert net.out_neighbors("A") == ("B", "C")
        assert net.in_neighbors("C") == ("A", "B")
        assert net.out_neighbors("C") == ()

    def test_unknown_process_raises(self):
        net = Network(["A"], [])
        with pytest.raises(NetworkError):
            net.out_neighbors("Z")

    def test_is_path(self):
        net = Network(["A", "B", "C"], [("A", "B"), ("B", "C")])
        assert net.is_path(("A", "B", "C"))
        assert net.is_path(("A",))
        assert not net.is_path(("A", "C"))
        assert not net.is_path(("A", "B", "A"))

    def test_validate_path_raises(self):
        net = Network(["A", "B"], [("A", "B")])
        with pytest.raises(NetworkError):
            net.validate_path(("B", "A"))

    def test_iter_paths_counts(self):
        net = Network(["A", "B", "C"], [("A", "B"), ("B", "C"), ("C", "A")])
        paths = list(net.iter_paths("A", max_hops=3))
        # Exactly one walk of each length 0..3 from A in a directed 3-cycle.
        assert len(paths) == 4
        assert ("A", "B", "C", "A") in paths

    def test_contains_and_len(self):
        net = Network(["A", "B"], [("A", "B")])
        assert "A" in net and "Z" not in net
        assert len(net) == 2


class TestPaths:
    def test_as_path_rejects_empty(self):
        with pytest.raises(NetworkError):
            as_path([])

    def test_compose_requires_matching_endpoint(self):
        assert compose_paths(("A", "B"), ("B", "C")) == ("A", "B", "C")
        with pytest.raises(NetworkError):
            compose_paths(("A", "B"), ("C", "D"))

    def test_concatenate_keeps_both(self):
        assert concatenate_paths(("A", "B"), ("B", "C")) == ("A", "B", "B", "C")


class TestBounds:
    def test_valid_bounds(self):
        bounds = Bounds({("A", "B"): 2}, {("A", "B"): 5})
        assert bounds.L("A", "B") == 2
        assert bounds.U("A", "B") == 5
        assert bounds.window("A", "B") == (2, 5)

    def test_rejects_zero_lower(self):
        with pytest.raises(NetworkError):
            Bounds({("A", "B"): 0}, {("A", "B"): 5})

    def test_rejects_lower_above_upper(self):
        with pytest.raises(NetworkError):
            Bounds({("A", "B"): 6}, {("A", "B"): 5})

    def test_rejects_mismatched_channels(self):
        with pytest.raises(NetworkError):
            Bounds({("A", "B"): 1}, {("B", "A"): 1})

    def test_uniform_and_from_pairs(self):
        uniform = Bounds.uniform([("A", "B"), ("B", "A")], 1, 2)
        assert uniform.L("B", "A") == 1
        pairs = Bounds.from_pairs({("A", "B"): (3, 7)})
        assert pairs.window("A", "B") == (3, 7)

    def test_path_bounds_accumulate(self):
        bounds = Bounds.from_pairs({("A", "B"): (2, 4), ("B", "C"): (3, 6)})
        assert bounds.path_lower(("A", "B", "C")) == 5
        assert bounds.path_upper(("A", "B", "C")) == 10
        assert bounds.path_lower(("A",)) == 0

    def test_missing_channel_raises(self):
        bounds = Bounds.from_pairs({("A", "B"): (1, 1)})
        with pytest.raises(NetworkError):
            bounds.L("B", "A")


class TestTimedNetwork:
    def test_bounds_must_match_channels(self):
        net = Network(["A", "B"], [("A", "B")])
        with pytest.raises(NetworkError):
            TimedNetwork(net, Bounds.from_pairs({("B", "A"): (1, 1)}))

    def test_helper_constructor_infers_processes(self):
        net = timed_network({("X", "Y"): (1, 2), ("Y", "Z"): (2, 3)})
        assert net.processes == ("X", "Y", "Z")
        assert net.L("Y", "Z") == 2

    def test_path_bounds_validate_path(self):
        net = timed_network({("X", "Y"): (1, 2)})
        with pytest.raises(NetworkError):
            net.path_lower(("Y", "X"))

    def test_topology_helpers(self):
        full = fully_connected(["a", "b", "c"], 1, 2)
        assert len(full.channels) == 6
        rng = ring(["a", "b", "c"], 1, 1)
        assert len(rng.channels) == 3
        lin = line(["a", "b", "c"], 1, 1)
        assert len(lin.channels) == 4
        lin_one_way = line(["a", "b", "c"], 1, 1, bidirectional=False)
        assert len(lin_one_way.channels) == 2
        st = star("hub", ["x", "y"], 1, 1)
        assert ("hub", "x") in st.channels and ("y", "hub") in st.channels

    def test_ring_needs_two(self):
        with pytest.raises(NetworkError):
            ring(["solo"])


class TestStructuredTopologies:
    def test_grid_shape(self):
        net = grid(2, 3)
        assert len(net.processes) == 6
        # 2 rows x 3 cols: 2*2 horizontal + 3*1 vertical undirected edges, doubled.
        assert len(net.channels) == 2 * (2 * 2 + 3 * 1)
        assert net.is_path(("r0c0", "r0c1", "r1c1"))
        assert not net.is_path(("r0c0", "r1c1"))  # no diagonals

    def test_grid_channels_are_bidirectional(self):
        net = grid(2, 2, lower=2, upper=5)
        for i, j in net.channels:
            assert (j, i) in net.channels
            assert net.L(i, j) == 2 and net.U(i, j) == 5

    def test_torus_wraps_both_dimensions(self):
        net = torus(3, 3)
        assert ("r0c2", "r0c0") in net.channels
        assert ("r2c0", "r0c0") in net.channels
        # Every process has degree 4 in a 3x3 torus.
        for process in net.processes:
            assert len(net.out_neighbors(process)) == 4

    def test_torus_degenerate_dimensions_have_no_duplicates(self):
        # Wrap-around on a dimension of size 2 would duplicate the mesh channel.
        net = torus(2, 2)
        assert len(net.channels) == len(set(net.channels))
        for process in net.processes:
            assert process not in net.out_neighbors(process)  # no self loops

    def test_grid_rejects_degenerate(self):
        with pytest.raises(NetworkError):
            grid(1, 1)
        with pytest.raises(NetworkError):
            grid(0, 3)

    def test_tree_shape(self):
        net = tree(branching=2, depth=2)
        assert len(net.processes) == 7  # 1 + 2 + 4
        assert len(net.channels) == 2 * 6  # 6 undirected tree edges
        assert net.is_path(("n0", "n1"))
        assert net.is_path(("n3", "n1", "n0", "n2"))

    def test_tree_single_branch_is_a_line(self):
        net = tree(branching=1, depth=3)
        assert len(net.processes) == 4
        assert net.is_path(("n0", "n1", "n2", "n3"))

    def test_tree_rejects_degenerate(self):
        with pytest.raises(NetworkError):
            tree(branching=0, depth=2)
        with pytest.raises(NetworkError):
            tree(branching=2, depth=0)

    def test_structured_networks_flood_everywhere(self):
        from repro.simulation import Context, ProtocolAssignment, go_at, simulate

        for net in (grid(2, 3), torus(3, 3), tree(2, 2)):
            run = simulate(
                Context(net),
                ProtocolAssignment(),
                external_inputs=go_at(1, net.processes[0]),
                horizon=10,
            )
            run.validate()
            touched = {p for p in run.processes if len(run.timelines[p]) > 1}
            assert touched == set(net.processes)
