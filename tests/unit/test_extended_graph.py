"""Unit tests for the extended bounds graph GE(r, sigma) and its chain nodes."""

import pytest

from repro.core import (
    AuxiliaryNode,
    ExtendedBoundsGraph,
    ExtendedGraphError,
    general,
)
from repro.core.extended_graph import (
    AUXILIARY_EDGE,
    CHAIN_ANCHOR_EDGE,
    CHAIN_LOWER_EDGE,
    CHAIN_UPPER_EDGE,
    FLOODING_EDGE,
    UNDELIVERED_EDGE,
    ChainNode,
)


@pytest.fixture()
def extended_b(triangle_run):
    sigma = triangle_run.final_node("B")
    return ExtendedBoundsGraph(sigma, triangle_run.timed_network), sigma, triangle_run


class TestStructure:
    def test_auxiliary_node_per_process(self, extended_b):
        extended, sigma, run = extended_b
        assert set(extended.auxiliary_keys()) == {
            AuxiliaryNode(p) for p in run.processes
        }

    def test_auxiliary_edges_from_boundaries(self, extended_b):
        extended, sigma, run = extended_b
        aux_edges = [e for e in extended.graph.edges if e.label == AUXILIARY_EDGE]
        assert {e.source for e in aux_edges} == set(extended.boundary.values())
        assert all(e.weight == 1 for e in aux_edges)

    def test_flooding_edges_cover_channels(self, extended_b):
        extended, sigma, run = extended_b
        flooding = [e for e in extended.graph.edges if e.label == FLOODING_EDGE]
        net = run.timed_network
        assert len(flooding) == len(net.channels)
        for edge in flooding:
            # Edge (psi_receiver -> psi_sender) with weight -U(sender, receiver).
            assert isinstance(edge.source, AuxiliaryNode)
            assert isinstance(edge.target, AuxiliaryNode)
            assert edge.weight == -net.U(edge.target.process, edge.source.process)

    def test_undelivered_edges_only_for_unseen_deliveries(self, extended_b):
        extended, sigma, run = extended_b
        delivered = set(extended.delivered)
        for edge in extended.graph.edges:
            if edge.label == UNDELIVERED_EDGE:
                sender_node = edge.target
                destination = edge.source.process
                assert (sender_node, destination) not in delivered
                assert sender_node in extended.past

    def test_figure8_edge_summary_has_all_sets(self, figure8_run):
        sigma = figure8_run.final_node("i")
        extended = ExtendedBoundsGraph(sigma, figure8_run.timed_network)
        summary = extended.edge_summary()
        for label in (AUXILIARY_EDGE, UNDELIVERED_EDGE, FLOODING_EDGE):
            assert summary.get(label, 0) > 0
        assert "ExtendedBoundsGraph" in extended.describe()

    def test_no_positive_cycle(self, extended_b, figure2b_run):
        extended, sigma, run = extended_b
        assert not extended.graph.has_positive_cycle()
        sigma2 = figure2b_run.final_node("B")
        graph = ExtendedBoundsGraph(sigma2, figure2b_run.timed_network).graph
        assert not graph.has_positive_cycle()

    def test_without_auxiliary_layer(self, triangle_run):
        sigma = triangle_run.final_node("B")
        bare = ExtendedBoundsGraph(sigma, triangle_run.timed_network, include_auxiliary=False)
        assert not bare.auxiliary_keys()
        assert bare.edge_summary().get(FLOODING_EDGE, 0) == 0


class TestGeneralNodes:
    def test_resolved_chain_maps_to_basic_node(self, extended_b):
        extended, sigma, run = extended_b
        go_node = run.external_deliveries[0].receiver_node
        theta = general(go_node, ("C", "A"))
        key = extended.add_general_node(theta)
        assert key == run.resolve(theta)

    def test_unresolved_chain_creates_chain_nodes(self, extended_b):
        extended, sigma, run = extended_b
        # sigma's own flood to A has certainly not been seen to arrive by sigma.
        theta = general(sigma, ("B", "A"))
        key = extended.add_general_node(theta)
        assert isinstance(key, ChainNode)
        labels = {e.label for e in extended.graph.out_edges(key)}
        assert CHAIN_UPPER_EDGE in labels
        summary = extended.edge_summary()
        assert summary.get(CHAIN_LOWER_EDGE, 0) >= 1
        assert summary.get(CHAIN_ANCHOR_EDGE, 0) >= 1

    def test_adding_twice_does_not_duplicate(self, extended_b):
        extended, sigma, run = extended_b
        theta = general(sigma, ("B", "A", "C"))
        extended.add_general_node(theta)
        edges_before = extended.graph.edge_count()
        extended.add_general_node(theta)
        assert extended.graph.edge_count() == edges_before

    def test_shared_prefixes_share_chain_nodes(self, extended_b):
        extended, sigma, run = extended_b
        extended.add_general_node(general(sigma, ("B", "A")))
        count_after_first = len(extended.chain_keys())
        extended.add_general_node(general(sigma, ("B", "A", "C")))
        assert len(extended.chain_keys()) == count_after_first + 1

    def test_unrecognized_node_rejected(self, triangle_run):
        early_b = triangle_run.timelines["B"][1][1]
        late_b = triangle_run.final_node("B")
        extended = ExtendedBoundsGraph(early_b, triangle_run.timed_network)
        with pytest.raises(ExtendedGraphError):
            extended.add_general_node(general(late_b))

    def test_chain_from_initial_node_rejected(self, extended_b):
        extended, sigma, run = extended_b
        initial_a = run.initial_node("A")
        with pytest.raises(ExtendedGraphError):
            extended.add_general_node(general(initial_a, ("A", "B")))

    def test_auxiliary_lookup_validates_process(self, extended_b):
        extended, sigma, run = extended_b
        assert extended.auxiliary("A") == AuxiliaryNode("A")
        with pytest.raises(ExtendedGraphError):
            extended.auxiliary("nope")


class TestConstraintQueries:
    def test_longest_weight_between_known_nodes(self, extended_b):
        extended, sigma, run = extended_b
        go_node = run.external_deliveries[0].receiver_node
        weight = extended.longest_weight_between(general(go_node), general(sigma))
        assert weight is not None
        # Soundness: the constraint holds in the actual run.
        assert run.time_of(sigma) - run.time_of(go_node) >= weight

    def test_constraint_path_reconstruction(self, extended_b):
        extended, sigma, run = extended_b
        go_node = run.external_deliveries[0].receiver_node
        result = extended.constraint_path(general(go_node), general(sigma))
        assert result is not None
        weight, edges = result
        assert weight == sum(edge.weight for edge in edges)

    def test_over_the_horizon_inference(self, figure8_run):
        """The Section 5.1 example: an unseen delivery still constrains timing.

        If an i-node sigma_i sent a message to j that has not been seen to
        arrive by sigma, then sigma knows sigma_j --(1 - U_ij)--> sigma_i for
        j's boundary node sigma_j.
        """
        run = figure8_run
        sigma = run.final_node("i")
        extended = ExtendedBoundsGraph(sigma, run.timed_network)
        net = run.timed_network
        delivered = set(extended.delivered)
        found = False
        for node in extended.past:
            if node.is_initial:
                continue
            for dest in net.out_neighbors(node.process):
                if (node, dest) in delivered or dest not in extended.boundary:
                    continue
                boundary = extended.boundary[dest]
                weight = extended.longest_weight(boundary, node)
                assert weight is not None
                assert weight >= 1 - net.U(node.process, dest)
                found = True
        assert found, "scenario should contain at least one unseen delivery"
