"""Unit tests for the deterministic fault-injection harness."""

import time

import pytest

from repro.experiments import faults
from repro.experiments.faults import (
    DropConnection,
    FaultError,
    FaultRule,
    parse_plan,
)


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.reset()
    yield
    faults.reset()


class TestParsePlan:
    def test_single_rule(self):
        plan = parse_plan("kill@worker.shard:2")
        assert len(plan.rules) == 1
        rule = plan.rules[0]
        assert rule.kind == "kill"
        assert rule.point == "worker.shard"
        assert rule.nth == 2
        assert not rule.repeat
        assert rule.arg is None

    def test_multiple_rules_with_args(self):
        plan = parse_plan("slow@worker.cell:*:0.05,hang@worker.shard:1:600")
        assert [r.kind for r in plan.rules] == ["slow", "hang"]
        assert plan.rules[0].nth is None
        assert plan.rules[0].arg == 0.05
        assert plan.rules[1].arg == 600

    def test_repeat_marker(self):
        rule = parse_plan("drop@worker.result:3+").rules[0]
        assert rule.nth == 3
        assert rule.repeat

    def test_describe_round_trips(self):
        spec = "kill@worker.shard:2,slow@worker.cell:1+:0.5,drop@worker.result:*"
        plan = parse_plan(spec)
        assert parse_plan(plan.describe()).rules == plan.rules

    def test_blank_clauses_skipped(self):
        assert parse_plan("  , kill@worker.shard:1 , ").rules == (
            FaultRule(kind="kill", point="worker.shard", nth=1),
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "explode@worker.shard:1",  # unknown kind
            "kill worker.shard:1",  # no @
            "kill@worker.shard",  # missing WHEN
            "kill@:1",  # empty point
            "kill@worker.shard:0",  # counts from 1
            "kill@worker.shard:x",  # non-integer WHEN
            "slow@worker.cell:1:abc",  # non-numeric ARG
            "slow@worker.cell:1:-1",  # negative ARG
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(FaultError):
            parse_plan(bad)


class TestArrivalMatching:
    def test_exact_nth_fires_once(self):
        plan = parse_plan("drop@p:2")
        assert plan.arrive("p") == []  # arrival 1
        assert len(plan.arrive("p")) == 1  # arrival 2
        assert plan.arrive("p") == []  # arrival 3

    def test_repeat_fires_from_nth_on(self):
        plan = parse_plan("drop@p:2+")
        assert plan.arrive("p") == []
        assert len(plan.arrive("p")) == 1
        assert len(plan.arrive("p")) == 1

    def test_star_fires_always(self):
        plan = parse_plan("drop@p:*")
        assert len(plan.arrive("p")) == 1
        assert len(plan.arrive("p")) == 1

    def test_points_count_independently(self):
        plan = parse_plan("drop@a:2,drop@b:1")
        assert len(plan.arrive("b")) == 1  # b's first arrival
        assert plan.arrive("a") == []  # a's first arrival
        assert len(plan.arrive("a")) == 1  # a's second


class TestFiring:
    def test_fire_is_noop_without_worker_mark(self):
        faults.install_plan(parse_plan("drop@p:*"))
        faults.fire("p")  # not marked: nothing raises

    def test_fire_is_noop_without_plan(self):
        faults.mark_worker("")
        faults.fire("p")

    def test_drop_raises_in_marked_worker(self):
        faults.mark_worker("drop@p:1")
        with pytest.raises(DropConnection):
            faults.fire("p")
        faults.fire("p")  # second arrival: rule spent

    def test_slow_sleeps(self):
        faults.mark_worker("slow@p:*:0.05")
        started = time.perf_counter()
        faults.fire("p")
        assert time.perf_counter() - started >= 0.04

    def test_hang_raises_flag_and_clears_it(self):
        faults.mark_worker("hang@p:1:0.05")
        assert not faults.hang_active()
        faults.fire("p")  # sleeps 50ms with the flag up, then clears
        assert not faults.hang_active()

    def test_mark_worker_reads_environment(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "drop@p:1")
        faults.mark_worker()
        assert faults.is_worker()
        with pytest.raises(DropConnection):
            faults.fire("p")

    def test_explicit_spec_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "drop@p:1")
        faults.mark_worker("drop@other:1")
        faults.fire("p")  # env plan not installed
        with pytest.raises(DropConnection):
            faults.fire("other")

    def test_reset_clears_everything(self):
        faults.mark_worker("drop@p:1")
        faults.reset()
        assert not faults.is_worker()
        assert faults.active_plan() is None
        faults.fire("p")


class TestStorageFaults:
    """Storage kinds: cooperative, separately scoped, never process-violent."""

    def test_storage_kinds_parse(self):
        plan = parse_plan("torn-write@store.append:2,corrupt-segment@store.seal:*")
        assert [rule.kind for rule in plan.rules] == ["torn-write", "corrupt-segment"]
        assert all(rule.kind in faults.STORAGE_KINDS for rule in plan.rules)

    def test_storage_fault_needs_a_mark(self):
        faults.install_plan(parse_plan("torn-write@store.append:1"))
        # Unmarked process: nothing fires and the arrival is not counted.
        assert faults.storage_fault("store.append") == []
        faults.mark_storage("torn-write@store.append:1")
        fired = faults.storage_fault("store.append")
        assert [rule.kind for rule in fired] == ["torn-write"]

    def test_mark_storage_does_not_open_process_faults(self):
        faults.mark_storage("kill@worker.shard:1,torn-write@store.append:1")
        assert faults.is_storage() and not faults.is_worker()
        # fire() stays a no-op: mark_storage never exposes the process to
        # kill/hang/slow/drop (the coordinator must stay immune).
        faults.fire("worker.shard")  # would SIGKILL us if it applied

    def test_worker_mark_also_sees_storage_faults(self):
        faults.mark_worker("torn-write@store.append:1")
        fired = faults.storage_fault("store.append")
        assert [rule.kind for rule in fired] == ["torn-write"]

    def test_fire_skips_storage_kinds(self):
        faults.mark_worker("drop@p:2,corrupt-segment@p:1")
        faults.fire("p")  # arrival 1: only the storage rule matches; skipped
        with pytest.raises(DropConnection):
            faults.fire("p")  # arrival 2: the process rule still fires

    def test_storage_fault_counts_arrivals(self):
        faults.mark_storage("torn-write@store.append:3")
        assert faults.storage_fault("store.append") == []
        assert faults.storage_fault("store.append") == []
        assert len(faults.storage_fault("store.append")) == 1
        assert faults.storage_fault("store.append") == []

    def test_reset_clears_storage_mark(self):
        faults.mark_storage("torn-write@store.append:1")
        faults.reset()
        assert not faults.is_storage()
        assert faults.storage_fault("store.append") == []
