"""Unit tests for basic and general nodes."""

import pytest

from repro.core import BasicNode, GeneralNode, NodeError, general
from repro.simulation import ExternalReceipt, History


def node_after_steps(process="A", steps=1):
    history = History.initial(process)
    for k in range(steps):
        history = history.extend((ExternalReceipt(f"e{k}"),))
    return BasicNode(process, history)


class TestBasicNode:
    def test_initial_node(self):
        node = BasicNode.initial("A")
        assert node.is_initial
        assert node.step_count == 0
        assert node.predecessor() is None

    def test_process_history_mismatch_rejected(self):
        with pytest.raises(NodeError):
            BasicNode("A", History.initial("B"))

    def test_predecessor_chain(self):
        node = node_after_steps(steps=3)
        assert node.step_count == 3
        assert node.predecessor().step_count == 2
        assert node.predecessor().predecessor().predecessor().is_initial

    def test_timeline_prefix(self):
        node = node_after_steps(steps=2)
        prefix = node.timeline_prefix()
        assert len(prefix) == 3
        assert prefix[0].is_initial and prefix[-1] == node
        assert len(node.timeline_prefix(include_self=False)) == 2

    def test_precedes_locally(self):
        node = node_after_steps(steps=2)
        earlier = node.predecessor()
        assert earlier.precedes_locally(node)
        assert node.precedes_locally(node)
        assert not node.precedes_locally(earlier)
        assert not node.precedes_locally(node_after_steps("B", 3))

    def test_equality_and_hash(self):
        assert node_after_steps() == node_after_steps()
        assert hash(node_after_steps()) == hash(node_after_steps())
        assert node_after_steps() != node_after_steps(steps=2)

    def test_immutability(self):
        with pytest.raises(AttributeError):
            node_after_steps().process = "Z"


class TestGeneralNode:
    def test_singleton_path_is_basic(self):
        node = node_after_steps()
        theta = general(node)
        assert theta.is_basic
        assert theta.process == "A"
        assert theta.hops == 0

    def test_path_must_start_at_base_process(self):
        node = node_after_steps("A")
        with pytest.raises(NodeError):
            GeneralNode(node, ("B", "A"))

    def test_follow_extends_path(self):
        node = node_after_steps("A")
        theta = general(node, ("A", "B"))
        extended = theta.follow(("B", "C"))
        assert extended.path == ("A", "B", "C")
        assert extended.process == "C"
        with pytest.raises(NodeError):
            theta.follow(("A", "C"))

    def test_prefix_and_remaining(self):
        node = node_after_steps("A")
        theta = general(node, ("A", "B", "C"))
        assert theta.prefix(0).is_basic
        assert theta.prefix(1).path == ("A", "B")
        assert theta.remaining_path(1) == ("B", "C")
        with pytest.raises(NodeError):
            theta.prefix(5)
        with pytest.raises(NodeError):
            theta.remaining_path(-1)

    def test_equality(self):
        node = node_after_steps("A")
        assert general(node, ("A", "B")) == general(node, ("A", "B"))
        assert general(node, ("A", "B")) != general(node, ("A", "C"))

    def test_describe_mentions_path(self):
        node = node_after_steps("A")
        assert "->" in general(node, ("A", "B")).describe()
