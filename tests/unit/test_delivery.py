"""Unit tests for delivery strategies (the environment's adversaries)."""

import pytest

from repro.simulation import (
    BiasedDelivery,
    DelayTableDelivery,
    DeliveryError,
    EarliestDelivery,
    History,
    LatestDelivery,
    Message,
    ScriptedDelivery,
    SeededRandomDelivery,
    timed_network,
)


@pytest.fixture()
def net():
    return timed_network({("C", "A"): (2, 6), ("C", "B"): (3, 9)})


def message(sender="C", recipients=("A", "B")):
    return Message(sender, recipients, History.initial(sender))


class TestFixedStrategies:
    def test_earliest_uses_lower_bound(self, net):
        assert EarliestDelivery().checked_delay(message(), "A", 0, net) == 2
        assert EarliestDelivery().checked_delay(message(), "B", 0, net) == 3

    def test_latest_uses_upper_bound(self, net):
        assert LatestDelivery().checked_delay(message(), "A", 0, net) == 6
        assert LatestDelivery().checked_delay(message(), "B", 0, net) == 9


class TestSeededRandom:
    def test_within_window(self, net):
        strategy = SeededRandomDelivery(seed=5)
        for _ in range(50):
            delay = strategy.checked_delay(message(), "A", 0, net)
            assert 2 <= delay <= 6

    def test_reproducible(self, net):
        first = [SeededRandomDelivery(seed=3).delay(message(), "A", 0, net) for _ in range(1)]
        second = [SeededRandomDelivery(seed=3).delay(message(), "A", 0, net) for _ in range(1)]
        assert first == second

    def test_reset_restores_sequence(self, net):
        strategy = SeededRandomDelivery(seed=9)
        sequence = [strategy.delay(message(), "A", t, net) for t in range(5)]
        strategy.reset()
        assert [strategy.delay(message(), "A", t, net) for t in range(5)] == sequence


class TestBiasedAndScripted:
    def test_biased_overrides_channel(self, net):
        strategy = BiasedDelivery({("C", "A"): 4}, fallback=LatestDelivery())
        assert strategy.checked_delay(message(), "A", 0, net) == 4
        assert strategy.checked_delay(message(), "B", 0, net) == 9

    def test_out_of_window_choice_rejected(self, net):
        strategy = BiasedDelivery({("C", "A"): 1})
        with pytest.raises(DeliveryError):
            strategy.checked_delay(message(), "A", 0, net)

    def test_scripted_matcher(self, net):
        strategy = ScriptedDelivery().add(
            lambda msg, dest, sent: dest == "B" and sent == 5, 7
        )
        assert strategy.checked_delay(message(), "B", 5, net) == 7
        assert strategy.checked_delay(message(), "B", 6, net) == 3  # fallback earliest

    def test_delay_table(self, net):
        strategy = DelayTableDelivery({("C", "A", 2): 5})
        assert strategy.checked_delay(message(), "A", 2, net) == 5
        assert strategy.checked_delay(message(), "A", 3, net) == 2
