"""Round-trip tests for ``Run.to_dict`` / ``Run.from_dict``."""

import json

import pytest

from repro.core import basic_bounds_graph
from repro.scenarios import figure2b_scenario, flooding_scenario
from repro.simulation import Run
from repro.simulation.runs import RUN_FORMAT_VERSION, RunFormatError


def round_trip(run: Run) -> Run:
    """Serialise through actual JSON text, as the result store would."""
    return Run.from_dict(json.loads(json.dumps(run.to_dict())))


def assert_runs_equal(original: Run, rebuilt: Run) -> None:
    assert rebuilt.horizon == original.horizon
    assert rebuilt.context == original.context
    assert dict(rebuilt.timelines) == dict(original.timelines)
    assert rebuilt.sends == original.sends
    assert rebuilt.deliveries == original.deliveries
    assert rebuilt.external_deliveries == original.external_deliveries
    assert rebuilt.pending == original.pending


class TestRoundTrip:
    def test_figure1(self, figure1_run):
        rebuilt = round_trip(figure1_run)
        assert_runs_equal(figure1_run, rebuilt)
        rebuilt.validate()

    def test_figure2b_with_optimal_protocol(self):
        run = figure2b_scenario().run()
        rebuilt = round_trip(run)
        assert_runs_equal(run, rebuilt)

    def test_flooding_with_pending_messages(self):
        # A short horizon leaves messages in flight, exercising `pending`.
        run = flooding_scenario(num_processes=4, seed=3, horizon=6).run()
        rebuilt = round_trip(run)
        assert_runs_equal(run, rebuilt)

    def test_to_dict_is_canonical(self, figure1_run):
        """Encoding is deterministic and stable across a round trip."""
        once = figure1_run.to_dict()
        again = figure1_run.to_dict()
        assert once == again
        rebuilt = round_trip(figure1_run)
        assert rebuilt.to_dict() == once

    def test_tables_are_shared_not_duplicated(self):
        """The history table stays linear in the run (payload DAG is shared)."""
        run = flooding_scenario(num_processes=4, seed=1, horizon=10).run()
        data = run.to_dict()
        total_timeline_nodes = sum(len(tl) for tl in data["timelines"].values())
        assert len(data["histories"]) == total_timeline_nodes

    def test_derived_queries_survive(self, figure1_run):
        rebuilt = round_trip(figure1_run)
        assert [n.describe() for n in rebuilt.nodes()] == [
            n.describe() for n in figure1_run.nodes()
        ]
        original_actions = figure1_run.actions()
        rebuilt_actions = rebuilt.actions()
        assert rebuilt_actions == original_actions
        graph_a = basic_bounds_graph(figure1_run)
        graph_b = basic_bounds_graph(rebuilt)
        assert set(graph_a.nodes) == set(graph_b.nodes)
        assert set(graph_a.edges) == set(graph_b.edges)


class TestFormatErrors:
    def test_rejects_wrong_version(self, figure1_run):
        data = figure1_run.to_dict()
        data["format"] = RUN_FORMAT_VERSION + 1
        with pytest.raises(RunFormatError):
            Run.from_dict(data)

    def test_rejects_non_mapping(self):
        with pytest.raises(RunFormatError):
            Run.from_dict([1, 2, 3])

    def test_rejects_missing_section(self, figure1_run):
        data = figure1_run.to_dict()
        del data["send_table"]
        with pytest.raises(RunFormatError):
            Run.from_dict(data)

    def test_rejects_dangling_reference(self, figure1_run):
        data = json.loads(json.dumps(figure1_run.to_dict()))
        data["sends"] = [10_000 for _ in data["sends"]]
        with pytest.raises(RunFormatError):
            Run.from_dict(data)

    def test_rejects_negative_reference(self, figure1_run):
        """Negative ids are corruption, not Python wraparound indexing."""
        data = json.loads(json.dumps(figure1_run.to_dict()))
        data["sends"] = [-1 for _ in data["sends"]]
        with pytest.raises(RunFormatError):
            Run.from_dict(data)

    def test_rejects_cyclic_references(self, figure1_run):
        data = json.loads(json.dumps(figure1_run.to_dict()))
        # Make some message point at a history that (transitively) embeds it.
        receiving = [
            (i, entry) for i, entry in enumerate(data["histories"]) if entry[1]
        ]
        hist_id, entry = receiving[-1]
        for step in entry[1]:
            for obs in step:
                if obs[0] == "recv":
                    data["messages"][obs[1]][2] = hist_id  # cycle
                    with pytest.raises(RunFormatError):
                        Run.from_dict(data)
                    return
        pytest.skip("run has no message receipts")
