"""Unit tests for Run queries: timelines, node lookup, resolution, validation."""

import pytest

from repro.core import general
from repro.simulation import Run, RunError, RunValidationError
from repro.simulation.runs import DeliveryRecord, SendRecord


class TestTimelines:
    def test_initial_nodes_at_time_zero(self, triangle_run):
        for process in triangle_run.processes:
            time, node = triangle_run.timelines[process][0]
            assert time == 0 and node.is_initial

    def test_time_of_and_appears(self, triangle_run):
        go_node = triangle_run.external_deliveries[0].receiver_node
        assert triangle_run.appears(go_node)
        assert triangle_run.time_of(go_node) == 2
        missing = go_node.predecessor()
        assert triangle_run.appears(missing)  # the initial node of C

    def test_time_of_unknown_node_raises(self, triangle_run):
        from repro.core import BasicNode
        from repro.simulation import ExternalReceipt, History

        stranger = BasicNode("A", History.initial("A").extend((ExternalReceipt("nope"),)))
        with pytest.raises(RunError):
            triangle_run.time_of(stranger)

    def test_node_at_interpolates(self, triangle_run):
        # C is idle between t=0 and t=2, so node_at returns the initial node.
        assert triangle_run.node_at("C", 1).is_initial
        assert not triangle_run.node_at("C", 2).is_initial
        with pytest.raises(RunError):
            triangle_run.node_at("C", triangle_run.horizon + 1)

    def test_successor_and_predecessor(self, triangle_run):
        initial = triangle_run.initial_node("C")
        nxt = triangle_run.successor(initial)
        assert nxt is not None and triangle_run.predecessor(nxt) == initial
        final = triangle_run.final_node("C")
        assert triangle_run.successor(final) is None

    def test_nodes_iteration_counts(self, triangle_run):
        count = sum(len(timeline) for timeline in triangle_run.timelines.values())
        assert len(list(triangle_run.nodes())) == count
        assert len(triangle_run.nodes_of("C")) == len(triangle_run.timelines["C"])


class TestMessagesAndActions:
    def test_delivery_lookup(self, triangle_run):
        record = triangle_run.deliveries[0]
        found = triangle_run.delivery_of(record.sender_node, record.destination)
        assert found is record
        assert triangle_run.send_of(record.sender_node, record.destination) is not None

    def test_deliveries_to_and_at(self, triangle_run):
        record = triangle_run.deliveries[0]
        assert record in triangle_run.deliveries_to(record.destination)
        assert record in triangle_run.deliveries_at(record.receiver_node)

    def test_actions_reported_with_times(self, triangle_run):
        actions = {(r.process, r.action): r.time for r in triangle_run.actions()}
        assert actions[("C", "send_go")] == 2
        assert actions[("A", "a")] == 3
        assert triangle_run.find_action("A", "a").time == 3
        assert triangle_run.find_action("A", "zzz") is None
        assert triangle_run.action_time("B", "b") is None


class TestGeneralNodeResolution:
    def test_singleton_resolves_to_itself(self, triangle_run):
        node = triangle_run.final_node("B")
        assert triangle_run.resolve(general(node)) == node

    def test_chain_resolution_follows_deliveries(self, triangle_run):
        go_node = triangle_run.external_deliveries[0].receiver_node
        theta = general(go_node, ("C", "A"))
        resolved = triangle_run.resolve(theta)
        assert resolved is not None
        assert resolved.process == "A"
        assert triangle_run.time_of(resolved) == 3
        assert triangle_run.time_of_general(theta) == 3
        assert triangle_run.general_appears(theta)

    def test_unresolved_chain_returns_none(self, triangle_run):
        # The final node of A sends messages, but their deliveries lie beyond the horizon.
        last = triangle_run.final_node("A")
        theta = general(last, ("A", "B"))
        assert triangle_run.resolve(theta) is None
        with pytest.raises(RunError):
            triangle_run.time_of_general(theta)

    def test_multi_hop_resolution(self, triangle_run):
        go_node = triangle_run.external_deliveries[0].receiver_node
        theta = general(go_node, ("C", "A", "B"))
        resolved = triangle_run.resolve(theta)
        assert resolved is not None and resolved.process == "B"
        assert triangle_run.time_of(resolved) == 4


class TestValidation:
    def test_valid_run_passes(self, triangle_run):
        triangle_run.validate()

    def test_detects_bound_violation(self, triangle_run):
        bad_delivery = triangle_run.deliveries[0]
        tampered = DeliveryRecord(
            send=bad_delivery.send,
            receiver_node=bad_delivery.receiver_node,
            delivery_time=bad_delivery.send_time + 99,
        )
        broken = Run(
            context=triangle_run.context,
            horizon=triangle_run.horizon,
            timelines=triangle_run.timelines,
            sends=triangle_run.sends,
            deliveries=(tampered,) + triangle_run.deliveries[1:],
            external_deliveries=triangle_run.external_deliveries,
            pending=triangle_run.pending,
        )
        with pytest.raises(RunValidationError):
            broken.validate()

    def test_detects_overdue_pending_message(self, triangle_run):
        overdue = SendRecord(
            message=triangle_run.sends[0].message,
            sender_node=triangle_run.sends[0].sender_node,
            destination=triangle_run.sends[0].destination,
            send_time=1,
        )
        broken = Run(
            context=triangle_run.context,
            horizon=triangle_run.horizon,
            timelines=triangle_run.timelines,
            sends=triangle_run.sends,
            deliveries=triangle_run.deliveries,
            external_deliveries=triangle_run.external_deliveries,
            pending=(overdue,),
        )
        with pytest.raises(RunValidationError):
            broken.validate()
        broken.validate(require_forced_delivery=False)

    def test_describe_mentions_processes(self, triangle_run):
        text = triangle_run.describe()
        for process in triangle_run.processes:
            assert process in text
