"""Unit tests for observations, messages, and histories."""

import pytest

from repro.simulation import (
    ExternalReceipt,
    History,
    LocalAction,
    Message,
    MessageReceipt,
)


def make_message(sender="C", recipients=("A", "B"), payload=None):
    history = History.initial(sender).extend((ExternalReceipt("go"),))
    return Message(sender, recipients, history, payload)


class TestObservations:
    def test_external_receipt_equality(self):
        assert ExternalReceipt("go") == ExternalReceipt("go")
        assert ExternalReceipt("go") != ExternalReceipt("stop")
        assert hash(ExternalReceipt("go")) == hash(ExternalReceipt("go"))

    def test_local_action_equality(self):
        assert LocalAction("a") == LocalAction("a")
        assert LocalAction("a") != LocalAction("b")

    def test_observations_are_immutable(self):
        with pytest.raises(AttributeError):
            ExternalReceipt("go").tag = "other"
        with pytest.raises(AttributeError):
            LocalAction("a").name = "b"

    def test_describe(self):
        assert "go" in ExternalReceipt("go").describe()
        assert "a" in LocalAction("a").describe()


class TestMessage:
    def test_equality_and_hash(self):
        m1 = make_message()
        m2 = make_message()
        assert m1 == m2
        assert hash(m1) == hash(m2)

    def test_payload_distinguishes(self):
        assert make_message(payload="x") != make_message(payload="y")

    def test_recipients_header_preserved(self):
        message = make_message(recipients=("A", "B", "D"))
        assert message.recipients == ("A", "B", "D")

    def test_immutable(self):
        with pytest.raises(AttributeError):
            make_message().payload = "boom"

    def test_receipt_wraps_message(self):
        message = make_message()
        receipt = MessageReceipt(message)
        assert receipt.sender == "C"
        assert receipt == MessageReceipt(message)


class TestHistory:
    def test_initial_history(self):
        history = History.initial("A")
        assert history.is_initial
        assert len(history) == 0
        assert history.predecessor() is None

    def test_extend_creates_steps(self):
        history = History.initial("A").extend((ExternalReceipt("go"), LocalAction("a")))
        assert len(history) == 1
        assert len(history.last_step) == 2
        assert not history.is_initial

    def test_extend_rejects_empty_step(self):
        with pytest.raises(ValueError):
            History.initial("A").extend(())

    def test_steps_must_be_nonempty(self):
        with pytest.raises(ValueError):
            History("A", ((),))

    def test_predecessor_drops_one_step(self):
        h0 = History.initial("A")
        h1 = h0.extend((ExternalReceipt("go"),))
        h2 = h1.extend((LocalAction("a"),))
        assert h2.predecessor() == h1
        assert h1.predecessor() == h0

    def test_prefixes_order(self):
        h = History.initial("A").extend((ExternalReceipt("x"),)).extend((LocalAction("a"),))
        prefixes = list(h.prefixes())
        assert len(prefixes) == 3
        assert prefixes[0].is_initial
        assert prefixes[-1] == h
        assert len(list(h.prefixes(include_self=False))) == 2

    def test_is_prefix_of(self):
        h1 = History.initial("A").extend((ExternalReceipt("x"),))
        h2 = h1.extend((LocalAction("a"),))
        assert h1.is_prefix_of(h2)
        assert h2.is_prefix_of(h2)
        assert not h2.is_prefix_of(h1)
        assert not h1.is_prefix_of(History.initial("B").extend((ExternalReceipt("x"),)))

    def test_query_helpers(self):
        message = make_message()
        h = (
            History.initial("A")
            .extend((ExternalReceipt("go"),))
            .extend((MessageReceipt(message), LocalAction("a")))
        )
        assert h.has_external("go")
        assert not h.has_external("stop")
        assert h.has_action("a")
        assert not h.has_action("b")
        assert len(list(h.receipts())) == 1
        assert len(list(h.observations())) == 3

    def test_equality_and_hash(self):
        h1 = History.initial("A").extend((ExternalReceipt("go"),))
        h2 = History.initial("A").extend((ExternalReceipt("go"),))
        assert h1 == h2 and hash(h1) == hash(h2)
        assert h1 != History.initial("B").extend((ExternalReceipt("go"),))

    def test_immutable(self):
        with pytest.raises(AttributeError):
            History.initial("A").process = "B"
