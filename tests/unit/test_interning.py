"""Unit tests for the hash-consing layer (repro.simulation.interning)."""

import time

import pytest

from repro.core.causality import (
    boundary_nodes,
    happens_before,
    in_past,
    local_delivery_map,
    past_nodes,
)
from repro.core.nodes import BasicNode
from repro.scenarios import get_scenario
from repro.simulation import (
    ExternalReceipt,
    History,
    InternPool,
    LocalAction,
    Message,
    MessageReceipt,
    current_pool,
    intern_pool,
)


class TestValueInterning:
    def test_observations_are_interned(self):
        assert ExternalReceipt("go") is ExternalReceipt("go")
        assert LocalAction("a") is LocalAction("a")
        assert ExternalReceipt("go") is not ExternalReceipt("stop")

    def test_histories_are_interned_chains(self):
        h0 = History.initial("A")
        h1 = h0.extend((ExternalReceipt("go"),))
        h2 = h1.extend((LocalAction("a"),))
        assert History.initial("A") is h0
        assert h0.extend((ExternalReceipt("go"),)) is h1
        assert h2.parent is h1 and h1.parent is h0
        assert h2.predecessor() is h1

    def test_structural_constructor_canonicalises(self):
        h2 = History.initial("A").extend((ExternalReceipt("go"),)).extend(
            (LocalAction("a"),)
        )
        assert History("A", h2.steps) is h2
        assert list(h2.prefixes()) == [h2.parent.parent, h2.parent, h2]

    def test_messages_nodes_receipts_are_interned(self):
        history = History.initial("A").extend((ExternalReceipt("go"),))
        message = Message("A", ("B",), history)
        assert Message("A", ("B",), history) is message
        assert MessageReceipt(message) is MessageReceipt(message)
        node = BasicNode("A", history)
        assert BasicNode.from_history(history) is node
        assert node.uid >= 0
        assert current_pool().node_by_uid[node.uid] is node

    def test_equal_interned_values_share_hash(self):
        h1 = History.initial("A").extend((ExternalReceipt("go"),))
        h2 = History("A", h1.steps)
        assert h1 == h2 and hash(h1) == hash(h2) and h1 is h2


class TestPoolScoping:
    def test_intern_pool_swaps_and_restores(self):
        outer = current_pool()
        with intern_pool() as scoped:
            assert current_pool() is scoped
            assert current_pool() is not outer
        assert current_pool() is outer

    def test_cross_pool_values_compare_structurally(self):
        outer_history = History.initial("A").extend((ExternalReceipt("go"),))
        outer_message = Message("A", ("B",), outer_history)
        outer_node = BasicNode("A", outer_history)
        with intern_pool():
            inner_history = History.initial("A").extend((ExternalReceipt("go"),))
            inner_message = Message("A", ("B",), inner_history)
            inner_node = BasicNode("A", inner_history)
            assert inner_history is not outer_history
            # The guarded structural fallback keeps equality (and hashing)
            # exact across pools.
            assert inner_history == outer_history
            assert hash(inner_history) == hash(outer_history)
            assert inner_message == outer_message
            assert inner_node == outer_node
            assert outer_history.is_prefix_of(inner_history)

    def test_cross_pool_equality_survives_deep_relay_nesting(self):
        """Canonicalisation is iterative: deep relay chains must not blow the
        interpreter recursion limit (each hop embeds the previous history)."""

        def relay(depth):
            history = History.initial("p0").extend((ExternalReceipt("go"),))
            for k in range(1, depth):
                message = Message(f"p{k-1}", (f"p{k}",), history)
                history = History.initial(f"p{k}").extend((MessageReceipt(message),))
            return history

        with intern_pool():
            deep_a = relay(400)
        deep_b = relay(400)
        assert deep_a == deep_b
        with intern_pool():
            deeper = relay(401)
        assert deeper != deep_b

    def test_pool_clear_keeps_existing_values_valid(self):
        pool = InternPool()
        with intern_pool(pool):
            before = History.initial("A").extend((ExternalReceipt("go"),))
            pool.clear()
            after = History.initial("A").extend((ExternalReceipt("go"),))
            assert before is not after
            assert before == after

    def test_stats_count_interned_values(self):
        with intern_pool() as pool:
            History.initial("A").extend((ExternalReceipt("go"),))
            stats = pool.stats()
            assert stats["history_initials"] == 1
            assert stats["history_children"] == 1
            assert stats["externals"] == 1


class TestCausalityCaches:
    def _run(self):
        return get_scenario("torus-flood").build(horizon=10).run()

    def test_past_nodes_memoized(self):
        with intern_pool():
            run = self._run()
            sigma = run.final_node(run.processes[0])
            first = past_nodes(sigma)
            assert past_nodes(sigma) is first
            assert sigma in first

    def test_in_past_matches_membership(self):
        with intern_pool():
            run = self._run()
            sigma = run.final_node(run.processes[0])
            past = past_nodes(sigma)
            for node in list(run.nodes())[:50]:
                assert in_past(node, sigma) == (node in past)
                assert happens_before(node, sigma) == (node in past)

    def test_boundary_and_delivery_copies_are_safe(self):
        with intern_pool():
            run = self._run()
            sigma = run.final_node(run.processes[0])
            boundary = boundary_nodes(sigma)
            boundary.clear()  # mutating the returned copy ...
            assert boundary_nodes(sigma)  # ... must not poison the cache
            delivered = local_delivery_map(sigma)
            delivered.clear()
            assert local_delivery_map(sigma)

    def test_cross_pool_past_queries(self):
        with intern_pool():
            run = self._run()
            sigma = run.final_node(run.processes[0])
            inner_past = past_nodes(sigma)
        # sigma was interned in the (now dropped) inner pool; querying from
        # the outer pool re-canonicalises and stays exact.
        outer_past = past_nodes(sigma)
        assert outer_past == inner_past


class TestRunEquality:
    def test_run_equality_is_semantic(self):
        scenario = get_scenario("grid-flood")
        run_a = scenario.build(rows=2, cols=2, horizon=8).run()
        run_b = scenario.build(rows=2, cols=2, horizon=8).run()
        # Materialise a lazy index on one side only: the old dataclass
        # equality compared those caches too and would report a difference.
        run_a.time_of(run_a.final_node(run_a.processes[0]))
        assert run_a == run_b
        run_c = scenario.build(rows=2, cols=2, horizon=9).run()
        assert run_a != run_c
        assert run_a != "not a run"

    def test_runs_stay_unhashable(self):
        run = get_scenario("tree-flood").build(horizon=6).run()
        with pytest.raises(TypeError):
            hash(run)

    def test_torus_flood_equality_well_under_a_second(self):
        """Regression: deep-structural Run == used to take seconds."""
        scenario = get_scenario("torus-flood")
        run_a = scenario.build().run()
        run_b = scenario.build().run()
        started = time.perf_counter()
        assert run_a == run_b
        elapsed = time.perf_counter() - started
        assert elapsed < 0.5, f"torus-flood Run == took {elapsed:.3f}s"

    def test_cross_pool_equality_well_under_a_second(self):
        """Regression: cross-pool Run == canonicalises instead of re-walking.

        The guarded structural fallback must not degenerate into the
        exponential pairwise DAG walk -- runs returned by ``execute_cell``
        live past their scoped pool and still get compared.
        """
        scenario = get_scenario("torus-flood")
        with intern_pool():
            run_a = scenario.build(horizon=14).run()
        run_b = scenario.build(horizon=14).run()
        started = time.perf_counter()
        assert run_a == run_b
        assert run_a == run_b  # repeat hits the canonicalisation memo
        elapsed = time.perf_counter() - started
        assert elapsed < 0.5, f"cross-pool Run == took {elapsed:.3f}s"
