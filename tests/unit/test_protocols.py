"""Unit tests for protocols, rules, and protocol assignments."""

import pytest

from repro.simulation import (
    ExternalReceipt,
    FloodingFullInformationProtocol,
    FunctionRule,
    GO_TRIGGER,
    History,
    Message,
    MessageReceipt,
    PerformOnceRule,
    ProtocolAssignment,
    RuleBasedProtocol,
    SilentProtocol,
    StepContext,
    StepDecision,
    actor_protocol,
    fully_connected,
    go_sender_protocol,
)
from repro.simulation.protocols import go_seen_in_message_from, received_go_trigger


@pytest.fixture()
def net():
    return fully_connected(["A", "B", "C"], 1, 2)


def make_ctx(net, process="C", previous=None, observations=()):
    previous = previous if previous is not None else History.initial(process)
    return StepContext(
        process=process,
        previous_history=previous,
        observations=tuple(observations),
        timed_network=net,
    )


class TestStepDecision:
    def test_flood_and_silent_constructors(self):
        flood = StepDecision.flood(["a"])
        assert flood.send_to is None and flood.actions == ("a",)
        silent = StepDecision.silent()
        assert silent.send_to == ()


class TestBuiltinProtocols:
    def test_ffip_floods(self, net):
        decision = FloodingFullInformationProtocol().on_step(make_ctx(net))
        assert decision.send_to is None and decision.actions == ()

    def test_silent_protocol(self, net):
        decision = SilentProtocol().on_step(make_ctx(net))
        assert decision.send_to == ()


class TestRules:
    def test_perform_once_rule_fires_once(self, net):
        from repro.simulation import LocalAction

        rule = PerformOnceRule("a", lambda ctx: True)
        ctx = make_ctx(net, "A", observations=(ExternalReceipt("x"),))
        assert rule.actions(ctx) == ("a",)
        # Once the action is already in the history, the rule stays quiet.
        done_with_action = History.initial("A").extend((LocalAction("a"),))
        ctx_done = make_ctx(
            net, "A", previous=done_with_action, observations=(ExternalReceipt("z"),)
        )
        assert rule.actions(ctx_done) == ()

    def test_function_rule(self, net):
        rule = FunctionRule(lambda ctx: ["ping"], name="ping")
        assert rule.actions(make_ctx(net)) == ("ping",)
        assert "ping" in repr(rule)

    def test_rule_based_protocol_combines_rules(self, net):
        protocol = RuleBasedProtocol(
            [FunctionRule(lambda ctx: ["x"]), FunctionRule(lambda ctx: ["y"])]
        )
        decision = protocol.on_step(make_ctx(net))
        assert decision.actions == ("x", "y")
        assert decision.send_to is None

    def test_rule_based_protocol_silent_mode(self, net):
        protocol = RuleBasedProtocol([], flood=False)
        assert protocol.on_step(make_ctx(net)).send_to == ()


class TestRoleHelpers:
    def test_received_go_trigger(self, net):
        ctx = make_ctx(net, "C", observations=(ExternalReceipt(GO_TRIGGER),))
        assert received_go_trigger(ctx)
        assert not received_go_trigger(make_ctx(net, "C"))

    def test_go_seen_in_message_from(self, net):
        sender_history = History.initial("C").extend((ExternalReceipt(GO_TRIGGER),))
        message = Message("C", ("A",), sender_history)
        ctx = make_ctx(net, "A", observations=(MessageReceipt(message),))
        assert go_seen_in_message_from(ctx, "C")
        assert not go_seen_in_message_from(ctx, "B")

    def test_go_sender_protocol_marks_action(self, net):
        protocol = go_sender_protocol()
        decision = protocol.on_step(make_ctx(net, "C", observations=(ExternalReceipt(GO_TRIGGER),)))
        assert decision.actions == ("send_go",)

    def test_actor_protocol_acts_on_go_message(self, net):
        protocol = actor_protocol("a", "C")
        sender_history = History.initial("C").extend((ExternalReceipt(GO_TRIGGER),))
        message = Message("C", ("A",), sender_history)
        decision = protocol.on_step(make_ctx(net, "A", observations=(MessageReceipt(message),)))
        assert decision.actions == ("a",)
        # A message from C that has not seen the trigger does not trigger `a`.
        quiet = Message("C", ("A",), History.initial("C").extend((ExternalReceipt("noise"),)))
        decision = protocol.on_step(make_ctx(net, "A", observations=(MessageReceipt(quiet),)))
        assert decision.actions == ()


class TestProtocolAssignment:
    def test_default_is_ffip(self):
        assignment = ProtocolAssignment()
        assert isinstance(assignment.for_process("anyone"), FloodingFullInformationProtocol)

    def test_assign_overrides(self):
        assignment = ProtocolAssignment()
        silent = SilentProtocol()
        assignment.assign("B", silent)
        assert assignment.for_process("B") is silent
        assert assignment.for_process("A") is not silent
