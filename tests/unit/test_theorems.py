"""Unit tests for the theorem checkers."""

import pytest

from repro.core import (
    KnowledgeChecker,
    TwoLeggedFork,
    ZigzagPattern,
    check_theorem1,
    check_theorem2,
    check_theorem3,
    check_theorem4,
    check_theorem4_batch,
    general,
    supported_margin,
)
from repro.scenarios import figure2a_scenario, figure2b_scenario


class TestTheorem1Checker:
    def test_valid_pattern_report(self, figure2a_run):
        run = figure2a_run
        externals = {r.process: r.receiver_node for r in run.external_deliveries}
        pattern = ZigzagPattern(
            (
                TwoLeggedFork(general(externals["C"]), ("C", "D"), ("C", "A")),
                TwoLeggedFork(general(externals["E"]), ("E", "B"), ("E", "D")),
            )
        )
        report = check_theorem1(run, pattern)
        assert report.valid_pattern
        assert report.holds
        assert report.observed_gap >= report.weight

    def test_invalid_pattern_is_vacuous(self, figure2a_run):
        run = figure2a_run
        externals = {r.process: r.receiver_node for r in run.external_deliveries}
        bad = ZigzagPattern(
            (
                TwoLeggedFork(general(externals["E"]), ("E", "D"), ("E", "B")),
                TwoLeggedFork(general(externals["C"]), ("C", "A"), ("C", "D")),
            )
        )
        report = check_theorem1(run, bad)
        assert not report.valid_pattern
        assert report.holds  # vacuously
        assert report.weight is None


class TestTheorem2Checker:
    def test_witness_between_action_nodes(self, figure2a_run):
        run = figure2a_run
        a_node = run.find_action("A", "a").node
        b_node = run.find_action("B", "b").node
        report = check_theorem2(run, a_node, b_node)
        assert report.has_constraint
        assert report.zigzag_weight == report.constraint_weight
        assert report.tight
        assert report.witnesses(report.constraint_weight)
        assert not report.witnesses(report.constraint_weight + 1)

    def test_no_constraint_case(self, figure2a_run):
        run = figure2a_run
        a_node = run.find_action("A", "a").node
        b_node = run.find_action("B", "b").node
        report = check_theorem2(run, b_node, a_node)
        assert not report.has_constraint
        assert not report.tight
        assert report.zigzag is None

    def test_supported_margin_single_run(self, figure2a_run):
        run = figure2a_run
        a_node = run.find_action("A", "a").node
        b_node = run.find_action("B", "b").node
        margin = supported_margin([run], a_node, b_node)
        assert margin == run.time_of(b_node) - run.time_of(a_node)

    def test_supported_margin_none_when_node_missing(self, figure2a_run, triangle_run):
        a_node = figure2a_run.find_action("A", "a").node
        b_node = figure2a_run.find_action("B", "b").node
        # The triangle run contains neither node -> ignored; a run with only one
        # of the two would make it unsupported.  Here we fabricate that case by
        # using the go node (which also appears in figure2b runs).
        go_node = figure2a_run.external_deliveries[0].receiver_node
        other = figure2b_scenario().run()
        assert supported_margin([figure2a_run, other], go_node, b_node) is None


class TestTheorem3Checker:
    def test_optimal_protocol_satisfies_theorem3(self):
        scenario = figure2b_scenario(margin=5)
        run = scenario.run()
        report = check_theorem3(
            run,
            actor="B",
            action="b",
            go_sender="C",
            go_recipient="A",
            margin=5,
            late=True,
        )
        assert report.acted
        assert report.holds
        assert report.go_in_past
        assert report.knowledge_holds

    def test_vacuous_when_b_never_acts(self):
        scenario = figure2b_scenario(margin=10_000)
        run = scenario.run()
        report = check_theorem3(
            run, actor="B", action="b", go_sender="C", go_recipient="A", margin=10_000, late=True
        )
        assert not report.acted
        assert report.holds

    def test_naive_rule_can_violate_knowledge_condition(self):
        # Figure 2a's naive B (act upon hearing E) does not know the precedence
        # for margins larger than what the invisible zigzag supports.
        scenario = figure2a_scenario()
        run = scenario.run()
        report = check_theorem3(
            run, actor="B", action="b", go_sender="C", go_recipient="A", margin=10_000, late=True
        )
        assert report.acted
        assert not report.holds


class TestTheorem4Checker:
    def test_sound_and_complete_against_singleton(self, triangle_run):
        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        theta_a = general(go_node, ("C", "A"))
        report = check_theorem4(
            sigma, theta_a, general(sigma), triangle_run.timed_network, [triangle_run]
        )
        # Against a single run the empirical minimum can only over-estimate, so
        # soundness must hold and the known gap is at most the observed one.
        assert report.sound
        assert report.known_gap is not None
        assert report.known_gap <= report.empirical_gap

    def test_reused_checker_matches_fresh_checker(self, triangle_run):
        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        theta_a = general(go_node, ("C", "A"))
        net = triangle_run.timed_network
        checker = KnowledgeChecker(sigma, net)
        fresh = check_theorem4(sigma, theta_a, general(sigma), net, [triangle_run])
        reused = check_theorem4(
            sigma, theta_a, general(sigma), net, [triangle_run], checker=checker
        )
        assert reused == fresh

    def test_mismatched_checker_is_rejected(self, triangle_run):
        from repro.simulation import fully_connected

        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        net = triangle_run.timed_network
        wrong_sigma = KnowledgeChecker(triangle_run.final_node("A"), net)
        with pytest.raises(ValueError):
            check_theorem4(
                sigma, go_node, sigma, net, [triangle_run], checker=wrong_sigma
            )
        other_net = fully_connected(["A", "B", "C"], 1, 4)
        wrong_net = KnowledgeChecker(sigma, other_net)
        with pytest.raises(ValueError):
            check_theorem4(
                sigma, go_node, sigma, net, [triangle_run], checker=wrong_net
            )

    def test_batch_matches_per_pair_reports(self, triangle_run):
        sigma = triangle_run.final_node("B")
        go_node = triangle_run.external_deliveries[0].receiver_node
        theta_a = general(go_node, ("C", "A"))
        net = triangle_run.timed_network
        pairs = [
            (theta_a, general(sigma)),
            (general(sigma), theta_a),
            (general(go_node), general(sigma)),
        ]
        batch = check_theorem4_batch(sigma, pairs, net, [triangle_run])
        assert batch == tuple(
            check_theorem4(sigma, theta1, theta2, net, [triangle_run])
            for theta1, theta2 in pairs
        )
        assert all(report.sound for report in batch)

    def test_report_properties_with_missing_data(self):
        from repro.core.theorems import Theorem4Report

        assert Theorem4Report(known_gap=None, empirical_gap=None).exact
        assert Theorem4Report(known_gap=None, empirical_gap=5).sound
        assert not Theorem4Report(known_gap=None, empirical_gap=5).complete
        assert not Theorem4Report(known_gap=6, empirical_gap=5).sound
        assert Theorem4Report(known_gap=5, empirical_gap=5).exact
