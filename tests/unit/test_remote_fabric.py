"""Unit tests for the distributed fabric's scheduler and wire format.

The :class:`FabricScheduler` is a pure state machine over an injected
clock, so every liveness scenario — missed heartbeats, expired leases,
backoff, shard splitting, quarantine, duplicate delivery — is tested here
deterministically, without sockets or sleeps.
"""

import pytest

from repro.experiments import SweepError, expand_grid, make_cell
from repro.experiments.remote import (
    FabricScheduler,
    cell_from_wire,
    cell_to_wire,
)


def _pending(count=4):
    cells = expand_grid(
        ["line-flood"],
        adversaries=["earliest", "latest"],
        seeds=[0, 1],
        param_grid={"horizon": [4]},
    )
    return list(enumerate(cells[:count]))


def _scheduler(pending=None, **overrides):
    settings = dict(
        workers_hint=2,
        shard_size=1,
        lease_base_s=10.0,
        lease_cell_s=5.0,
        heartbeat_timeout_s=5.0,
        max_cell_failures=3,
        backoff_base_s=1.0,
        backoff_max_s=8.0,
    )
    settings.update(overrides)
    return FabricScheduler(pending if pending is not None else _pending(), **settings)


def _indices(assignment):
    return [entry["index"] for entry in assignment["cells"]]


def _complete(scheduler, worker, assignment, now):
    results = [
        (entry["index"], {"status": "ok", "index": entry["index"]})
        for entry in assignment["cells"]
    ]
    return scheduler.complete(worker, assignment["lease"], results, now)


class TestWireFormat:
    def test_cell_round_trip_preserves_key(self):
        cell = make_cell(
            "line-flood",
            overrides={"num_processes": 4},
            adversary="latest",
            seed=7,
            horizon=5,
        )
        decoded = cell_from_wire(cell_to_wire(cell))
        assert decoded == cell
        assert decoded.key() == cell.key()

    def test_wire_form_is_json_native(self):
        import json

        wire = cell_to_wire(make_cell("line-flood"))
        assert json.loads(json.dumps(wire)) == wire


class TestHappyPath:
    def test_assign_complete_finish(self):
        scheduler = _scheduler()
        seen = []
        now = 0.0
        while not scheduler.finished:
            assignment = scheduler.try_assign("w0", now)
            assert assignment is not None
            fresh = _complete(scheduler, "w0", assignment, now + 1)
            seen.extend(index for index, _, _ in fresh)
            now += 2
        assert sorted(seen) == [0, 1, 2, 3]
        assert scheduler.outstanding == 0

    def test_lease_deadline_scales_with_shard_size(self):
        pending = _pending()
        scheduler = _scheduler(pending, shard_size=4)
        assignment = scheduler.try_assign("w0", 0.0)
        assert len(assignment["cells"]) == 4
        assert assignment["deadline_s"] == pytest.approx(10.0 + 5.0 * 4)

    def test_no_ready_shard_returns_none(self):
        scheduler = _scheduler(_pending(1))
        assert scheduler.try_assign("w0", 0.0) is not None
        assert scheduler.try_assign("w1", 0.0) is None  # everything leased

    def test_duplicate_results_are_dropped(self):
        scheduler = _scheduler()
        assignment = scheduler.try_assign("w0", 0.0)
        first = _complete(scheduler, "w0", assignment, 1.0)
        assert len(first) == 1
        again = scheduler.complete(
            "w1", None, [(first[0][0], {"status": "ok"})], 2.0
        )
        assert again == []
        assert scheduler.counts["duplicates_dropped"] == 1


class TestLiveness:
    def test_missed_heartbeats_requeue_the_shard(self):
        scheduler = _scheduler(_pending(1))
        assignment = scheduler.try_assign("w0", 0.0)
        assert scheduler.live_workers(0.0) == 1
        assert scheduler.expire(4.0) == []  # within heartbeat budget
        assert scheduler.expire(6.0) == []  # dead, but nothing quarantined yet
        assert scheduler.live_workers(6.0) == 0
        assert scheduler.counts["workers_dead"] == 1
        # The shard returns to the queue with backoff; another worker takes it.
        later = 6.0 + 1.0
        retry = scheduler.try_assign("w1", later)
        assert retry is not None
        assert _indices(retry) == _indices(assignment)

    def test_heartbeat_keeps_worker_alive(self):
        scheduler = _scheduler()
        scheduler.try_assign("w0", 0.0)
        scheduler.heartbeat("w0", 4.0)
        scheduler.expire(8.0)  # last_seen 4.0, timeout 5 -> still alive
        assert scheduler.live_workers(8.0) == 1

    def test_expired_lease_requeues_even_with_heartbeats(self):
        scheduler = _scheduler(_pending(1))
        assignment = scheduler.try_assign("w0", 0.0)
        deadline = assignment["deadline_s"]
        scheduler.heartbeat("w0", deadline)  # alive but wedged
        scheduler.expire(deadline + 0.1)
        assert scheduler.counts["leases_expired"] == 1
        assert scheduler.live_workers(deadline + 0.1) == 1
        retry = scheduler.try_assign("w1", deadline + 2.0)
        assert _indices(retry) == _indices(assignment)

    def test_backoff_grows_exponentially(self):
        scheduler = _scheduler(_pending(1), backoff_base_s=1.0, backoff_max_s=100.0)
        now = 0.0
        for expected_backoff in (1.0, 2.0, 4.0):
            assignment = scheduler.try_assign("w-fresh", now)
            assert assignment is not None
            scheduler.expire(now + assignment["deadline_s"] + 0.1)
            now += assignment["deadline_s"] + 0.1
            # Not ready before the backoff elapses, ready after.
            assert scheduler.try_assign("other", now + expected_backoff - 0.5) is None
            now += expected_backoff
        # max_cell_failures=3 reached on the third expiry: quarantined.

    def test_failed_worker_avoided_when_alternatives_exist(self):
        scheduler = _scheduler(_pending(2), max_cell_failures=5)
        assignment = scheduler.try_assign("w0", 0.0)
        scheduler.expire(assignment["deadline_s"] + 0.1)  # w0 dead, shard requeued
        later = assignment["deadline_s"] + 5.0
        # w0 rejoins; it gets the *other* shard first, not the one it failed.
        retry = scheduler.try_assign("w0", later)
        assert _indices(retry) != _indices(assignment)

    def test_sole_surviving_worker_gets_its_own_failed_shard(self):
        scheduler = _scheduler(_pending(1), max_cell_failures=5)
        assignment = scheduler.try_assign("w0", 0.0)
        scheduler.expire(assignment["deadline_s"] + 0.1)
        later = assignment["deadline_s"] + 10.0
        retry = scheduler.try_assign("w0", later)
        assert retry is not None
        assert _indices(retry) == _indices(assignment)

    def test_disconnect_generation_guard(self):
        scheduler = _scheduler()
        first_gen = scheduler.hello("w0", 0.0)
        second_gen = scheduler.hello("w0", 1.0)  # reconnect: new generation
        # The stale connection's teardown must not kill the live session.
        assert scheduler.disconnect("w0", first_gen, 2.0) == []
        assert scheduler.live_workers(2.0) == 1
        scheduler.disconnect("w0", second_gen, 3.0)
        assert scheduler.live_workers(3.0) == 0


class TestFailureEscalation:
    def test_shard_splits_after_two_failures(self):
        pending = _pending(4)
        scheduler = _scheduler(pending, shard_size=4, lease_base_s=1.0, lease_cell_s=0.0)
        now = 0.0
        for _ in range(2):
            assignment = scheduler.try_assign(f"w{now}", now)
            assert assignment is not None
            scheduler.expire(now + 1.1)
            now += 20.0  # past any backoff
        # After two whole-shard failures the queue holds single-cell shards.
        sizes = []
        while True:
            assignment = scheduler.try_assign("fresh", now)
            if assignment is None:
                break
            sizes.append(len(assignment["cells"]))
        assert sizes == [1, 1, 1, 1]

    def test_quarantine_after_distinct_worker_failures(self):
        scheduler = _scheduler(_pending(1), max_cell_failures=2, backoff_base_s=0.0)
        now = 0.0
        assignment = scheduler.try_assign("w0", now)
        assert scheduler.expire(now + assignment["deadline_s"] + 0.1) == []
        now += 100.0
        assignment = scheduler.try_assign("w1", now)
        quarantined = scheduler.expire(now + assignment["deadline_s"] + 0.1)
        assert len(quarantined) == 1
        index, cell, distinct = quarantined[0]
        assert index == 0
        assert distinct == 2
        assert scheduler.finished  # quarantine resolves the sweep
        # A late result for a quarantined cell is dropped, not double-handled.
        late = scheduler.complete("w0", None, [(0, {"status": "ok"})], now + 200.0)
        assert late == []

    def test_same_worker_failures_do_not_quarantine(self):
        scheduler = _scheduler(_pending(1), max_cell_failures=2, backoff_base_s=0.0)
        now = 0.0
        for _ in range(4):
            assignment = scheduler.try_assign("w0", now)
            assert assignment is not None
            assert scheduler.expire(now + assignment["deadline_s"] + 0.1) == []
            now += 100.0
        assert not scheduler.finished  # one distinct worker: retried forever


class TestLocalFallback:
    def test_take_local_drains_the_queue(self):
        scheduler = _scheduler(_pending(2))
        taken = []
        while True:
            shard = scheduler.take_local(0.0)
            if shard is None:
                break
            taken.extend(shard)
        assert sorted(index for index, _ in taken) == [0, 1]
        fresh = scheduler.record_local(
            [(index, cell, {"status": "ok"}) for index, cell in taken]
        )
        assert len(fresh) == 2
        assert scheduler.finished
        assert scheduler.counts["local_fallback_cells"] == 2

    def test_take_local_ignores_backoff(self):
        scheduler = _scheduler(_pending(1))
        assignment = scheduler.try_assign("w0", 0.0)
        scheduler.expire(assignment["deadline_s"] + 0.1)  # requeued with backoff
        shard = scheduler.take_local(assignment["deadline_s"] + 0.2)
        assert shard is not None  # backoff does not apply to inline execution


class TestValidationAndSummary:
    def test_bad_settings_raise(self):
        with pytest.raises(SweepError):
            _scheduler(lease_base_s=0.0)
        with pytest.raises(SweepError):
            _scheduler(heartbeat_timeout_s=0.0)
        with pytest.raises(SweepError):
            _scheduler(max_cell_failures=0)

    def test_summary_shape(self):
        scheduler = _scheduler()
        assignment = scheduler.try_assign("w0", 0.0)
        _complete(scheduler, "w0", assignment, 1.0)
        summary = scheduler.summary()
        assert summary["backend"] == "remote"
        assert summary["cells"] == 4
        assert summary["completed"] == 1
        assert summary["workers"]["w0"]["completed_cells"] == 1
        assert summary["counters"]["leases_granted"] == 1
        assert any(event["event"] == "worker-joined" for event in summary["events"])
