"""Unit tests for the batched longest-path engine's own API surface."""

import pytest

from repro.core import LongestPathEngine, PositiveCycleError, WeightedGraph


def diamond():
    graph = WeightedGraph()
    graph.add_edge("a", "b", 2)
    graph.add_edge("a", "c", 1)
    graph.add_edge("b", "d", 3)
    graph.add_edge("c", "d", 10)
    graph.add_node("island")
    return graph


class TestQueries:
    def test_weight_and_row(self):
        graph = diamond()
        engine = graph.engine
        assert engine.weight("a", "d") == 11
        row = engine.row("a")
        assert row["d"] == 11 and row["b"] == 2
        assert row["island"] == float("-inf")
        assert engine.weight("a", "island") is None

    def test_unknown_nodes_raise_keyerror(self):
        engine = diamond().engine
        with pytest.raises(KeyError):
            engine.weight("nope", "a")
        with pytest.raises(KeyError):
            engine.weight("a", "nope")
        with pytest.raises(KeyError):
            engine.row("nope")

    def test_reachable_from(self):
        graph = diamond()
        assert graph.engine.reachable_from("b") == frozenset({"b", "d"})
        assert graph.engine.reachable_from("island") == frozenset({"island"})

    def test_graph_engine_is_cached(self):
        graph = diamond()
        assert graph.engine is graph.engine
        assert isinstance(graph.engine, LongestPathEngine)


class TestBatchAndMemoization:
    def test_all_pairs_is_idempotent(self):
        graph = diamond()
        engine = graph.engine
        assert engine.all_pairs() == 5
        assert engine.cached_row_count == 5
        assert engine.all_pairs() == 0

    def test_repeated_queries_hit_the_row_cache(self):
        graph = diamond()
        engine = graph.engine
        for _ in range(10):
            assert engine.weight("a", "d") == 11
        assert engine.stats.rows_computed == 1
        assert engine.stats.row_cache_hits == 9
        assert engine.stats.queries == 10

    def test_growth_extends_cached_rows(self):
        graph = diamond()
        engine = graph.engine
        assert engine.weight("a", "d") == 11
        graph.add_edge("d", "e", 4)
        assert engine.weight("a", "e") == 15
        assert engine.stats.rows_computed == 1
        assert engine.stats.rows_extended == 1
        assert engine.stats.syncs == 2

    def test_stats_as_dict_round_trip(self):
        engine = diamond().engine
        engine.weight("a", "d")
        stats = engine.stats.as_dict()
        assert stats["rows_computed"] == 1
        assert set(stats) == {
            "rows_computed",
            "rows_extended",
            "row_cache_hits",
            "syncs",
            "queries",
            "overlay_rows_computed",
            "overlay_row_cache_hits",
            "overlay_installs",
        }


class TestCycles:
    def test_zero_weight_cycles_are_fine(self):
        graph = WeightedGraph()
        graph.add_edge("a", "b", 2)
        graph.add_edge("b", "a", -2)
        graph.add_edge("b", "c", 1)
        engine = graph.engine
        assert not engine.has_positive_cycle()
        assert engine.weight("a", "c") == 3
        assert engine.weight("a", "a") == 0

    def test_positive_cycle_raises_only_when_reachable(self):
        graph = WeightedGraph()
        graph.add_edge("a", "b", 1)
        graph.add_edge("cycle1", "cycle2", 2)
        graph.add_edge("cycle2", "cycle1", -1)
        engine = graph.engine
        assert engine.has_positive_cycle()
        # The cycle is unreachable from "a", so querying from "a" succeeds.
        assert engine.weight("a", "b") == 1
        with pytest.raises(PositiveCycleError):
            engine.row("cycle1")

    def test_growth_creating_a_cycle_invalidates_only_affected_rows(self):
        graph = WeightedGraph()
        graph.add_edge("a", "b", 1)
        graph.add_edge("x", "y", 2)
        engine = graph.engine
        assert engine.weight("a", "b") == 1
        assert engine.weight("x", "y") == 2
        graph.add_edge("y", "x", -1)  # closes the cycle x->y->x of weight +1
        with pytest.raises(PositiveCycleError):
            engine.weight("x", "y")
        # Rows whose source cannot reach the new cycle keep working.
        assert engine.weight("a", "b") == 1
        assert engine.has_positive_cycle()

    def test_component_count_and_describe(self):
        graph = WeightedGraph()
        graph.add_edge("a", "b", 2)
        graph.add_edge("b", "a", -2)
        graph.add_edge("b", "c", 1)
        engine = graph.engine
        assert engine.component_count() == 2
        assert "nodes=3" in engine.describe()
