"""Unit tests for the discrete-event engine and run bookkeeping."""

import pytest

from repro.simulation import (
    Context,
    ExternalInput,
    LatestDelivery,
    ProtocolAssignment,
    ScheduleError,
    SeededRandomDelivery,
    SilentProtocol,
    SimulationError,
    Simulator,
    actor_protocol,
    fully_connected,
    go_at,
    go_sender_protocol,
    simulate,
    timed_network,
)
from repro.simulation.engine import _normalise_protocols


@pytest.fixture()
def triangle():
    return fully_connected(["A", "B", "C"], 1, 3)


def coordination_protocols():
    protocols = ProtocolAssignment()
    protocols.assign("C", go_sender_protocol())
    protocols.assign("A", actor_protocol("a", "C"))
    return protocols


class TestSimulatorConfiguration:
    def test_rejects_negative_horizon(self, triangle):
        with pytest.raises(SimulationError):
            Simulator(Context(triangle), horizon=-1)

    def test_rejects_unknown_external_recipient(self, triangle):
        with pytest.raises(SimulationError):
            Simulator(Context(triangle), external_inputs=[ExternalInput(1, "Z")])

    def test_rejects_time_zero_external(self, triangle):
        with pytest.raises(ScheduleError):
            ExternalInput(0, "A")

    def test_protocol_normalisation(self):
        assignment = _normalise_protocols(SilentProtocol())
        assert isinstance(assignment, ProtocolAssignment)
        mapping = _normalise_protocols({"A": SilentProtocol()})
        assert isinstance(mapping.for_process("A"), SilentProtocol)
        with pytest.raises(SimulationError):
            _normalise_protocols(42)


class TestBasicExecution:
    def test_no_external_input_means_no_activity(self, triangle):
        run = simulate(Context(triangle), horizon=10)
        assert all(len(timeline) == 1 for timeline in run.timelines.values())
        assert not run.deliveries and not run.sends

    def test_flooding_reaches_everyone(self, triangle):
        run = simulate(
            Context(triangle),
            coordination_protocols(),
            external_inputs=go_at(2, "C"),
            horizon=10,
        )
        run.validate()
        for process in run.processes:
            assert len(run.timelines[process]) > 1

    def test_action_a_performed_on_go(self, triangle):
        run = simulate(
            Context(triangle),
            coordination_protocols(),
            external_inputs=go_at(2, "C"),
            horizon=10,
        )
        assert run.action_time("C", "send_go") == 2
        # Earliest delivery: C -> A has lower bound 1.
        assert run.action_time("A", "a") == 3

    def test_latest_delivery_delays_action(self, triangle):
        run = simulate(
            Context(triangle),
            coordination_protocols(),
            delivery=LatestDelivery(),
            external_inputs=go_at(2, "C"),
            horizon=10,
        )
        assert run.action_time("A", "a") == 5  # upper bound 3

    def test_deliveries_respect_bounds_under_random_adversary(self, triangle):
        run = simulate(
            Context(triangle),
            coordination_protocols(),
            delivery=SeededRandomDelivery(seed=11),
            external_inputs=go_at(2, "C"),
            horizon=12,
        )
        run.validate()
        net = run.timed_network
        for record in run.deliveries:
            low = net.L(record.sender, record.destination)
            high = net.U(record.sender, record.destination)
            assert low <= record.delay <= high

    def test_silent_protocol_produces_no_messages(self, triangle):
        run = simulate(
            Context(triangle),
            SilentProtocol(),
            external_inputs=go_at(2, "C"),
            horizon=8,
        )
        assert not run.sends
        # C still takes a step when the external input arrives.
        assert len(run.timelines["C"]) == 2

    def test_messages_pending_at_horizon_are_recorded(self, triangle):
        run = simulate(
            Context(triangle),
            coordination_protocols(),
            delivery=LatestDelivery(),
            external_inputs=go_at(2, "C"),
            horizon=3,
        )
        # C's flood at t=2 with delay 3 lands at t=5 > horizon.
        assert run.pending
        run.validate()

    def test_runs_are_deterministic(self, triangle):
        first = simulate(
            Context(triangle), coordination_protocols(), external_inputs=go_at(2, "C"), horizon=8
        )
        second = simulate(
            Context(triangle), coordination_protocols(), external_inputs=go_at(2, "C"), horizon=8
        )
        assert first.timelines == second.timelines
        assert first.action_time("A", "a") == second.action_time("A", "a")

    def test_simultaneous_deliveries_form_one_step(self):
        # Both neighbours send to Z with identical bounds; Z observes both in one step.
        net = timed_network({("X", "Z"): (2, 2), ("Y", "Z"): (2, 2)})
        protocols = ProtocolAssignment()
        protocols.assign("X", go_sender_protocol())
        protocols.assign("Y", go_sender_protocol("mu_other"))
        run = simulate(
            Context(net),
            protocols,
            external_inputs=[ExternalInput(1, "X"), ExternalInput(1, "Y", "mu_other")],
            horizon=5,
        )
        z_timeline = run.timelines["Z"]
        assert len(z_timeline) == 2
        final = z_timeline[-1][1]
        assert len(final.history.last_step) == 2

    def test_send_restricted_to_existing_channels(self):
        from repro.simulation import Protocol, StepDecision

        class BadProtocol(Protocol):
            def on_step(self, ctx):
                return StepDecision(actions=(), send_to=("Z",))

        net = timed_network({("X", "Y"): (1, 2)})
        with pytest.raises(SimulationError):
            simulate(
                Context(net),
                {"X": BadProtocol()},
                external_inputs=[ExternalInput(1, "X")],
                horizon=4,
            )
