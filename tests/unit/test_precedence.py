"""Unit tests for timed precedence statements and system support."""

from repro.core import general, minimum_gap, precedes, supports


class TestTimedPrecedence:
    def test_holds_in_run(self, triangle_run):
        go_node = triangle_run.external_deliveries[0].receiver_node
        b_final = triangle_run.final_node("B")
        gap = triangle_run.time_of(b_final) - triangle_run.time_of(go_node)
        assert precedes(go_node, b_final, gap).holds_in(triangle_run)
        assert not precedes(go_node, b_final, gap + 1).holds_in(triangle_run)

    def test_gap_in(self, triangle_run):
        go_node = triangle_run.external_deliveries[0].receiver_node
        theta_a = general(go_node, ("C", "A"))
        statement = precedes(go_node, theta_a, 1)
        assert statement.gap_in(triangle_run) == 1
        assert statement.holds_in(triangle_run)

    def test_unresolved_node_not_satisfied(self, triangle_run):
        last_a = triangle_run.final_node("A")
        dangling = general(last_a, ("A", "B"))
        statement = precedes(last_a, dangling, 0)
        assert statement.gap_in(triangle_run) is None
        assert not statement.holds_in(triangle_run)

    def test_negative_margin_is_upper_bound(self, triangle_run):
        go_node = triangle_run.external_deliveries[0].receiver_node
        theta_a = general(go_node, ("C", "A"))
        # a happens at most U_CA after the go: go - (-U) <= a, i.e. a --(-U)--> go.
        upper = triangle_run.timed_network.U("C", "A")
        assert precedes(theta_a, go_node, -upper).holds_in(triangle_run)

    def test_reversed_bound(self, triangle_run):
        go_node = triangle_run.external_deliveries[0].receiver_node
        b_final = triangle_run.final_node("B")
        statement = precedes(go_node, b_final, 3)
        flipped = statement.reversed_bound()
        assert flipped.margin == -3
        assert flipped.earlier == statement.later

    def test_describe(self, triangle_run):
        go_node = triangle_run.external_deliveries[0].receiver_node
        assert "-->" in precedes(go_node, go_node, 0).describe()


class TestSupports:
    def test_supports_over_single_run(self, triangle_run):
        go_node = triangle_run.external_deliveries[0].receiver_node
        b_final = triangle_run.final_node("B")
        assert supports([triangle_run], precedes(go_node, b_final, 0))

    def test_support_fails_if_one_node_missing(self, triangle_run, figure1_run):
        go_node = triangle_run.external_deliveries[0].receiver_node
        b_final = triangle_run.final_node("B")
        # C's local state after receiving mu_go at t=2 is the same in the Figure 1
        # run, but the triangle run's B node never appears there, so the pair is
        # not supported across the two runs.
        assert not supports([triangle_run, figure1_run], precedes(go_node, b_final, 0))

    def test_support_fails_on_violating_run(self, triangle_run):
        go_node = triangle_run.external_deliveries[0].receiver_node
        b_final = triangle_run.final_node("B")
        huge = 10_000
        assert not supports([triangle_run], precedes(go_node, b_final, huge))

    def test_minimum_gap(self, triangle_run):
        go_node = triangle_run.external_deliveries[0].receiver_node
        b_final = triangle_run.final_node("B")
        statement = precedes(go_node, b_final, 0)
        assert minimum_gap([triangle_run], statement) == statement.gap_in(triangle_run)
        assert minimum_gap([], statement) is None
