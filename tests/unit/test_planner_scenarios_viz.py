"""Unit tests for the static planner, scenario builders, context, and viz helpers."""

import pytest

from repro.coordination import (
    best_fork_plan,
    early_task,
    earliest_guaranteed_action_offset,
    evaluate,
    guaranteed_margin,
    is_statically_solvable,
    late_task,
    optimistic_margin,
)
from repro.scenarios import (
    figure1_guaranteed_margin,
    figure1_scenario,
    figure3_fork_weight,
    figure3_scenario,
    figure4_scenario,
    figure5_scenario,
    flooding_scenario,
    random_timed_network,
    random_workload,
    workload_scenario,
    zigzag_chain_equation_weight,
    zigzag_chain_layout,
    zigzag_chain_scenario,
)
from repro.simulation import (
    Context,
    ExternalInput,
    LatestDelivery,
    ScheduleError,
    SilentProtocol,
    go_at,
    schedule,
)
from repro.viz import (
    action_table,
    extended_graph_listing,
    graph_listing,
    message_table,
    path_listing,
    spacetime_diagram,
)


class TestPlanner:
    def test_figure1_fork_plan(self):
        scenario = figure1_scenario()
        task = late_task(3)
        plan = best_fork_plan(scenario.timed_network, task)
        assert plan is not None
        assert plan.chain_to_b == ("C", "B")
        assert plan.guaranteed_margin == figure1_guaranteed_margin(scenario)
        assert "ForkPlan" in plan.describe()

    def test_guaranteed_margin_and_solvability(self):
        scenario = figure1_scenario(lower_cb=8, upper_ca=4)
        net = scenario.timed_network
        assert guaranteed_margin(net, late_task(0)) == 4
        assert is_statically_solvable(net, late_task(4))
        assert not is_statically_solvable(net, late_task(5))

    def test_early_task_planning(self):
        scenario = figure1_scenario(lower_cb=1, upper_cb=2, lower_ca=6, upper_ca=8)
        net = scenario.timed_network
        # Early margin: L_CA - U_CB = 6 - 2 = 4.
        assert guaranteed_margin(net, early_task(0)) == 4
        assert is_statically_solvable(net, early_task(4))

    def test_no_plan_without_go_channel(self):
        scenario = figure1_scenario()
        task = late_task(1, go_sender="B")  # B has no channel to A
        assert best_fork_plan(scenario.timed_network, task) is None
        assert guaranteed_margin(scenario.timed_network, task) is None

    def test_earliest_guaranteed_action_offset(self):
        scenario = figure1_scenario(lower_cb=8, upper_cb=10, upper_ca=4)
        net = scenario.timed_network
        assert earliest_guaranteed_action_offset(net, late_task(4)) == 10
        assert earliest_guaranteed_action_offset(net, late_task(5)) is None

    def test_optimistic_margin_at_least_guaranteed(self):
        scenario = zigzag_chain_scenario(num_forks=2, with_reports=True)
        net = scenario.timed_network
        task = late_task(0)
        optimistic = optimistic_margin(net, task)
        guaranteed = guaranteed_margin(net, task)
        if guaranteed is not None and optimistic is not None:
            assert optimistic >= guaranteed


class TestScenarios:
    def test_figure1_margin_holds_under_any_adversary(self):
        for delivery in (None, LatestDelivery()):
            scenario = figure1_scenario(delivery=delivery)
            run = scenario.run()
            gap = run.action_time("B", "b") - run.action_time("A", "a")
            assert gap >= figure1_guaranteed_margin(scenario)

    def test_zigzag_chain_layout(self):
        layout = zigzag_chain_layout(3)
        assert layout.sources == ("C", "E", "E2")
        assert layout.pivots == ("D", "D2")
        with pytest.raises(ValueError):
            zigzag_chain_layout(0)

    def test_zigzag_chain_pivot_order(self, figure2a_run):
        # Each pivot hears the earlier source before the later one.
        deliveries = sorted(
            (d for d in figure2a_run.deliveries if d.destination == "D"),
            key=lambda d: d.delivery_time,
        )
        assert [d.sender for d in deliveries[:2]] == ["C", "E"]

    def test_zigzag_chain_gap_exceeds_equation_weight(self):
        for forks in (2, 3):
            scenario = zigzag_chain_scenario(num_forks=forks)
            run = scenario.run()
            weight = zigzag_chain_equation_weight(scenario, forks)
            gap = run.action_time("B", "b") - run.action_time("A", "a")
            assert gap >= weight

    def test_figure3_weight_and_gap(self):
        scenario = figure3_scenario(head_hops=3, tail_hops=2)
        run = scenario.run()
        weight = figure3_fork_weight(scenario, head_hops=3, tail_hops=2)
        gap = run.action_time("B", "b") - run.action_time("A", "a")
        assert gap >= weight

    def test_figure3_rejects_zero_hops(self):
        with pytest.raises(ValueError):
            figure3_scenario(head_hops=0)

    def test_figure4_and_5_build_and_satisfy(self):
        for builder in (figure4_scenario, figure5_scenario):
            scenario = builder(margin=3)
            run = scenario.run()
            outcome = evaluate(run, late_task(3))
            assert outcome.satisfied

    def test_figure6_single_delivery(self, figure6_run):
        assert len(figure6_run.deliveries) == 1

    def test_figure8_has_pending_traffic(self, figure8_run):
        assert figure8_run.deliveries
        assert figure8_run.pending or figure8_run.sends

    def test_scenario_with_helpers(self):
        scenario = figure1_scenario()
        slower = scenario.with_delivery(LatestDelivery())
        assert slower.delivery.__class__.__name__ == "LatestDelivery"
        shorter = scenario.with_horizon(5)
        assert shorter.horizon == 5
        replaced = scenario.with_protocol("B", SilentProtocol())
        assert isinstance(replaced.protocols.for_process("B"), SilentProtocol)
        # The original is untouched.
        assert not isinstance(scenario.protocols.for_process("B"), SilentProtocol)

    def test_random_network_properties(self):
        net = random_timed_network(5, seed=1)
        assert len(net.processes) == 5
        for (i, j) in net.channels:
            assert 1 <= net.L(i, j) <= net.U(i, j)
        with pytest.raises(ValueError):
            random_timed_network(1)

    def test_random_network_reproducible(self):
        assert random_timed_network(4, seed=9).channels == random_timed_network(4, seed=9).channels

    def test_random_workload_roles(self):
        workload = random_workload(num_processes=5, seed=4)
        assert workload.net.is_path((workload.go_sender, workload.actor_a))
        scenario = workload_scenario(workload)
        run = scenario.run()
        assert run.action_time(workload.actor_a, "a") is not None

    def test_flooding_scenario_runs(self):
        run = flooding_scenario(num_processes=3, seed=2, horizon=8).run()
        run.validate()


class TestContextAndSchedules:
    def test_schedule_normalisation(self):
        inputs = schedule([(3, "C", "mu_go"), ExternalInput(1, "E", "mu_x")])
        assert inputs[0].time == 1
        with pytest.raises(ScheduleError):
            schedule([(1, "C", "mu_go"), (1, "C", "mu_go")])

    def test_go_at_helper(self):
        (item,) = go_at(4, "C")
        assert item.time == 4 and item.process == "C"

    def test_context_processes(self, triangle_net):
        context = Context(triangle_net, description="test")
        assert context.processes == triangle_net.processes
        assert context.initial_processes() == triangle_net.processes


class TestViz:
    def test_spacetime_diagram_contains_rows(self, figure2b_run):
        text = spacetime_diagram(figure2b_run, end=20)
        for process in figure2b_run.processes:
            assert process in text
        assert "G!" in text  # the external trigger is marked

    def test_spacetime_window_and_subset(self, figure2b_run):
        text = spacetime_diagram(figure2b_run, processes=["A", "B"], start=2, end=6)
        rows = text.splitlines()
        assert len(rows) == 3  # header plus the two requested processes
        assert rows[1].startswith("A") and rows[2].startswith("B")

    def test_message_and_action_tables(self, figure2b_run):
        messages = message_table(figure2b_run, limit=5)
        assert "from" in messages and "delay" in messages
        actions = action_table(figure2b_run)
        assert "a" in actions and "b" in actions

    def test_graph_listings(self, triangle_run):
        from repro.core import ExtendedBoundsGraph, basic_bounds_graph

        graph = basic_bounds_graph(triangle_run)
        text = graph_listing(graph, triangle_run)
        assert "edges" in text
        filtered = graph_listing(graph, triangle_run, labels=["lower"])
        assert "upper" not in filtered
        sigma = triangle_run.final_node("B")
        extended = ExtendedBoundsGraph(sigma, triangle_run.timed_network)
        listing = extended_graph_listing(extended, triangle_run)
        assert "psi(" in listing

    def test_path_listing(self, triangle_run):
        from repro.core import basic_bounds_graph

        graph = basic_bounds_graph(triangle_run)
        go_node = triangle_run.external_deliveries[0].receiver_node
        target = triangle_run.final_node("B")
        weight, edges = graph.longest_path(go_node, target)
        text = path_listing(edges, triangle_run)
        assert f"{weight:+d}" in text
        assert path_listing([], triangle_run).startswith("(empty")
