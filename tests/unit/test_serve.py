"""Unit tests for ``repro serve``: endpoint parsing, spec validation, and
the HTTP surface of :class:`repro.experiments.serve.SweepService`.

The service under test binds an ephemeral loopback port with no worker
fleet, so cold cells run through the scheduler's inline fallback — the
same exactly-once dedup path a real deployment uses.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments import SweepError
from repro.experiments.cli import main as cli_main
from repro.experiments.serve import (
    SpecError,
    SweepService,
    parse_endpoint,
    validate_spec,
)


class TestParseEndpoint:
    def test_host_port(self):
        assert parse_endpoint("10.0.0.1:8080", resolve=False) == ("10.0.0.1", 8080)

    def test_empty_host_means_loopback(self):
        assert parse_endpoint(":8080", resolve=False) == ("127.0.0.1", 8080)

    def test_bracketed_ipv6(self):
        assert parse_endpoint("[::1]:9", resolve=False) == ("::1", 9)

    def test_missing_port(self):
        with pytest.raises(SweepError, match="missing port"):
            parse_endpoint("localhost")

    def test_empty_port(self):
        with pytest.raises(SweepError, match="missing port"):
            parse_endpoint("localhost:")

    def test_non_numeric_port(self):
        with pytest.raises(SweepError, match="numeric port"):
            parse_endpoint("localhost:http")

    def test_out_of_range_port(self):
        with pytest.raises(SweepError, match=r"\[0, 65535\]"):
            parse_endpoint("localhost:99999")

    def test_unresolvable_host(self):
        with pytest.raises(SweepError, match="cannot resolve host"):
            parse_endpoint("definitely.not.a.real.host.invalid:80")

    def test_resolvable_host(self):
        assert parse_endpoint("localhost:80") == ("localhost", 80)


class TestEndpointCliErrors:
    """Satellite bugfix: malformed endpoints exit 2, never traceback."""

    def test_sweep_remote_missing_port(self, capsys):
        assert cli_main(["sweep", "--backend", "remote", "--listen", "127.0.0.1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_remote_non_numeric_port(self, capsys):
        assert cli_main(["sweep", "--backend", "remote", "--listen", "host:http"]) == 2
        assert "numeric port" in capsys.readouterr().err

    def test_sweep_remote_out_of_range_port(self, capsys):
        assert (
            cli_main(["sweep", "--backend", "remote", "--listen", "127.0.0.1:99999"])
            == 2
        )
        assert "error:" in capsys.readouterr().err

    def test_sweep_remote_bad_host(self, capsys):
        assert (
            cli_main(
                ["sweep", "--backend", "remote", "--listen", "no.such.host.invalid:1"]
            )
            == 2
        )
        assert "cannot resolve host" in capsys.readouterr().err

    def test_worker_missing_port(self, capsys):
        assert cli_main(["worker", "--connect", "127.0.0.1"]) == 2
        assert "missing port" in capsys.readouterr().err

    def test_worker_bad_host_fails_fast_not_retry_loop(self, capsys):
        started = time.perf_counter()
        assert cli_main(["worker", "--connect", "no.such.host.invalid:7641"]) == 2
        # Before the fix this spun in the connect-retry loop for the whole
        # --connect-timeout-s (30s default).
        assert time.perf_counter() - started < 5.0
        assert "cannot resolve host" in capsys.readouterr().err

    def test_serve_non_numeric_port(self, capsys):
        assert cli_main(["serve", "--listen", "127.0.0.1:web"]) == 2
        assert "numeric port" in capsys.readouterr().err

    def test_serve_bad_workers_listen(self, capsys):
        assert cli_main(["serve", "--workers-listen", "127.0.0.1"]) == 2
        assert "missing port" in capsys.readouterr().err


class TestValidateSpec:
    def test_expands_cells_and_normalizes(self):
        cells, normalized = validate_spec(
            {"scenarios": ["line-flood"], "adversaries": ["earliest"], "seeds": 2}
        )
        assert len(cells) == 2
        assert normalized["seeds"] == [0, 1]
        assert normalized["adversaries"] == ["earliest"]

    def test_explicit_seed_list(self):
        cells, normalized = validate_spec(
            {"scenarios": ["line-flood"], "adversaries": ["earliest"], "seeds": [3, 7]}
        )
        assert normalized["seeds"] == [3, 7]
        assert {cell.seed for cell in cells} == {3, 7}

    def test_scalar_param_becomes_single_value_sweep(self):
        cells, normalized = validate_spec(
            {
                "scenarios": ["line-flood"],
                "adversaries": ["earliest"],
                "params": {"num_processes": 3},
            }
        )
        assert normalized["params"] == {"num_processes": [3]}
        assert all(cell.params_dict()["num_processes"] == 3 for cell in cells)

    def test_unknown_scenario_names_field(self):
        with pytest.raises(SpecError, match="unknown scenario") as info:
            validate_spec({"scenarios": ["nope"]})
        assert info.value.field == "scenarios"

    def test_unknown_adversary_names_field(self):
        with pytest.raises(SpecError) as info:
            validate_spec({"scenarios": ["line-flood"], "adversaries": ["fastest"]})
        assert info.value.field == "adversaries"

    def test_ill_typed_param_names_parameter_and_field(self):
        with pytest.raises(SpecError, match="num_processes") as info:
            validate_spec(
                {"scenarios": ["line-flood"], "params": {"num_processes": ["three"]}}
            )
        assert info.value.field == "params"

    def test_undeclared_param_names_field(self):
        with pytest.raises(SpecError) as info:
            validate_spec({"scenarios": ["line-flood"], "params": {"bogus": [1]}})
        assert info.value.field == "params"

    def test_bad_seeds_names_field(self):
        with pytest.raises(SpecError) as info:
            validate_spec({"scenarios": ["line-flood"], "seeds": "four"})
        assert info.value.field == "seeds"

    def test_bad_horizon_names_field(self):
        with pytest.raises(SpecError) as info:
            validate_spec({"scenarios": ["line-flood"], "horizon": 0})
        assert info.value.field == "horizon"

    def test_unknown_analysis_names_field(self):
        with pytest.raises(SpecError) as info:
            validate_spec({"scenarios": ["line-flood"], "analyses": ["nope"]})
        assert info.value.field == "analyses"

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(SpecError, match="unknown spec field") as info:
            validate_spec({"scenarios": ["line-flood"], "scenario": "typo"})
        assert info.value.field == "scenario"

    def test_non_object_spec_rejected(self):
        with pytest.raises(SpecError):
            validate_spec(["line-flood"])

    def test_cell_cap_enforced(self):
        with pytest.raises(SpecError, match="limit"):
            validate_spec(
                {"scenarios": ["line-flood"], "seeds": 10}, max_cells=5
            )


# ---------------------------------------------------------------------------
# HTTP surface.
# ---------------------------------------------------------------------------


@pytest.fixture()
def service(tmp_path):
    svc = SweepService(str(tmp_path / "results.jsonl"))
    host, port = svc.start("127.0.0.1", 0)
    svc.base = f"http://{host}:{port}"
    try:
        yield svc
    finally:
        svc.stop()


def _get(svc, path):
    try:
        with urllib.request.urlopen(svc.base + path, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(svc, path, payload):
    request = urllib.request.Request(
        svc.base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _wait_done(svc, sweep_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, body = _get(svc, f"/sweeps/{sweep_id}")
        assert status == 200
        if body["status"] in ("done", "failed"):
            return body
        time.sleep(0.05)
    raise AssertionError(f"sweep {sweep_id} never finished")


SMALL_SPEC = {
    "scenarios": ["line-flood"],
    "adversaries": ["earliest"],
    "seeds": 2,
    "horizon": 4,
}


class TestHttpSurface:
    def test_healthz(self, service):
        status, body = _get(service, "/healthz")
        assert status == 200
        assert body["ok"] is True
        assert body["store"] == service.store_path

    def test_unknown_route_404(self, service):
        status, body = _get(service, "/nope")
        assert status == 404
        assert "error" in body

    def test_unknown_sweep_404(self, service):
        status, body = _get(service, "/sweeps/sweep-ffffffffffff")
        assert status == 404

    def test_unknown_result_404(self, service):
        status, body = _get(service, "/results/" + "0" * 64)
        assert status == 404
        assert body["key"] == "0" * 64

    def test_post_bad_scenario_is_field_naming_400(self, service):
        status, body = _post(service, "/sweeps", {"scenarios": ["nope"]})
        assert status == 400
        assert body["field"] == "scenarios"
        assert "unknown scenario" in body["error"]

    def test_post_bad_param_value_is_field_naming_400(self, service):
        status, body = _post(
            service,
            "/sweeps",
            {"scenarios": ["line-flood"], "params": {"num_processes": ["three"]}},
        )
        assert status == 400
        assert body["field"] == "params"
        assert "num_processes" in body["error"]

    def test_post_malformed_json_400(self, service):
        request = urllib.request.Request(
            service.base + "/sweeps", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400
        assert json.loads(info.value.read())["field"] == "body"

    def test_sweep_lifecycle_and_results(self, service):
        status, body = _post(service, "/sweeps", SMALL_SPEC)
        assert status == 201
        assert body["created"] is True
        assert body["cells"]["total"] == 2
        final = _wait_done(service, body["sweep"])
        assert final["status"] == "done"
        assert final["cells"]["executed"] == 2
        assert final["cells"]["errors"] == 0

        # Every cell is now served content-addressed from the store.
        records = [
            json.loads(line) for line in open(service.store_path, encoding="utf-8")
        ]
        keys = [r["key"] for r in records if r.get("status") == "ok"]
        assert len(keys) == 2
        for key in keys:
            status, record = _get(service, f"/results/{key}")
            assert status == 200
            assert record["key"] == key
            assert record["status"] == "ok"

    def test_repost_running_is_idempotent_and_finished_grid_is_all_cached(
        self, service
    ):
        _, first = _post(service, "/sweeps", SMALL_SPEC)
        _wait_done(service, first["sweep"])
        # Same grid again: a new job whose scan finds every cell in the store.
        status, second = _post(service, "/sweeps", SMALL_SPEC)
        assert status == 201
        assert second["sweep"] != first["sweep"]
        final = _wait_done(service, second["sweep"])
        assert final["cells"]["executed"] == 0
        assert final["cells"]["cached"] == 2

    def test_events_stream_is_newline_json_to_terminal(self, service):
        _, body = _post(service, "/sweeps", SMALL_SPEC)
        with urllib.request.urlopen(
            f"{service.base}/sweeps/{body['sweep']}/events", timeout=60
        ) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            events = [json.loads(line) for line in response.read().splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "accepted"
        assert kinds[-1] == "end"
        assert "complete" in kinds
        assert kinds.count("executed") + kinds.count("cached") == 2

    def test_report_second_fetch_is_pure_cache_hit(self, service):
        _, body = _post(service, "/sweeps", SMALL_SPEC)
        _wait_done(service, body["sweep"])
        status, first = _get(service, "/report?group_by=scenario,adversary")
        assert status == 200
        assert first["served_from_cache"] is False
        assert first["records"] == 2
        assert first["groups"][0]["cells"] == 2
        status, second = _get(service, "/report?group_by=scenario,adversary")
        assert second["served_from_cache"] is True
        assert second["groups"] == first["groups"]

    def test_report_scoped_to_sweep(self, service):
        _, body = _post(service, "/sweeps", SMALL_SPEC)
        _wait_done(service, body["sweep"])
        status, scoped = _get(service, f"/report?sweep={body['sweep']}")
        assert status == 200
        assert scoped["records"] == 2
        status, _ = _get(service, "/report?sweep=sweep-ffffffffffff")
        assert status == 404

    def test_metrics_json_and_flat(self, service):
        status, snapshot = _get(service, "/metrics")
        assert status == 200
        assert "serve.requests" in snapshot["counters"]
        with urllib.request.urlopen(
            service.base + "/metrics?format=flat", timeout=30
        ) as response:
            text = response.read().decode("utf-8")
        assert any(line.startswith("serve.requests ") for line in text.splitlines())
