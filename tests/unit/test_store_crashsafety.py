"""Crash-safety tests for the result store.

The store is the source of truth for resumable sweeps, so this file pins the
three guarantees resume relies on: appends are single atomic writes (a crash
tears at most the final line), :meth:`ResultStore.recover` drops torn tails
via an atomic temp-file + rename rewrite, and compaction/recovery are
idempotent.
"""

import json
import os

import pytest

from repro.experiments import ResultStore, StoreError


def _record(key, value=0):
    return {"key": key, "status": "ok", "value": value}


def _raw_lines(path):
    with open(path, "rb") as handle:
        return handle.read().split(b"\n")


class TestTornTailRecovery:
    def _store_with_torn_tail(self, tmp_path, records=3):
        store = ResultStore(str(tmp_path / "results.jsonl"))
        for i in range(records):
            store.put(_record(f"k{i}", i))
        with open(store.path, "ab") as handle:
            handle.write(b'{"key": "torn-partial-rec')  # kill -9 mid-append
        return ResultStore(store.path)

    def test_torn_tail_ignored_on_load(self, tmp_path):
        store = self._store_with_torn_tail(tmp_path)
        assert len(store) == 3
        assert store.get("k1") == _record("k1", 1)

    def test_recover_drops_exactly_the_torn_tail(self, tmp_path):
        store = self._store_with_torn_tail(tmp_path)
        assert store.recover() == 1
        assert len(store) == 3
        # The file itself is clean again: parseable, newline-terminated.
        raw = open(store.path, "rb").read()
        assert raw.endswith(b"\n")
        for line in raw.strip().split(b"\n"):
            json.loads(line)

    def test_recover_is_idempotent(self, tmp_path):
        store = self._store_with_torn_tail(tmp_path)
        assert store.recover() == 1
        assert store.recover() == 0
        assert store.recover() == 0

    def test_recover_on_clean_store_rewrites_nothing(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"))
        store.put(_record("a"))
        mtime = os.stat(store.path).st_mtime_ns
        assert store.recover() == 0
        assert os.stat(store.path).st_mtime_ns == mtime

    def test_recover_missing_file(self, tmp_path):
        store = ResultStore(str(tmp_path / "absent.jsonl"))
        assert store.recover() == 0

    def test_recover_drops_interior_corruption_too(self, tmp_path):
        path = tmp_path / "results.jsonl"
        lines = [
            json.dumps(_record("a")),
            "not json at all",
            json.dumps({"no-key": True}),
            json.dumps(_record("b")),
        ]
        path.write_text("\n".join(lines) + "\n")
        store = ResultStore(str(path))
        assert store.recover() == 2
        assert store.keys() == ("a", "b")

    def test_put_after_torn_tail_starts_a_fresh_line(self, tmp_path):
        store = self._store_with_torn_tail(tmp_path)
        store.put(_record("k3", 3))
        reloaded = ResultStore(store.path)
        assert reloaded.get("k3") == _record("k3", 3)
        assert len(reloaded) == 4  # torn fragment swallowed nothing


class TestAtomicWrites:
    def test_put_is_a_single_append_write(self, tmp_path, monkeypatch):
        """One record == one write(2): a crash can never interleave records."""
        store = ResultStore(str(tmp_path / "results.jsonl"))
        store.put(_record("warmup"))
        writes = []
        real_write = os.write

        def counting_write(fd, data):
            writes.append(bytes(data))
            return real_write(fd, data)

        monkeypatch.setattr(os, "write", counting_write)
        store.put(_record("observed"))
        assert len(writes) == 1
        assert writes[0].endswith(b"\n")
        json.loads(writes[0])

    def test_rewrite_leaves_no_temp_file(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"))
        for i in range(3):
            store.put(_record("same-key", i))
        assert store.compact() == 2
        # Only the store and its advisory-lock sidecar remain: no temp file.
        assert sorted(os.listdir(tmp_path)) == ["results.jsonl", "results.jsonl.lock"]

    def test_failed_rewrite_preserves_the_original(self, tmp_path, monkeypatch):
        store = ResultStore(str(tmp_path / "results.jsonl"))
        for i in range(3):
            store.put(_record("same-key", i))
        before = open(store.path, "rb").read()

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            store.compact()
        monkeypatch.undo()
        assert open(store.path, "rb").read() == before  # old file intact
        assert sorted(os.listdir(tmp_path)) == [  # temp cleaned up
            "results.jsonl",
            "results.jsonl.lock",
        ]

    def test_rejects_keyless_records(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"))
        with pytest.raises(StoreError):
            store.put({"status": "ok"})
        with pytest.raises(StoreError):
            store.put({"key": ""})


class TestCompactionIdempotence:
    def test_compact_drops_superseded_then_nothing(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"))
        for i in range(5):
            store.put(_record("hot-key", i))
        store.put(_record("other"))
        assert store.compact() == 4
        assert store.compact() == 0
        reloaded = ResultStore(store.path)
        assert reloaded.get("hot-key") == _record("hot-key", 4)
        assert len(reloaded) == 2

    def test_compact_also_drops_torn_tail(self, tmp_path):
        store = ResultStore(str(tmp_path / "results.jsonl"))
        store.put(_record("a"))
        with open(store.path, "ab") as handle:
            handle.write(b'{"torn')
        store = ResultStore(store.path)
        assert store.compact() == 1
        assert store.compact() == 0

    def test_compact_missing_file(self, tmp_path):
        assert ResultStore(str(tmp_path / "absent.jsonl")).compact() == 0


class TestAdvisoryLocking:
    """Advisory flock: appends and rewrites from multiple writers coexist."""

    def test_compact_keeps_records_from_other_writers(self, tmp_path):
        """A compacting process must not drop records another process
        appended after it last loaded its index."""
        path = str(tmp_path / "results.jsonl")
        ours = ResultStore(path)
        ours.put(_record("ours", 1))
        ours.put(_record("ours", 2))  # superseded: something to compact away
        assert len(ours) == 1

        theirs = ResultStore(path)  # a second writer sharing the file
        theirs.put(_record("theirs"))

        assert ours.compact() == 1  # drops only our superseded duplicate
        survivors = ResultStore(path)
        assert sorted(survivors.keys()) == ["ours", "theirs"]
        assert survivors.get("ours")["value"] == 2

    def test_recover_keeps_records_from_other_writers(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        ours = ResultStore(path)
        ours.put(_record("ours"))
        with open(path, "ab") as handle:
            handle.write(b'{"key": "torn-')  # torn tail from a killed writer
        theirs = ResultStore(path)
        # The other writer's append folds a newline over the torn fragment.
        theirs.put(_record("theirs"))

        assert ours.recover() == 1  # the torn fragment, nothing else
        assert sorted(ours.keys()) == ["ours", "theirs"]

    def test_append_blocks_while_rewrite_holds_the_lock(self, tmp_path):
        """A put() started during a compact() waits for the exclusive lock
        instead of interleaving with the rewrite."""
        import threading
        import time

        store = ResultStore(str(tmp_path / "results.jsonl"))
        store.put(_record("first"))

        entered = threading.Event()
        release = threading.Event()
        appended = threading.Event()

        def hold_exclusive():
            with store._locked(exclusive=True):
                entered.set()
                release.wait(timeout=5.0)

        def append_under_shared():
            entered.wait(timeout=5.0)
            # A separate handle, as a second process would use.
            ResultStore(store.path).put(_record("second"))
            appended.set()

        holder = threading.Thread(target=hold_exclusive)
        writer = threading.Thread(target=append_under_shared)
        holder.start()
        writer.start()
        entered.wait(timeout=5.0)
        time.sleep(0.1)
        assert not appended.is_set()  # still blocked on the flock
        release.set()
        holder.join(timeout=5.0)
        writer.join(timeout=5.0)
        assert appended.is_set()
        assert "second" in ResultStore(store.path).keys()

    def test_concurrent_appends_and_compactions_lose_nothing(self, tmp_path):
        """Hammer one store from appender and compactor threads; every
        record must survive (the regression the flock exists to prevent)."""
        import threading

        path = str(tmp_path / "results.jsonl")

        def append_range(start):
            store = ResultStore(path)
            for i in range(start, start + 20):
                store.put(_record(f"cell-{i}"))

        def keep_compacting():
            store = ResultStore(path)
            for _ in range(10):
                store.compact()

        threads = [
            threading.Thread(target=append_range, args=(0,)),
            threading.Thread(target=append_range, args=(20,)),
            threading.Thread(target=keep_compacting),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        final = ResultStore(path)
        assert sorted(final.keys()) == sorted(f"cell-{i}" for i in range(40))
