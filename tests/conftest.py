"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.coordination import late_task
from repro.scenarios import (
    figure1_scenario,
    figure2a_scenario,
    figure2b_scenario,
    figure3_scenario,
    figure6_scenario,
    figure8_scenario,
    flooding_scenario,
)
from repro.simulation import (
    Context,
    EarliestDelivery,
    ProtocolAssignment,
    actor_protocol,
    fully_connected,
    go_at,
    go_sender_protocol,
    simulate,
    timed_network,
)


@pytest.fixture(scope="session")
def triangle_net():
    """A fully connected 3-process network with bounds [1, 3]."""
    return fully_connected(["A", "B", "C"], 1, 3)


@pytest.fixture(scope="session")
def triangle_run(triangle_net):
    """A run on the triangle network: go to C at t=2, everything floods."""
    protocols = ProtocolAssignment()
    protocols.assign("C", go_sender_protocol())
    protocols.assign("A", actor_protocol("a", "C"))
    return simulate(
        Context(triangle_net),
        protocols,
        delivery=EarliestDelivery(),
        external_inputs=go_at(2, "C"),
        horizon=10,
    )


@pytest.fixture(scope="session")
def two_process_net():
    """A tiny two-process network (one channel each way) with asymmetric bounds."""
    return timed_network({("P", "Q"): (2, 4), ("Q", "P"): (1, 3)})


@pytest.fixture(scope="session")
def figure1_run():
    return figure1_scenario().run()


@pytest.fixture(scope="session")
def figure2a_run():
    return figure2a_scenario().run()


@pytest.fixture(scope="session")
def figure2b_run():
    return figure2b_scenario().run()


@pytest.fixture(scope="session")
def figure3_run():
    return figure3_scenario().run()


@pytest.fixture(scope="session")
def figure6_run():
    return figure6_scenario().run()


@pytest.fixture(scope="session")
def figure8_run():
    return figure8_scenario().run()


@pytest.fixture(scope="session")
def flooding_run():
    """A medium-sized random flooding run used by analysis tests."""
    return flooding_scenario(num_processes=4, seed=7, horizon=12).run()


@pytest.fixture(scope="session")
def late7_task():
    return late_task(7)
