"""Property tests: incremental knowledge sessions == fresh per-sigma checkers.

The whole point of :class:`KnowledgeSession` is to be *indistinguishable*
from building a fresh :class:`KnowledgeChecker` at every observed node while
doing only O(delta) work per step.  These tests replay observer timelines of
randomly generated runs -- across scenario families (figures, grids, tori,
rings, random nets) and delivery adversaries (earliest, latest, seeded
random) -- and require identical ``max_known_gap``/``knows`` answers at
*every* node, for basic pairs and for chain thetas that start unresolved and
resolve mid-timeline (the psi re-anchoring edge cases: ``E''`` retraction,
boundary advance, chain-anchor dropping and chain bridging).
"""

from hypothesis import given, settings, strategies as st

from repro.core import KnowledgeChecker, KnowledgeSession, general
from repro.core.causality import boundary_nodes
from repro.core.extended_graph import ExtendedGraphError
from repro.coordination.optimal import find_go_node
from repro.scenarios import get_scenario
from repro.simulation import (
    Context,
    EarliestDelivery,
    LatestDelivery,
    ProtocolAssignment,
    SeededRandomDelivery,
    go_at,
    go_sender_protocol,
    simulate,
)
from repro.simulation.network import grid, torus
from repro.simulation.protocols import relayed_actor_protocol

SMALL = dict(max_examples=8, deadline=None)

#: Registered scenario families the replay sweeps over (name, params).
SCENARIOS = [
    ("figure2b", {}),
    ("line-flood", {"num_processes": 3}),
    ("ring-flood", {"num_processes": 4}),
    ("grid-flood", {"rows": 2, "cols": 2, "horizon": 8}),
    ("torus-flood", {"horizon": 6}),
    ("flooding", {"num_processes": 4, "horizon": 8}),
]

ADVERSARIES = ["earliest", "latest", "random"]


def adversary(kind, seed):
    if kind == "earliest":
        return EarliestDelivery()
    if kind == "latest":
        return LatestDelivery()
    return SeededRandomDelivery(seed=seed)


def observer_timeline(run):
    """The process that saw the most of the run -- the interesting observer."""
    process = max(
        sorted(run.processes),
        key=lambda p: len(boundary_nodes(run.final_node(p))),
    )
    return [node for _, node in run.timelines[process] if not node.is_initial]


def query_set(run, sigma):
    """Basic boundary pairs plus chain thetas (resolved and unresolved)."""
    net = run.timed_network
    boundary = sorted(boundary_nodes(sigma).values(), key=lambda node: node.process)
    queries = [general(node) for node in boundary]
    for node in boundary:
        if node.is_initial:
            continue
        for destination in sorted(net.out_neighbors(node.process))[:2]:
            queries.append(general(node, (node.process, destination)))
            two_hop = sorted(net.out_neighbors(destination))
            if two_hop:
                queries.append(
                    general(node, (node.process, destination, two_hop[0]))
                )
    return queries


def assert_session_matches_checker(run, include_auxiliary, nodes=None):
    """Advance one session along a timeline; compare answers at every node."""
    net = run.timed_network
    session = KnowledgeSession(net, include_auxiliary=include_auxiliary)
    for sigma in nodes if nodes is not None else observer_timeline(run):
        session.advance(sigma)
        checker = KnowledgeChecker(sigma, net, include_auxiliary=include_auxiliary)
        queries = query_set(run, sigma)
        for theta1 in queries:
            for theta2 in queries:
                if theta1 is theta2:
                    continue
                try:
                    expected = checker.max_known_gap(theta1, theta2)
                except ExtendedGraphError:
                    expected = ExtendedGraphError
                try:
                    got = session.max_known_gap(theta1, theta2)
                except ExtendedGraphError:
                    got = ExtendedGraphError
                assert got == expected, (
                    f"{theta1.describe()} -> {theta2.describe()} at "
                    f"{sigma.describe()}: checker={expected} session={got}"
                )
    return session


@settings(**SMALL)
@given(
    scenario=st.sampled_from(SCENARIOS),
    adversary_kind=st.sampled_from(ADVERSARIES),
    seed=st.integers(0, 5),
)
def test_session_matches_fresh_checker_everywhere(scenario, adversary_kind, seed):
    name, params = scenario
    spec = get_scenario(name)
    build_params = dict(params)
    if "seed" in {p.name for p in spec.params}:
        build_params["seed"] = seed
    run = spec.build(**build_params).with_delivery(adversary(adversary_kind, seed)).run()
    assert_session_matches_checker(run, include_auxiliary=True)


@settings(**SMALL)
@given(
    scenario=st.sampled_from(SCENARIOS[:4]),
    adversary_kind=st.sampled_from(ADVERSARIES),
    seed=st.integers(0, 3),
)
def test_session_matches_checker_without_auxiliary(scenario, adversary_kind, seed):
    """The local-graph ablation must track its fresh counterpart too."""
    name, params = scenario
    spec = get_scenario(name)
    build_params = dict(params)
    if "seed" in {p.name for p in spec.params}:
        build_params["seed"] = seed
    run = spec.build(**build_params).with_delivery(adversary(adversary_kind, seed)).run()
    assert_session_matches_checker(run, include_auxiliary=False)


@settings(**SMALL)
@given(
    rows=st.integers(2, 3),
    cols=st.integers(2, 3),
    upper_slack=st.integers(0, 2),
    seed=st.integers(0, 5),
    wrap=st.booleans(),
)
def test_psi_reanchoring_on_coordination_timelines(rows, cols, upper_slack, seed, wrap):
    """Chain thetas through the go node resolve mid-timeline; answers agree.

    This is the Protocol-2 shape: the ``go -> A`` chain starts entirely
    beyond B's view (anchored to psi nodes), then its hops are seen to
    arrive one by one -- every step retracts ``E''`` edges, advances
    boundaries, and eventually drops the chain anchor and bridges the chain
    vertex to the resolved basic node.
    """
    if rows * cols < 2:
        return
    net = (torus if wrap else grid)(rows, cols, 1, 1 + upper_slack)
    go_sender = "r0c0"
    actor = sorted(net.out_neighbors(go_sender))[0]
    protocols = ProtocolAssignment()
    protocols.assign(go_sender, go_sender_protocol())
    protocols.assign(actor, relayed_actor_protocol("a", go_sender))
    run = simulate(
        Context(net),
        protocols,
        delivery=SeededRandomDelivery(seed=seed),
        external_inputs=go_at(1, go_sender),
        horizon=10,
    )
    observer = f"r{rows - 1}c{cols - 1}"
    session = KnowledgeSession(net)
    theta_by_go = {}
    for _, node in run.timelines[observer]:
        if node.is_initial:
            continue
        session.advance(node)
        go_node = session.find_go_node(go_sender)
        assert go_node == find_go_node(node, go_sender)
        checker = KnowledgeChecker(node, net)
        if go_node is None:
            continue
        theta = theta_by_go.setdefault(go_node, general(go_node, (go_sender, actor)))
        assert session.max_known_gap(theta, node) == checker.max_known_gap(theta, node)
        assert session.max_known_gap(node, theta) == checker.max_known_gap(node, theta)
        assert session.known_window(theta, node) == checker.known_window(theta, node)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 4), adversary_kind=st.sampled_from(ADVERSARIES))
def test_session_batches_match_checker_batches(seed, adversary_kind):
    """Batched queries agree with the checker's batch API pair for pair."""
    spec = get_scenario("grid-flood")
    run = (
        spec.build(rows=2, cols=3, seed=seed, horizon=8)
        .with_delivery(adversary(adversary_kind, seed))
        .run()
    )
    net = run.timed_network
    nodes = observer_timeline(run)
    session = KnowledgeSession(net)
    for sigma in nodes:
        session.advance(sigma)
        checker = KnowledgeChecker(sigma, net)
        queries = query_set(run, sigma)
        pairs = [
            (theta1, theta2)
            for theta1 in queries
            for theta2 in queries
            if theta1 is not theta2
        ]
        try:
            expected = checker.max_known_gaps(pairs)
        except ExtendedGraphError:
            continue
        assert session.max_known_gaps(pairs) == expected
