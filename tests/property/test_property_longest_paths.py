"""Property tests: the batched longest-path engine vs the naive reference.

The :class:`LongestPathEngine` (SCC-condensation DP, memoized rows,
incremental extension) must be *indistinguishable* from the retained naive
Bellman-Ford relaxation (``reference=True``) on every observable: weights,
reachability, positive-cycle detection -- including which sources raise
:class:`PositiveCycleError` -- and it must stay exact while the graph grows
underneath it.  Inputs cover random DAGs, random cyclic digraphs, staged
growth, and real extended bounds graphs from random-net scenarios.
"""

from hypothesis import given, settings, strategies as st

from repro.core import KnowledgeChecker, PositiveCycleError, WeightedGraph, general
from repro.core.causality import boundary_nodes
from repro.core.extended_graph import ExtendedBoundsGraph
from repro.scenarios import flooding_scenario

SMALL = dict(max_examples=10, deadline=None)


# ---------------------------------------------------------------------------
# Strategies.
# ---------------------------------------------------------------------------


@st.composite
def random_dags(draw):
    """An edge list over ``n0..n{k}`` with all edges pointing forward (a DAG)."""
    size = draw(st.integers(2, 10))
    edge_count = draw(st.integers(0, 2 * size))
    edges = []
    for _ in range(edge_count):
        source = draw(st.integers(0, size - 2))
        target = draw(st.integers(source + 1, size - 1))
        weight = draw(st.integers(-5, 5))
        edges.append((f"n{source}", f"n{target}", weight))
    return size, edges


@st.composite
def random_digraphs(draw):
    """An unconstrained random digraph; positive cycles are allowed."""
    size = draw(st.integers(2, 8))
    edge_count = draw(st.integers(0, 2 * size))
    edges = []
    for _ in range(edge_count):
        source = draw(st.integers(0, size - 1))
        target = draw(st.integers(0, size - 1))
        weight = draw(st.integers(-4, 4))
        edges.append((f"n{source}", f"n{target}", weight))
    return size, edges


def build(size, edges):
    graph = WeightedGraph()
    for index in range(size):
        graph.add_node(f"n{index}")
    for source, target, weight in edges:
        graph.add_edge(source, target, weight)
    return graph


def reference_row(graph, source):
    """``(row, raised)`` from the naive relaxation."""
    try:
        return graph.longest_path_weights(source, reference=True), False
    except PositiveCycleError:
        return None, True


def engine_row(graph, source):
    try:
        return graph.longest_path_weights(source), False
    except PositiveCycleError:
        return None, True


def assert_engine_matches_reference(graph):
    assert graph.has_positive_cycle() == graph.has_positive_cycle(reference=True)
    for source in graph.nodes:
        expected, expected_raised = reference_row(graph, source)
        actual, actual_raised = engine_row(graph, source)
        assert actual_raised == expected_raised, f"raise mismatch from {source}"
        if not expected_raised:
            assert actual == expected, f"weights mismatch from {source}"
            assert graph.engine.reachable_from(source) == graph.reachable_from(source)


# ---------------------------------------------------------------------------
# Agreement on static graphs.
# ---------------------------------------------------------------------------


@settings(**SMALL)
@given(dag=random_dags())
def test_engine_matches_reference_on_dags(dag):
    size, edges = dag
    graph = build(size, edges)
    assert not graph.has_positive_cycle()
    assert_engine_matches_reference(graph)


@settings(**SMALL)
@given(digraph=random_digraphs())
def test_engine_matches_reference_on_cyclic_graphs(digraph):
    size, edges = digraph
    graph = build(size, edges)
    assert_engine_matches_reference(graph)


@settings(**SMALL)
@given(digraph=random_digraphs())
def test_memoized_rows_are_stable(digraph):
    size, edges = digraph
    graph = build(size, edges)
    for source in graph.nodes:
        first, raised = engine_row(graph, source)
        second, raised_again = engine_row(graph, source)
        assert raised == raised_again
        assert first == second
    if not graph.has_positive_cycle():
        computed = graph.engine.all_pairs()
        # Every row was already memoized by the per-source queries above.
        assert computed == 0


# ---------------------------------------------------------------------------
# Agreement under growth (incremental row extension).
# ---------------------------------------------------------------------------


@settings(**SMALL)
@given(
    digraph=random_digraphs(),
    growth=st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11), st.integers(-4, 4)),
        min_size=1,
        max_size=6,
    ),
)
def test_incremental_extension_matches_fresh_reference(digraph, growth):
    size, edges = digraph
    graph = build(size, edges)
    # Warm the memo with every currently-computable row.
    for source in graph.nodes:
        engine_row(graph, source)
    # Grow the graph (new edges may introduce brand-new nodes) and require
    # the incrementally extended rows to agree with a from-scratch reference.
    for source, target, weight in growth:
        graph.add_edge(f"n{source}", f"n{target}", weight)
    assert_engine_matches_reference(graph)


@settings(**SMALL)
@given(
    digraph=random_digraphs(),
    growth=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9), st.integers(-4, 4)),
        min_size=1,
        max_size=4,
    ),
)
def test_extension_equals_cold_engine(digraph, growth):
    """A warmed engine after growth equals a cold engine on the final graph."""
    size, edges = digraph
    warmed = build(size, edges)
    for source in warmed.nodes:
        engine_row(warmed, source)
    for source, target, weight in growth:
        warmed.add_edge(f"n{source}", f"n{target}", weight)

    cold = build(size, edges)
    for source, target, weight in growth:
        cold.add_edge(f"n{source}", f"n{target}", weight)

    assert warmed.has_positive_cycle() == cold.has_positive_cycle()
    for source in cold.nodes:
        warm_row, warm_raised = engine_row(warmed, source)
        cold_row, cold_raised = engine_row(cold, source)
        assert warm_raised == cold_raised
        assert warm_row == cold_row


# ---------------------------------------------------------------------------
# Agreement on real scenario graphs (random nets).
# ---------------------------------------------------------------------------


@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(0, 50),
    num_processes=st.integers(3, 5),
    observer=st.integers(0, 4),
)
def test_engine_matches_reference_on_extended_bounds_graphs(
    seed, num_processes, observer
):
    run = flooding_scenario(
        num_processes=num_processes, seed=seed, horizon=10
    ).run()
    processes = sorted(run.processes)
    sigma = run.final_node(processes[observer % len(processes)])
    extended = ExtendedBoundsGraph(sigma, run.timed_network)
    graph = extended.graph
    assert not graph.has_positive_cycle()
    boundary = sorted(boundary_nodes(sigma).values(), key=lambda node: node.process)
    for source in boundary:
        assert graph.longest_path_weights(source) == graph.longest_path_weights(
            source, reference=True
        )
        for target in boundary:
            assert graph.longest_path_weight(source, target) == graph.longest_path_weight(
                source, target, reference=True
            )


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 50), num_processes=st.integers(3, 5))
def test_batched_knowledge_equals_per_query_knowledge(seed, num_processes):
    """``max_known_gaps`` answers exactly what a per-pair query loop answers.

    The batch path adds every general node before querying (engine rows are
    extended incrementally), so this also exercises growth caused by chain
    nodes of unresolved general nodes.
    """
    run = flooding_scenario(num_processes=num_processes, seed=seed, horizon=10).run()
    processes = sorted(run.processes)
    sigma = run.final_node(processes[0])
    net = run.timed_network
    boundary = sorted(boundary_nodes(sigma).values(), key=lambda node: node.process)
    nodes = [general(node) for node in boundary]
    # One hop along a real channel beyond each boundary node (a chain node).
    for node in boundary:
        neighbors = sorted(net.out_neighbors(node.process))
        if neighbors and not node.is_initial:
            nodes.append(general(node, (node.process, neighbors[0])))
    pairs = [(theta1, theta2) for theta1 in nodes for theta2 in nodes]

    batched = KnowledgeChecker(sigma, net).max_known_gaps(pairs)
    per_query_checker = KnowledgeChecker(sigma, net)
    per_query = [
        per_query_checker.max_known_gap(theta1, theta2) for theta1, theta2 in pairs
    ]
    assert batched == per_query

    # And both agree with the naive reference relaxation on the final graph.
    extended = per_query_checker.extended_graph
    keys = [
        (extended.add_general_node(theta1), extended.add_general_node(theta2))
        for theta1, theta2 in pairs
    ]
    reference = [
        extended.graph.longest_path_weight(key1, key2, reference=True)
        for key1, key2 in keys
    ]
    assert per_query == reference
