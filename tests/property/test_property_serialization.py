"""Property-based tests: Run serialization is lossless for analysis purposes.

A random scenario is simulated, serialised through real JSON text, and
deserialised; the rebuilt run must be record-identical and must yield
identical bounds-graph and knowledge results (the quantities every analysis
pass consumes).
"""

import json

from hypothesis import given, settings, strategies as st

from repro.core import KnowledgeChecker, basic_bounds_graph
from repro.scenarios import flooding_scenario, random_coordination_scenario
from repro.simulation import Run

SMALL = dict(max_examples=15, deadline=None)


def round_trip(run: Run) -> Run:
    return Run.from_dict(json.loads(json.dumps(run.to_dict())))


@settings(**SMALL)
@given(
    num_processes=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=1_000),
    horizon=st.integers(min_value=4, max_value=12),
)
def test_random_runs_round_trip_identically(num_processes, seed, horizon):
    run = flooding_scenario(num_processes=num_processes, seed=seed, horizon=horizon).run()
    rebuilt = round_trip(run)
    assert rebuilt.horizon == run.horizon
    assert rebuilt.context == run.context
    assert dict(rebuilt.timelines) == dict(run.timelines)
    assert rebuilt.sends == run.sends
    assert rebuilt.deliveries == run.deliveries
    assert rebuilt.external_deliveries == run.external_deliveries
    assert rebuilt.pending == run.pending
    # The encoding itself is canonical: re-serialising gives the same bytes.
    assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
        run.to_dict(), sort_keys=True
    )
    rebuilt.validate()


@settings(**SMALL)
@given(
    seed=st.integers(min_value=0, max_value=500),
    horizon=st.integers(min_value=5, max_value=10),
)
def test_round_trip_preserves_bounds_graph(seed, horizon):
    run = flooding_scenario(num_processes=4, seed=seed, horizon=horizon).run()
    rebuilt = round_trip(run)
    original = basic_bounds_graph(run)
    recovered = basic_bounds_graph(rebuilt)
    assert set(original.nodes) == set(recovered.nodes)
    assert set(original.edges) == set(recovered.edges)


@settings(**SMALL)
@given(seed=st.integers(min_value=0, max_value=300))
def test_round_trip_preserves_knowledge_results(seed):
    """max_known_gap computed from a deserialised run matches the original."""
    run = random_coordination_scenario(num_processes=4, seed=seed, horizon=12).run()
    rebuilt = round_trip(run)
    for source in (run, rebuilt):
        assert source.appears(source.final_node(source.processes[0]))
    for process in run.processes:
        sigma_original = run.final_node(process)
        sigma_rebuilt = rebuilt.final_node(process)
        assert sigma_original == sigma_rebuilt
        checker_a = KnowledgeChecker(sigma_original, run.timed_network)
        checker_b = KnowledgeChecker(sigma_rebuilt, rebuilt.timed_network)
        initial = run.initial_node(process)
        assert checker_a.max_known_gap(initial, sigma_original) == checker_b.max_known_gap(
            initial, sigma_rebuilt
        )
