"""Property tests for the hash-consing layer.

Two families of guarantees:

* **Semantic transparency** -- interning is an optimisation, not a semantics
  change: building the same cell under any pool (the default one, a fresh
  scoped one, a ProcessPool worker's) produces semantically identical runs,
  byte-identical wire payloads, and canonical (identity-shared) values.
* **Pool isolation** -- sweep workers intern into their own per-process
  pools; nothing a worker does mutates the parent's pool.
"""

import json
import os
from concurrent.futures import ProcessPoolExecutor

from hypothesis import given, settings, strategies as st

from repro.core.nodes import BasicNode
from repro.experiments.runner import build_cell_scenario, make_cell
from repro.simulation import History, Run, current_pool, intern_pool


def build_run(seed: int, horizon: int, adversary: str = "random"):
    """One small grid-flood run under a seeded random delivery adversary."""
    cell = make_cell(
        "grid-flood",
        overrides={"rows": 2, "cols": 2, "horizon": horizon},
        adversary=adversary,
        seed=seed,
    )
    return build_cell_scenario(cell).run()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20), horizon=st.integers(4, 12))
def test_interned_construction_is_semantically_transparent(seed, horizon):
    """The same delivery schedule yields equal runs under different pools."""
    run_default = build_run(seed, horizon)
    payload_default = json.dumps(run_default.to_dict(), sort_keys=True)
    with intern_pool():
        run_scoped = build_run(seed, horizon)
        payload_scoped = json.dumps(run_scoped.to_dict(), sort_keys=True)
        # Cross-pool equality exercises the guarded structural fallback.
        assert run_scoped == run_default
    assert payload_scoped == payload_default
    # The wire format round-trips through the interned constructors too.
    rebuilt = Run.from_dict(json.loads(payload_default))
    assert rebuilt == run_default
    assert json.dumps(rebuilt.to_dict(), sort_keys=True) == payload_default


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20), horizon=st.integers(4, 10))
def test_structural_constructors_canonicalise_run_values(seed, horizon):
    """Rebuilding any run value structurally returns the interned original."""
    with intern_pool():
        run = build_run(seed, horizon)
        for process in run.processes:
            node = run.final_node(process)
            assert History(process, node.history.steps) is node.history
            assert BasicNode(process, node.history) is node
            for prefix in node.history.prefixes():
                assert History(process, prefix.steps) is prefix
        for record in run.deliveries[:20]:
            message = None
            for observation in record.receiver_node.history.last_step:
                if getattr(observation, "message", None) is record.send.message:
                    message = observation.message
            assert message is record.send.message


def _worker_build(seed: int):
    """Build one run in a pool worker, inside a fresh scoped intern pool.

    (A forked worker inherits a copy of the parent's pool, so the build is
    scoped to a fresh pool to observe the interning activity itself.)
    """
    with intern_pool() as pool:
        run = build_run(seed, horizon=8)
        payload = json.dumps(run.to_dict(), sort_keys=True)
        grown = pool.stats()["history_children"]
    return os.getpid(), payload, grown


def test_intern_pools_are_isolated_across_sweep_workers():
    """ProcessPool workers intern into their own pools, bit-identically.

    Each worker process has its own current pool (module global), so worker
    interning can neither corrupt nor bloat the parent's pool, while every
    worker still produces the exact payload the parent produces locally.

    The parent-side observations run inside a fresh scoped pool: earlier
    tests intern runs into the module-global pool, and whenever their union
    happens to cover this run, the "local build interned here" assertion
    would flake against the polluted global.
    """
    with intern_pool():
        parent_before = current_pool().stats()
        local_payload = json.dumps(build_run(3, horizon=8).to_dict(), sort_keys=True)
        parent_mid = current_pool().stats()

        with ProcessPoolExecutor(max_workers=2) as executor:
            results = list(executor.map(_worker_build, [3, 3, 3]))

        pids = {pid for pid, _, _ in results}
        assert os.getpid() not in pids
        for _, payload, grown in results:
            assert payload == local_payload
            assert grown > 0, "worker should have interned its run into its own pool"
        # Worker activity left the parent's pool exactly as it was.
        assert current_pool().stats() == parent_mid
        assert parent_mid != parent_before  # the local build did intern here
