"""Property-based tests for the core analysis: causality, bounds graphs, timing."""

from hypothesis import given, settings, strategies as st

from repro.core import (
    basic_bounds_graph,
    is_p_closed,
    is_valid_timing,
    local_bounds_graph,
    local_bounds_graph_from_run,
    longest_zigzag_between,
    past_nodes,
    precedence_set,
    run_timing,
    slow_run,
    slow_timing,
    slow_timing_domain,
    verify_against_run,
)
from repro.core.run_construction import realized_gap
from repro.scenarios import flooding_scenario

SMALL = dict(max_examples=15, deadline=None)


def make_run(seed, num_processes=4, horizon=12):
    return flooding_scenario(num_processes=num_processes, seed=seed, horizon=horizon).run()


@settings(**SMALL)
@given(seed=st.integers(min_value=0, max_value=300))
def test_past_is_causally_closed(seed):
    run = make_run(seed)
    for process in run.processes:
        sigma = run.final_node(process)
        past = past_nodes(sigma)
        for node in past:
            assert past_nodes(node) <= past


@settings(**SMALL)
@given(seed=st.integers(min_value=0, max_value=300))
def test_happens_before_implies_not_later(seed):
    run = make_run(seed)
    for process in run.processes:
        sigma = run.final_node(process)
        for node in past_nodes(sigma):
            assert run.time_of(node) <= run.time_of(sigma)


@settings(**SMALL)
@given(seed=st.integers(min_value=0, max_value=300))
def test_bounds_graph_edges_hold_and_no_positive_cycle(seed):
    run = make_run(seed)
    graph = basic_bounds_graph(run)
    ok, message = verify_against_run(graph, run)
    assert ok, message
    assert not graph.has_positive_cycle()


@settings(**SMALL)
@given(seed=st.integers(min_value=0, max_value=300))
def test_local_graph_matches_induced_subgraph(seed):
    run = make_run(seed)
    for process in run.processes:
        sigma = run.final_node(process)
        local = local_bounds_graph(sigma, run.timed_network)
        induced = local_bounds_graph_from_run(run, sigma)
        assert set(local.nodes) == set(induced.nodes)
        assert {(e.source, e.target, e.weight) for e in local.edges} == {
            (e.source, e.target, e.weight) for e in induced.edges
        }


@settings(**SMALL)
@given(seed=st.integers(min_value=0, max_value=300))
def test_actual_times_are_a_valid_timing(seed):
    run = make_run(seed)
    graph = basic_bounds_graph(run)
    assert is_valid_timing(graph, run_timing(run))


@settings(**SMALL)
@given(seed=st.integers(min_value=0, max_value=200))
def test_slow_timing_is_valid_on_p_closed_domain(seed):
    run = make_run(seed, horizon=10)
    graph = basic_bounds_graph(run)
    sigma = run.final_node(run.processes[-1])
    domain = slow_timing_domain(run, sigma)
    assert is_p_closed(graph, domain)
    timing = slow_timing(run, sigma)
    assert set(timing) == set(domain)
    assert is_valid_timing(graph, timing)


@settings(**SMALL)
@given(seed=st.integers(min_value=0, max_value=200))
def test_slow_run_is_legal_and_attains_constraints(seed):
    run = make_run(seed, horizon=10)
    graph = basic_bounds_graph(run)
    sigma = run.final_node(run.processes[0])
    slowed = slow_run(run, sigma)
    slowed.validate(require_forced_delivery=False)
    for node in precedence_set(graph, sigma):
        if node.is_initial:
            continue
        constraint = graph.longest_path_weight(node, sigma)
        assert realized_gap(slowed, node, sigma) == constraint


@settings(**SMALL)
@given(seed=st.integers(min_value=0, max_value=200))
def test_theorem1_for_longest_zigzags_between_final_nodes(seed):
    run = make_run(seed)
    finals = [run.final_node(p) for p in run.processes]
    for source in finals:
        for target in finals:
            if source == target:
                continue
            found = longest_zigzag_between(run, source, target)
            if found is None:
                continue
            weight, pattern = found
            assert pattern.is_valid_in(run)
            assert run.time_of(target) - run.time_of(source) >= weight
