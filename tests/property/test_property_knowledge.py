"""Property-based tests for knowledge: soundness against exhaustive enumeration.

The critical invariant of the whole library is that graph-derived knowledge is
*sound*: whatever bound a node claims to know must hold in every legal run
indistinguishable at that node.  Here small random contexts are enumerated
exhaustively (over several external schedules) and the claim is checked for
every observing node and every recognized target node.
"""

from hypothesis import given, settings, strategies as st

from repro.core import KnowledgeChecker, empirical_min_gap, general, is_recognized, past_nodes
from repro.coordination import evaluate, late_task
from repro.scenarios import random_workload, workload_scenario
from repro.simulation import (
    Context,
    ProtocolAssignment,
    actor_protocol,
    enumerate_runs,
    go_at,
    go_sender_protocol,
    simulate,
    timed_network,
)

SMALL = dict(max_examples=10, deadline=None)


def tiny_context(lu_ca, lu_cb, lu_ab):
    net = timed_network({("C", "A"): lu_ca, ("C", "B"): lu_cb, ("A", "B"): lu_ab})
    protocols = ProtocolAssignment()
    protocols.assign("C", go_sender_protocol())
    protocols.assign("A", actor_protocol("a", "C"))
    return Context(net), protocols


bound_pair = st.tuples(st.integers(1, 3), st.integers(0, 2)).map(lambda t: (t[0], t[0] + t[1]))


@settings(**SMALL)
@given(lu_ca=bound_pair, lu_cb=bound_pair, lu_ab=bound_pair, go_time=st.integers(1, 2))
def test_knowledge_is_sound_against_enumeration(lu_ca, lu_cb, lu_ab, go_time):
    context, protocols = tiny_context(lu_ca, lu_cb, lu_ab)
    horizon = 7
    reference = simulate(context, protocols, external_inputs=go_at(go_time, "C"), horizon=horizon)
    runs = list(
        enumerate_runs(context, protocols, external_inputs=go_at(go_time, "C"), horizon=horizon)
    )
    go_node = reference.external_deliveries[0].receiver_node
    theta_a = general(go_node, ("C", "A"))
    for observer in ("A", "B"):
        sigma = reference.final_node(observer)
        if not is_recognized(theta_a, sigma):
            continue
        checker = KnowledgeChecker(sigma, reference.timed_network)
        known = checker.max_known_gap(theta_a, sigma)
        empirical = empirical_min_gap(runs, sigma, theta_a, sigma)
        if known is None or empirical is None:
            continue
        assert known <= empirical
        # Completeness over the enumerated schedule space (Theorem 4's equality).
        assert known == empirical


@settings(**SMALL)
@given(lu_ca=bound_pair, lu_cb=bound_pair, lu_ab=bound_pair, go_time=st.integers(1, 2))
def test_reverse_knowledge_is_sound(lu_ca, lu_cb, lu_ab, go_time):
    context, protocols = tiny_context(lu_ca, lu_cb, lu_ab)
    horizon = 7
    reference = simulate(context, protocols, external_inputs=go_at(go_time, "C"), horizon=horizon)
    runs = list(
        enumerate_runs(context, protocols, external_inputs=go_at(go_time, "C"), horizon=horizon)
    )
    go_node = reference.external_deliveries[0].receiver_node
    theta_a = general(go_node, ("C", "A"))
    sigma = reference.final_node("B")
    if not is_recognized(theta_a, sigma):
        return
    checker = KnowledgeChecker(sigma, reference.timed_network)
    known = checker.max_known_gap(sigma, theta_a)
    empirical = empirical_min_gap(runs, sigma, sigma, theta_a)
    if known is not None and empirical is not None:
        assert known <= empirical


@settings(**SMALL)
@given(
    seed=st.integers(min_value=0, max_value=200),
    margin=st.integers(min_value=0, max_value=4),
)
def test_optimal_protocol_never_violates_on_random_workloads(seed, margin):
    """Protocol 2's action is always safe, for any margin and any workload."""
    from repro.coordination import OptimalCoordinationProtocol

    workload = random_workload(num_processes=4, seed=seed)
    task = late_task(
        margin,
        actor_a=workload.actor_a,
        actor_b=workload.actor_b,
        go_sender=workload.go_sender,
    )
    scenario = workload_scenario(workload, b_protocol=OptimalCoordinationProtocol(task), horizon=25)
    outcome = evaluate(scenario.run(), task)
    assert outcome.satisfied


@settings(**SMALL)
@given(seed=st.integers(min_value=0, max_value=200))
def test_knowledge_gap_monotone_along_observer_timeline(seed):
    """Knowledge about a fixed recognized node only strengthens as B's state grows."""
    workload = random_workload(num_processes=4, seed=seed)
    scenario = workload_scenario(workload, horizon=20)
    run = scenario.run()
    go_records = [r for r in run.external_deliveries if r.process == workload.go_sender]
    if not go_records:
        return
    go_node = go_records[0].receiver_node
    theta_a = general(go_node, (workload.go_sender, workload.actor_a))
    previous = None
    for _, node in run.timelines[workload.actor_b]:
        if node.is_initial or go_node not in past_nodes(node):
            continue
        gap = KnowledgeChecker(node, run.timed_network).max_known_gap(theta_a, node)
        if gap is None:
            continue
        if previous is not None:
            assert gap >= previous
        previous = gap
