"""Property-based tests for the bcm simulator substrate."""

from hypothesis import given, settings, strategies as st

from repro.scenarios import (
    flooding_scenario,
    random_timed_network,
    random_workload,
    workload_scenario,
)
from repro.simulation import SeededRandomDelivery

SMALL = dict(max_examples=20, deadline=None)


@settings(**SMALL)
@given(
    num_processes=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=1_000),
    horizon=st.integers(min_value=5, max_value=14),
)
def test_flooding_runs_are_always_legal(num_processes, seed, horizon):
    """Every simulated run validates: bounds respected, event-driven steps only."""
    run = flooding_scenario(num_processes=num_processes, seed=seed, horizon=horizon).run()
    run.validate()


@settings(**SMALL)
@given(
    num_processes=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=500),
)
def test_random_networks_have_consistent_bounds(num_processes, seed):
    net = random_timed_network(num_processes, seed=seed)
    for (i, j) in net.channels:
        assert 1 <= net.L(i, j) <= net.U(i, j)
    # Path bounds are additive and monotone.
    for (i, j) in net.channels:
        assert net.path_lower((i, j)) <= net.path_upper((i, j))


@settings(**SMALL)
@given(
    seed=st.integers(min_value=0, max_value=200),
    delivery_seed=st.integers(min_value=0, max_value=200),
    horizon=st.integers(min_value=8, max_value=18),
)
def test_delivery_times_always_inside_windows(seed, delivery_seed, horizon):
    scenario = flooding_scenario(num_processes=4, seed=seed, horizon=horizon)
    run = scenario.with_delivery(SeededRandomDelivery(seed=delivery_seed)).run()
    net = run.timed_network
    for record in run.deliveries:
        assert net.L(record.sender, record.destination) <= record.delay
        assert record.delay <= net.U(record.sender, record.destination)
    for record in run.pending:
        assert record.send_time + net.U(record.sender, record.destination) > run.horizon


@settings(**SMALL)
@given(seed=st.integers(min_value=0, max_value=300))
def test_local_states_grow_monotonically(seed):
    """Along every timeline, each node extends its predecessor by exactly one step."""
    run = flooding_scenario(num_processes=4, seed=seed, horizon=12).run()
    for process in run.processes:
        timeline = run.timelines[process]
        for (_, previous), (_, current) in zip(timeline, timeline[1:]):
            assert current.predecessor() == previous
            assert previous.history.is_prefix_of(current.history)


@settings(**SMALL)
@given(
    seed=st.integers(min_value=0, max_value=300),
    go_time=st.integers(min_value=1, max_value=4),
)
def test_actor_acts_exactly_once_and_after_go(seed, go_time):
    workload = random_workload(num_processes=4, seed=seed, go_time=go_time)
    run = workload_scenario(workload, horizon=25).run()
    go_records = [r for r in run.external_deliveries if r.process == workload.go_sender]
    assert go_records
    action = run.find_action(workload.actor_a, "a")
    if action is not None:
        assert action.time > go_records[0].time
        occurrences = [
            r for r in run.actions() if r.process == workload.actor_a and r.action == "a"
        ]
        assert len(occurrences) == 1


@settings(**SMALL)
@given(seed=st.integers(min_value=0, max_value=300))
def test_same_seed_same_run(seed):
    first = flooding_scenario(num_processes=3, seed=seed, horizon=10).run()
    second = flooding_scenario(num_processes=3, seed=seed, horizon=10).run()
    assert first.timelines == second.timelines
