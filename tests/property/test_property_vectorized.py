"""Property tests: vectorized kernels == list kernels on every observable.

The numpy relaxation kernels of :class:`LongestPathEngine` and the
boolean-array causal-past probes of :mod:`repro.core.causality` are pure
accelerations: forced on (``vectorized=True``) they must agree with the
list/bitset paths on weights, reachability, *which sources raise*
:class:`PositiveCycleError`, membership answers, and chunked coordination
replays -- on random cyclic digraphs, staged growth, overlays with fresh
vertices, and real scenario graphs.

Where numpy is absent (the CI tier-1 matrix installs none) the forced
engines silently degrade to the list kernels, so every comparison still
runs -- it just pins list == list.  The threshold monkeypatches are no-ops
there as well; nothing here requires numpy.
"""

from hypothesis import given, settings, strategies as st

from repro.core import KnowledgeSession, PositiveCycleError, WeightedGraph
from repro.core import causality
from repro.core import longest_paths
from repro.core.bounds_graph import basic_bounds_graph
from repro.core.causality import boundary_nodes, in_past, in_past_many, past_nodes
from repro.core.longest_paths import LongestPathEngine
from repro.coordination import EagerKnowledgeProbe, early_task, late_task
from repro.scenarios import figure2b_scenario, get_scenario
from repro.simulation import (
    Context,
    ProtocolAssignment,
    SeededRandomDelivery,
    go_at,
    go_sender_protocol,
    simulate,
)
from repro.simulation.network import grid
from repro.simulation.protocols import relayed_actor_protocol

# Shared replay machinery from the session property suite (pytest puts this
# directory on sys.path; importing at module scope keeps hypothesis from
# seeing the sibling module's @given decorations inside a test context).
from test_property_knowledge_session import (
    assert_session_matches_checker,
    observer_timeline,
)

SMALL = dict(max_examples=10, deadline=None)


# ---------------------------------------------------------------------------
# Strategies and helpers.
# ---------------------------------------------------------------------------


@st.composite
def random_digraphs(draw):
    """An unconstrained random digraph; positive cycles are allowed."""
    size = draw(st.integers(2, 9))
    edge_count = draw(st.integers(0, 3 * size))
    edges = []
    for _ in range(edge_count):
        source = draw(st.integers(0, size - 1))
        target = draw(st.integers(0, size - 1))
        weight = draw(st.integers(-4, 4))
        edges.append((f"n{source}", f"n{target}", weight))
    return size, edges


def build(size, edges):
    graph = WeightedGraph()
    for index in range(size):
        graph.add_node(f"n{index}")
    for source, target, weight in edges:
        graph.add_edge(source, target, weight)
    return graph


def row_or_raise(engine, source):
    try:
        return engine.row(source), False
    except PositiveCycleError:
        return None, True


def assert_engines_agree(graph):
    """Forced-vectorized vs forced-list on every observable of ``graph``."""
    fast = LongestPathEngine(graph, vectorized=True)
    slow = LongestPathEngine(graph, vectorized=False)
    assert fast.has_positive_cycle() == slow.has_positive_cycle()
    raisers_fast, raisers_slow, clean = set(), set(), []
    for source in graph.nodes:
        fast_row, fast_raised = row_or_raise(fast, source)
        slow_row, slow_raised = row_or_raise(slow, source)
        if fast_raised:
            raisers_fast.add(source)
        if slow_raised:
            raisers_slow.add(source)
        if not fast_raised and not slow_raised:
            assert fast_row == slow_row, f"row mismatch from {source}"
            # No numpy scalar leakage: rows hold plain Python numbers (the
            # numpy kernel converts to float; the list kernel may keep
            # exact ints -- both are fine, np.float64 is not).
            assert all(type(v) in (int, float) for v in fast_row.values())
            clean.append(source)
    # PositiveCycleError source sets must agree exactly.
    assert raisers_fast == raisers_slow
    if clean:
        # The multi-source batch path must match per-source list rows.
        batch = LongestPathEngine(graph, vectorized=True).rows(clean)
        for source, row in zip(clean, batch):
            assert row == slow.row(source)
    return raisers_fast


# ---------------------------------------------------------------------------
# Engine agreement: static graphs, batches, growth, overlays, scenarios.
# ---------------------------------------------------------------------------


@settings(**SMALL)
@given(digraph=random_digraphs())
def test_vectorized_engine_matches_list_engine(digraph):
    size, edges = digraph
    assert_engines_agree(build(size, edges))


@settings(**SMALL)
@given(digraph=random_digraphs())
def test_batched_rows_raise_like_sequential_rows(digraph):
    size, edges = digraph
    graph = build(size, edges)
    raisers = assert_engines_agree(graph)
    if not raisers:
        return
    # A batch containing a raising source raises on both kernels (the
    # vectorized batch falls back to sequential order to do so).
    sources = list(graph.nodes)
    for vectorized in (True, False):
        engine = LongestPathEngine(graph, vectorized=vectorized)
        try:
            engine.rows(sources)
            raised = False
        except PositiveCycleError:
            raised = True
        assert raised

@settings(**SMALL)
@given(digraph=random_digraphs(), growth=random_digraphs())
def test_vectorized_extension_matches_list_extension(digraph, growth):
    """Both kernels stay exact while the graph grows under live engines."""
    size, edges = digraph
    grown_size, grown_edges = growth
    graph_fast = build(size, edges)
    graph_slow = build(size, edges)
    fast = LongestPathEngine(graph_fast, vectorized=True)
    slow = LongestPathEngine(graph_slow, vectorized=False)
    # Warm some rows so extension exercises the incremental path.
    for source in list(graph_fast.nodes)[:3]:
        fast_row, fast_raised = row_or_raise(fast, source)
        slow_row, slow_raised = row_or_raise(slow, source)
        assert fast_raised == slow_raised and fast_row == slow_row
    for graph in (graph_fast, graph_slow):
        for index in range(grown_size):
            graph.add_node(f"g{index}")
        for source, target, weight in grown_edges:
            graph.add_edge(f"g{source[1:]}", f"g{target[1:]}", weight)
        graph.add_edge("n0", "g0", 1)
    for source in graph_fast.nodes:
        fast_row, fast_raised = row_or_raise(fast, source)
        slow_row, slow_raised = row_or_raise(slow, source)
        assert fast_raised == slow_raised, f"raise mismatch from {source}"
        if not fast_raised:
            assert fast_row == slow_row, f"row mismatch from {source}"


@settings(**SMALL)
@given(
    digraph=random_digraphs(),
    overlay_edges=st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 10), st.integers(-4, 4)),
        max_size=10,
    ),
)
def test_vectorized_overlay_matches_list_overlay(digraph, overlay_edges):
    """Overlay rows/weights agree, including psi-style fresh vertices."""
    size, edges = digraph
    graph = build(size, edges)

    def endpoint(index):
        # Indices beyond the base graph become fresh overlay-only vertices.
        return f"n{index}" if index < size else f"psi{index - size}"

    overlay = [
        (endpoint(source), endpoint(target), weight)
        for source, target, weight in overlay_edges
    ]
    fast = LongestPathEngine(graph, vectorized=True)
    slow = LongestPathEngine(graph, vectorized=False)
    fast.set_overlay(overlay)
    slow.set_overlay(overlay)
    nodes = list(graph.nodes) + sorted(
        {node for edge in overlay for node in edge[:2]} - set(graph.nodes)
    )
    for source in nodes:
        try:
            expected = slow.overlay_row(source)
            expected_raised = False
        except PositiveCycleError:
            expected, expected_raised = None, True
        try:
            actual = fast.overlay_row(source)
            actual_raised = False
        except PositiveCycleError:
            actual, actual_raised = None, True
        assert actual_raised == expected_raised, f"overlay raise mismatch from {source}"
        if expected_raised:
            continue
        assert actual == expected, f"overlay row mismatch from {source}"
        for target in nodes[:4]:
            assert fast.overlay_weight(source, target) == slow.overlay_weight(
                source, target
            )


@settings(max_examples=6, deadline=None)
@given(
    scenario=st.sampled_from(
        [
            ("figure2b", {}),
            ("grid-flood", {"rows": 2, "cols": 3, "horizon": 8}),
            ("flooding", {"num_processes": 4, "horizon": 8}),
        ]
    ),
    seed=st.integers(0, 4),
)
def test_vectorized_engine_on_scenario_graphs(scenario, seed):
    """Agreement on the real bounds graphs the analyses feed the engine."""
    name, params = scenario
    spec = get_scenario(name)
    build_params = dict(params)
    if "seed" in {p.name for p in spec.params}:
        build_params["seed"] = seed
    run = spec.build(**build_params).run()
    graph = basic_bounds_graph(run)
    fast = LongestPathEngine(graph, vectorized=True)
    slow = LongestPathEngine(graph, vectorized=False)
    finals = sorted(
        (run.final_node(process) for process in run.processes),
        key=lambda node: node.process,
    )
    assert fast.rows(finals) == [slow.row(source) for source in finals]
    assert fast.all_pairs() == slow.all_pairs()
    assert fast.has_positive_cycle() == slow.has_positive_cycle()


# ---------------------------------------------------------------------------
# Causal pasts: vectorized boolean probes == bitset probes.
# ---------------------------------------------------------------------------


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 6))
def test_in_past_many_matches_in_past(seed):
    run = (
        get_scenario("grid-flood")
        .build(rows=2, cols=3, seed=seed, horizon=8)
        .with_delivery(SeededRandomDelivery(seed=seed))
        .run()
    )
    probes = [
        node
        for timeline in run.timelines.values()
        for _, node in timeline
    ]
    sigmas = [run.final_node(process) for process in sorted(run.processes)]
    original = causality._VECTOR_MIN_BITS
    try:
        # Default threshold first, then forced-vectorized (0 makes every
        # mask eligible); both must match the single-bit probe loop.
        for threshold in (original, 0):
            causality._VECTOR_MIN_BITS = threshold
            for sigma in sigmas:
                expected = [in_past(node, sigma) for node in probes]
                assert in_past_many(probes, sigma) == expected
    finally:
        causality._VECTOR_MIN_BITS = original


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 6))
def test_past_nodes_agree_across_vector_threshold(seed):
    run = (
        get_scenario("torus-flood")
        .build(seed=seed, horizon=6)
        .with_delivery(SeededRandomDelivery(seed=seed))
        .run()
    )
    sigmas = [run.final_node(process) for process in sorted(run.processes)]
    original = causality._VECTOR_MIN_BITS
    try:
        causality._VECTOR_MIN_BITS = 0
        forced = [past_nodes(sigma) for sigma in sigmas]
        forced_boundaries = [boundary_nodes(sigma) for sigma in sigmas]
    finally:
        causality._VECTOR_MIN_BITS = original
    assert forced == [past_nodes(sigma) for sigma in sigmas]
    assert forced_boundaries == [boundary_nodes(sigma) for sigma in sigmas]


# ---------------------------------------------------------------------------
# Chunked coordination replays and vectorized knowledge sessions.
# ---------------------------------------------------------------------------

CHUNK_SIZES = (1, 2, 3, 8, 64)


@settings(max_examples=6, deadline=None)
@given(margin=st.integers(0, 4), kind=st.sampled_from(["late", "early"]))
def test_chunked_probe_matches_per_step_on_figure2b(margin, kind):
    run = figure2b_scenario(margin=margin).run()
    task = late_task(margin) if kind == "late" else early_task(margin)
    results = {
        EagerKnowledgeProbe(task).first_actionable_node(run, chunk_steps=chunk)
        for chunk in CHUNK_SIZES
    }
    assert len(results) == 1


@settings(max_examples=8, deadline=None)
@given(
    rows=st.integers(2, 3),
    cols=st.integers(2, 3),
    margin=st.integers(0, 3),
    seed=st.integers(0, 5),
    kind=st.sampled_from(["late", "early"]),
)
def test_chunked_probe_matches_per_step_on_grid_runs(rows, cols, margin, seed, kind):
    """Chunk boundaries never change which node the probe reports."""
    net = grid(rows, cols, 1, 2)
    go_sender = "r0c0"
    actor = sorted(net.out_neighbors(go_sender))[0]
    observer = f"r{rows - 1}c{cols - 1}"
    protocols = ProtocolAssignment()
    protocols.assign(go_sender, go_sender_protocol())
    protocols.assign(actor, relayed_actor_protocol("a", go_sender))
    run = simulate(
        Context(net),
        protocols,
        delivery=SeededRandomDelivery(seed=seed),
        external_inputs=go_at(1, go_sender),
        horizon=10,
    )
    maker = late_task if kind == "late" else early_task
    task = maker(margin, go_sender=go_sender, actor_a=actor, actor_b=observer)
    results = {
        EagerKnowledgeProbe(task).first_actionable_node(run, chunk_steps=chunk)
        for chunk in CHUNK_SIZES
    }
    assert len(results) == 1


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 5), chunk=st.sampled_from([1, 2, 4]))
def test_vectorized_session_matches_fresh_checker(seed, chunk):
    """Session == fresh checker holds with the numpy kernels forced on.

    Dropping the auto threshold to zero routes every session engine (base
    rows, incremental extension, overlay installs) through the vectorized
    kernels; chunked ``advance_many`` replays must still answer exactly like
    a fresh per-sigma checker.
    """
    run = (
        get_scenario("grid-flood")
        .build(rows=2, cols=3, seed=seed, horizon=8)
        .with_delivery(SeededRandomDelivery(seed=seed))
        .run()
    )
    original = longest_paths.VECTOR_MIN_EDGES
    try:
        longest_paths.VECTOR_MIN_EDGES = 0
        assert_session_matches_checker(run, include_auxiliary=True)
        # advance_many chunks answer like the per-step session at chunk ends.
        nodes = observer_timeline(run)
        chunked = KnowledgeSession(run.timed_network)
        stepped = KnowledgeSession(run.timed_network)
        for start in range(0, len(nodes), chunk):
            block = nodes[start : start + chunk]
            chunked.advance_many(block)
            for node in block:
                stepped.advance(node)
            sigma = block[-1]
            boundary = sorted(
                boundary_nodes(sigma).values(), key=lambda node: node.process
            )
            for theta in boundary:
                assert chunked.max_known_gap(theta, sigma) == stepped.max_known_gap(
                    theta, sigma
                )
    finally:
        longest_paths.VECTOR_MIN_EDGES = original
