"""Property-based tests for forks and zigzag patterns on the parametric chain scenario."""

from hypothesis import given, settings, strategies as st

from repro.core import TwoLeggedFork, ZigzagPattern, check_theorem1, general
from repro.scenarios import (
    spontaneous_tag,
    zigzag_chain_equation_weight,
    zigzag_chain_layout,
    zigzag_chain_scenario,
)

SMALL = dict(max_examples=15, deadline=None)

bound_pair = st.tuples(st.integers(1, 6), st.integers(0, 4)).map(lambda t: (t[0], t[0] + t[1]))


def build_pattern(run, num_forks):
    """The canonical zigzag of a chain scenario, built from its external triggers."""
    layout = zigzag_chain_layout(num_forks)
    externals = {r.process: r.receiver_node for r in run.external_deliveries}
    forks = []
    for index in range(num_forks):
        source = layout.sources[index]
        head = layout.pivots[index] if index < num_forks - 1 else layout.target
        tail = layout.actor if index == 0 else layout.pivots[index - 1]
        forks.append(
            TwoLeggedFork(general(externals[source]), (source, head), (source, tail))
        )
    return ZigzagPattern(tuple(forks))


@settings(**SMALL)
@given(
    num_forks=st.integers(min_value=1, max_value=3),
    head_bounds=bound_pair,
    tail_bounds=bound_pair,
    actor_bounds=bound_pair,
    target_bounds=bound_pair,
)
def test_chain_zigzag_weight_and_theorem1(
    num_forks, head_bounds, tail_bounds, actor_bounds, target_bounds
):
    """For any bounds, the canonical chain zigzag is valid and satisfies Theorem 1."""
    scenario = zigzag_chain_scenario(
        num_forks=num_forks,
        head_bounds=head_bounds,
        tail_bounds=tail_bounds,
        actor_bounds=actor_bounds,
        target_bounds=target_bounds,
    )
    run = scenario.run()
    pattern = build_pattern(run, num_forks)
    assert pattern.is_valid_in(run)
    report = check_theorem1(run, pattern)
    assert report.holds
    # The run weight is the static fork-weight sum plus the (non-negative) separations.
    equation = zigzag_chain_equation_weight(scenario, num_forks)
    assert pattern.weight(run) >= equation
    assert pattern.separations(run) == len(pattern) - 1 - sum(pattern.joined_flags(run))


@settings(**SMALL)
@given(
    num_forks=st.integers(min_value=1, max_value=3),
    head_bounds=bound_pair,
    tail_bounds=bound_pair,
)
def test_action_gap_respects_equation_weight(num_forks, head_bounds, tail_bounds):
    """The naive B rule still lands at least Eq.(1)-weight after a, for any bounds."""
    scenario = zigzag_chain_scenario(
        num_forks=num_forks, head_bounds=head_bounds, tail_bounds=tail_bounds
    )
    run = scenario.run()
    a_time = run.action_time("A", "a")
    b_time = run.action_time("B", "b")
    assert a_time is not None and b_time is not None
    assert b_time - a_time >= zigzag_chain_equation_weight(scenario, num_forks)


@settings(**SMALL)
@given(num_forks=st.integers(min_value=1, max_value=4))
def test_chain_layout_triggers_are_distinct(num_forks):
    layout = zigzag_chain_layout(num_forks)
    assert len(set(layout.sources)) == num_forks
    assert len(set(layout.pivots)) == num_forks - 1
    tags = {spontaneous_tag(i) for i in range(1, num_forks)}
    assert len(tags) == num_forks - 1
