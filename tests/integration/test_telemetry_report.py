"""Acceptance tests for sweep telemetry and the report/export surfaces.

The tentpole invariants:

* a sharded multi-worker sweep persists one ``sweep_telemetry`` record whose
  metrics section merges counters shipped back by pool workers (engine memo
  hit rates, shard cells/s, store append counts);
* in-process backends contribute their metrics exactly once (no double
  counting between the parent registry delta and worker payloads);
* ``REPRO_TRACE`` deep mode attaches structured span events to telemetry;
* ``repro report --html`` renders the dashboard and ``--telemetry`` emits
  machine-readable JSON.
"""

import json

from repro.experiments.cli import main as cli_main
from repro.experiments.runner import (
    TELEMETRY_KIND,
    TELEMETRY_STATUS,
    expand_grid,
    run_sweep,
    sweep_telemetry_key,
)
from repro.experiments.store import ResultStore
from repro.obs.trace import drain_trace_events, set_tracing


def _cells(seeds=4):
    return expand_grid(
        ["line-flood"],
        adversaries=["earliest", "random"],
        seeds=list(range(seeds)),
        horizon=6,
    )


class TestSweepTelemetry:
    def test_sharded_sweep_persists_merged_worker_metrics(self, tmp_path):
        cells = _cells()
        store = ResultStore(str(tmp_path / "results.jsonl"))
        outcome = run_sweep(
            cells, store=store, workers=2, backend="sharded", shard_size=2
        )
        assert outcome.errors == 0
        assert outcome.telemetry is not None

        persisted = store.get(sweep_telemetry_key(cells))
        assert persisted == outcome.telemetry
        assert persisted["kind"] == TELEMETRY_KIND
        assert persisted["status"] == TELEMETRY_STATUS
        assert persisted["backend"] == "sharded"
        assert persisted["workers"] == 2
        assert persisted["cells"]["executed"] == len(cells)

        # Metrics were shipped back by out-of-process workers and merged.
        assert persisted["worker_payloads"] > 0
        counters = persisted["metrics"]["counters"]
        assert counters["engine.rows_computed"] > 0
        assert counters["sweep.cells_executed"] == len(cells)
        # Store appends happen in the parent: one per executed cell.
        assert counters["store.appends"] == len(cells)
        assert counters["intern.objects_interned"] > 0

        # Shard throughput metadata: one entry per dispatched shard.
        assert persisted["shards"]
        for shard in persisted["shards"]:
            assert shard["cells"] >= 1
            assert shard["wall_s"] >= 0
            assert shard["cells_per_s"] is None or shard["cells_per_s"] > 0

        # Derived headline rates are computable from the merged counters.
        derived = persisted["derived"]
        assert derived["engine_row_hit_rate"] is not None
        assert derived["store_appends"] == len(cells)
        assert derived["base_scenario_hit_rate"] is not None

        # Phase timings cover the whole sweep.
        timings = persisted["timings"]
        assert 0 <= timings["scan_s"] <= timings["total_s"]
        assert 0 < timings["execute_s"] <= timings["total_s"]

        # The telemetry record is JSON-clean (it round-trips the store).
        json.dumps(persisted)

    def test_no_double_counting_across_backends(self, tmp_path):
        """In-process backends must not absorb worker payload metrics twice."""
        cells = _cells(seeds=2)
        merged = {}
        for backend, workers in (("serial", 1), ("sharded", 1), ("process", 2)):
            store = ResultStore(str(tmp_path / f"{backend}.jsonl"))
            outcome = run_sweep(cells, store=store, workers=workers, backend=backend)
            assert outcome.errors == 0
            merged[backend] = outcome.telemetry["metrics"]["counters"]
        for backend in ("sharded", "process"):
            assert (
                merged[backend]["engine.rows_computed"]
                == merged["serial"]["engine.rows_computed"]
            ), backend
            assert (
                merged[backend]["sweep.cells_executed"]
                == merged["serial"]["sweep.cells_executed"]
            ), backend

    def test_cached_rerun_and_telemetry_key_stability(self, tmp_path):
        cells = _cells(seeds=2)
        store = ResultStore(str(tmp_path / "results.jsonl"))
        first = run_sweep(cells, store=store, workers=1)
        second = run_sweep(cells, store=store, workers=1)
        # Telemetry records are keyed by the grid: the rerun overwrites
        # rather than accumulating, and never pollutes the cell cache scan.
        assert second.cached == len(cells) and second.executed == 0
        assert first.telemetry["key"] == second.telemetry["key"]
        telemetry_records = [
            r for r in store.records() if r.get("kind") == TELEMETRY_KIND
        ]
        assert len(telemetry_records) == 1
        assert telemetry_records[0]["cells"]["cached"] == len(cells)

    def test_trace_mode_attaches_span_events(self, tmp_path):
        cells = _cells(seeds=1)
        store = ResultStore(str(tmp_path / "results.jsonl"))
        previous = set_tracing(True)
        try:
            drain_trace_events()
            outcome = run_sweep(cells, store=store, workers=1)
        finally:
            set_tracing(previous)
            drain_trace_events()
        events = outcome.telemetry["trace"]
        names = {event["name"] for event in events}
        assert "cell" in names
        assert "sweep.scan" in names
        assert any(name.startswith("analysis.") for name in names)

    def test_untraced_sweep_has_no_trace_section(self, tmp_path):
        cells = _cells(seeds=1)
        outcome = run_sweep(cells, store=ResultStore(str(tmp_path / "r.jsonl")))
        assert "trace" not in outcome.telemetry


class TestReportSurfaces:
    def _sweep(self, tmp_path):
        store_path = str(tmp_path / "results.jsonl")
        assert cli_main(
            ["sweep", "--scenario", "figure1,flooding",
             "--adversary", "earliest,latest", "--seeds", "2",
             "--workers", "2", "--backend", "sharded", "--store", store_path]
        ) == 0
        return store_path

    def test_report_html_renders_dashboard(self, tmp_path, capsys):
        store_path = self._sweep(tmp_path)
        html_path = str(tmp_path / "report.html")
        capsys.readouterr()
        assert cli_main(
            ["report", "--store", store_path, "--html", html_path,
             "--diagrams", "2"]
        ) == 0
        html = open(html_path, encoding="utf-8").read()
        assert html.startswith("<!DOCTYPE html>")
        assert "<h2>Sweep results</h2>" in html
        assert "<h2>Sweep telemetry</h2>" in html
        assert "<h2>Space-time diagrams</h2>" in html
        assert "engine.rows_computed" in html
        # Deterministic: rendering the same store twice is byte-identical.
        html_path2 = str(tmp_path / "report2.html")
        assert cli_main(
            ["report", "--store", store_path, "--html", html_path2,
             "--diagrams", "2"]
        ) == 0
        assert html == open(html_path2, encoding="utf-8").read()

    def test_report_telemetry_json(self, tmp_path, capsys):
        store_path = self._sweep(tmp_path)
        capsys.readouterr()
        assert cli_main(["report", "--store", store_path, "--telemetry"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        assert payload[0]["kind"] == TELEMETRY_KIND
        assert payload[0]["metrics"]["counters"]["sweep.cells_executed"] == 8
