"""Ground-truth validation of the theorems by exhaustive enumeration.

On tiny networks every legal schedule can be enumerated, which turns the
theorems into checkable statements:

* Theorem 1: any zigzag's weight is respected in *every* enumerated run;
* Theorem 2: whenever the enumerated system supports a precedence, the
  bounds-graph zigzag witness reaches that margin, and the slow run attains
  the bound exactly;
* Theorem 4: the knowledge computed from the extended bounds graph equals the
  minimum gap over all enumerated runs indistinguishable at the observer
  (soundness always; completeness on schedules the enumeration covers).
"""

import itertools

import pytest

from repro.core import (
    KnowledgeChecker,
    basic_bounds_graph,
    check_theorem2,
    empirical_min_gap,
    general,
    longest_zigzag_between,
    supported_margin,
)
from repro.simulation import (
    Context,
    ProtocolAssignment,
    actor_protocol,
    enumerate_runs,
    go_at,
    go_sender_protocol,
    simulate,
    timed_network,
)


def tiny_setup():
    """A 3-process context small enough to enumerate exhaustively."""
    net = timed_network(
        {
            ("C", "A"): (1, 2),
            ("C", "B"): (2, 3),
            ("A", "B"): (1, 2),
        }
    )
    protocols = ProtocolAssignment()
    protocols.assign("C", go_sender_protocol())
    protocols.assign("A", actor_protocol("a", "C"))
    return Context(net), protocols


HORIZON = 7


@pytest.fixture(scope="module")
def enumerated():
    context, protocols = tiny_setup()
    runs = list(enumerate_runs(context, protocols, external_inputs=go_at(1, "C"), horizon=HORIZON))
    assert len(runs) > 1
    return context, protocols, runs


class TestTheorem1Exhaustive:
    def test_zigzag_weights_hold_in_every_run(self, enumerated):
        context, protocols, runs = enumerated
        reference = runs[0]
        a_record = reference.find_action("A", "a")
        assert a_record is not None
        for run in runs:
            graph = basic_bounds_graph(run)
            nodes = [run.final_node(p) for p in run.processes]
            for source, target in itertools.permutations(nodes, 2):
                found = longest_zigzag_between(run, source, target)
                if found is None:
                    continue
                weight, pattern = found
                assert run.time_of(target) - run.time_of(source) >= weight
                assert pattern.weight(run) == weight


class TestTheorem2Exhaustive:
    def test_supported_margin_is_witnessed_by_a_zigzag(self, enumerated):
        context, protocols, runs = enumerated
        # Pick node pairs that appear across runs: C's go node and A's action node.
        reference = runs[0]
        go_node = reference.external_deliveries[0].receiver_node
        a_node = reference.find_action("A", "a").node
        margin = supported_margin(runs, go_node, a_node)
        assert margin is not None
        for run in runs:
            if not (run.appears(go_node) and run.appears(a_node)):
                continue
            report = check_theorem2(run, go_node, a_node)
            assert report.has_constraint
            assert report.zigzag_weight >= margin
            assert report.tight

    def test_slow_run_realises_the_minimum_gap(self, enumerated):
        """The slow run's gap equals the minimum over all enumerated runs."""
        context, protocols, runs = enumerated
        reference = runs[0]
        go_node = reference.external_deliveries[0].receiver_node
        a_node = reference.find_action("A", "a").node
        margin = supported_margin(runs, go_node, a_node)
        report = check_theorem2(reference, go_node, a_node)
        # The slow-run gap can be no larger than the enumerated minimum (the
        # enumeration is capped by the horizon) and no smaller than the
        # constraint weight.
        assert report.slow_run_gap == report.constraint_weight
        assert margin >= report.constraint_weight


class TestTheorem4Exhaustive:
    @pytest.mark.parametrize("observer", ["A", "B"])
    def test_knowledge_equals_empirical_minimum(self, enumerated, observer):
        context, protocols, runs = enumerated
        reference = simulate(
            context, protocols, external_inputs=go_at(1, "C"), horizon=HORIZON
        )
        go_node = reference.external_deliveries[0].receiver_node
        theta_a = general(go_node, ("C", "A"))
        sigma = reference.final_node(observer)
        if go_node not in reference.past(sigma):
            pytest.skip("observer never hears about the go within the horizon")
        checker = KnowledgeChecker(sigma, reference.timed_network)
        known = checker.max_known_gap(theta_a, sigma)
        empirical = empirical_min_gap(runs, sigma, theta_a, sigma)
        assert empirical is not None
        # Soundness: knowledge never exceeds the true minimum gap.
        assert known is not None and known <= empirical
        # Completeness over the enumerated schedule space: the bound is attained.
        assert known == empirical

    def test_knowledge_sound_across_alternative_go_times(self, enumerated):
        """Soundness must also hold against runs with different external timing."""
        context, protocols, _ = enumerated
        reference = simulate(
            context, protocols, external_inputs=go_at(1, "C"), horizon=HORIZON
        )
        go_node = reference.external_deliveries[0].receiver_node
        theta_a = general(go_node, ("C", "A"))
        sigma = reference.final_node("B")
        checker = KnowledgeChecker(sigma, reference.timed_network)
        known = checker.max_known_gap(theta_a, sigma)
        all_runs = []
        for go_time in (1, 2, 3):
            all_runs.extend(
                enumerate_runs(
                    context,
                    protocols,
                    external_inputs=go_at(go_time, "C"),
                    horizon=HORIZON + 2,
                )
            )
        empirical = empirical_min_gap(all_runs, sigma, theta_a, sigma)
        if empirical is not None and known is not None:
            assert known <= empirical


class TestReverseDirectionKnowledge:
    def test_upper_bound_knowledge_is_sound(self, enumerated):
        """K(sigma --x--> theta_a) with negative x encodes an upper bound on a's lag."""
        context, protocols, runs = enumerated
        reference = runs[0]
        go_node = reference.external_deliveries[0].receiver_node
        theta_a = general(go_node, ("C", "A"))
        sigma = reference.final_node("B")
        if go_node not in reference.past(sigma):
            pytest.skip("B never hears about the go")
        checker = KnowledgeChecker(sigma, reference.timed_network)
        known = checker.max_known_gap(sigma, theta_a)
        if known is None:
            return
        empirical = empirical_min_gap(runs, sigma, sigma, theta_a)
        if empirical is not None:
            assert known <= empirical
