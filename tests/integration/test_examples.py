"""The example scripts must run to completion (they assert their own claims)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert result.stdout.strip(), "examples should print an explanation of what they did"
