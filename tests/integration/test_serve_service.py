"""Integration tests for the serve service's system-level invariants.

* Two concurrent clients POSTing *overlapping* grids execute each distinct
  cell exactly once (the scheduler dedup + sequential job draining), and
  the records match a serial :func:`run_sweep` byte-for-byte (minus
  wall-clock fields).
* ``/results`` stays correct with the advisory index deleted, and a
  damaged (torn/corrupt) tail record degrades to recompute-and-supersede
  instead of a wrong answer — the store-level PR 9 semantics surfaced over
  HTTP.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments import ResultStore, expand_grid, run_sweep
from repro.experiments.serve import SweepService
from repro.obs import metrics as obs_metrics
from repro.obs.collect import registry_baseline, registry_delta


@pytest.fixture()
def service(tmp_path):
    svc = SweepService(str(tmp_path / "results.jsonl"))
    host, port = svc.start("127.0.0.1", 0)
    svc.base = f"http://{host}:{port}"
    try:
        yield svc
    finally:
        svc.stop()


def _get(svc, path):
    try:
        with urllib.request.urlopen(svc.base + path, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(svc, payload):
    request = urllib.request.Request(
        svc.base + "/sweeps",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def _wait_done(svc, sweep_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _, body = _get(svc, f"/sweeps/{sweep_id}")
        if body["status"] in ("done", "failed"):
            return body
        time.sleep(0.05)
    raise AssertionError(f"sweep {sweep_id} never finished")


SPEC_A = {
    "scenarios": ["line-flood"],
    "adversaries": ["earliest", "latest"],
    "seeds": [0, 1],
    "horizon": 4,
}
SPEC_B = {
    "scenarios": ["line-flood"],
    "adversaries": ["latest", "random"],  # `latest` x {0,1} overlaps SPEC_A
    "seeds": [0, 1],
    "horizon": 4,
}


def _strip(record):
    return {k: v for k, v in record.items() if k not in ("duration_s", "cached")}


def test_concurrent_overlapping_sweeps_execute_each_cell_exactly_once(
    service, tmp_path
):
    union_keys = {
        cell.key()
        for spec in (SPEC_A, SPEC_B)
        for cell in expand_grid(
            spec["scenarios"],
            adversaries=spec["adversaries"],
            seeds=spec["seeds"],
            horizon=spec["horizon"],
        )
    }
    overlap = 2  # latest x seeds {0, 1}
    assert len(union_keys) == 6

    baseline = registry_baseline()
    accepted = []
    errors = []

    def client(spec):
        try:
            accepted.append(_post(service, spec))
        except Exception as exc:  # noqa: BLE001 - surfaced via the assert below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(spec,)) for spec in (SPEC_A, SPEC_B)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    finals = [_wait_done(service, body["sweep"]) for body in accepted]
    assert all(final["status"] == "done" for final in finals)
    assert all(final["cells"]["errors"] == 0 for final in finals)

    # Exactly-once across both clients: the union executed, the overlap
    # served as cache hits to whichever job ran second.
    delta = registry_delta(baseline)["counters"]
    assert delta.get("sweep.cells_executed", 0) == len(union_keys)
    assert delta.get("sweep.cells_cached", 0) == overlap
    executed = sum(final["cells"]["executed"] for final in finals)
    cached = sum(final["cells"]["cached"] for final in finals)
    assert executed == len(union_keys)
    assert cached == overlap

    # The store holds exactly one record per distinct cell...
    store = ResultStore(service.store_path)
    served = {
        record["key"]: _strip(record)
        for record in store.records()
        if record.get("status") == "ok"
    }
    assert set(served) == union_keys

    # ... identical to a serial sweep of the same union on a fresh store.
    serial_store = ResultStore(str(tmp_path / "serial.jsonl"))
    cells = [
        cell
        for spec in (SPEC_A, SPEC_B)
        for cell in expand_grid(
            spec["scenarios"],
            adversaries=spec["adversaries"],
            seeds=spec["seeds"],
            horizon=spec["horizon"],
        )
    ]
    outcome = run_sweep(cells, store=serial_store, backend="serial")
    assert outcome.errors == 0
    serial = {
        record["key"]: _strip(record)
        for record in outcome.records
        if record.get("status") == "ok"
    }
    assert served == serial


def test_results_survive_index_deletion_and_recompute_damaged_records(service):
    body = _post(
        service,
        {
            "scenarios": ["line-flood"],
            "adversaries": ["earliest"],
            "seeds": 2,
            "horizon": 4,
        },
    )
    _wait_done(service, body["sweep"])
    store = ResultStore(service.store_path)
    keys = sorted(
        record["key"] for record in store.records() if record.get("status") == "ok"
    )
    assert len(keys) == 2

    # The index is advisory: /results must stay correct without it.
    import os

    if os.path.exists(store.index_path):
        os.unlink(store.index_path)
    status, record = _get(service, f"/results/{keys[0]}")
    assert status == 200
    assert record["key"] == keys[0]

    # Damage the tail line of a known cell: the parse-or-drop read makes it
    # a miss, and serve degrades to recompute-and-supersede (never a wrong
    # or half-parsed record).
    victim = keys[1]
    with open(service.store_path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    damaged = [
        line if victim not in line else '{"torn": \n' for line in lines
    ]
    assert damaged != lines
    with open(service.store_path, "w", encoding="utf-8") as handle:
        handle.writelines(damaged)

    recomputes_before = obs_metrics.registry().snapshot()["counters"].get(
        "serve.recomputes", 0
    )
    status, record = _get(service, f"/results/{victim}")
    assert status == 200
    assert record["key"] == victim
    assert record["status"] == "ok"
    after = obs_metrics.registry().snapshot()["counters"]["serve.recomputes"]
    assert after == recomputes_before + 1

    # The recompute superseded the damaged line: the next read is a plain
    # store hit again.
    assert ResultStore(service.store_path).get(victim)["status"] == "ok"
