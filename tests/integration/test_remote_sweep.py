"""Integration tests for the distributed sweep fabric.

The acceptance bar from the issue: killed, hung, and slow-worker scenarios
each complete with per-cell results bit-identical to ``SerialExecutor``,
``handle`` fires exactly once per cell, and no sweep hangs past its lease
deadlines.  Worker kills run real ``repro worker`` subprocesses (SIGKILL
semantics are only honest cross-process); hang/slow/drop scenarios mix
subprocess and in-thread workers, and the coordinator always runs in-process
so the handler contract can be asserted directly.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.experiments import (
    ResultStore,
    SerialExecutor,
    expand_grid,
    faults,
    run_sweep,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.remote import RemoteExecutor, run_worker

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _grid(count=None):
    cells = expand_grid(
        ["line-flood", "tree-flood"],
        adversaries=["earliest", "latest"],
        seeds=[0, 1],
        horizon=4,
    )
    return cells if count is None else cells[:count]


def _strip(record):
    return {k: v for k, v in record.items() if k != "duration_s"}


def _serial_records(cells):
    records = {}
    SerialExecutor().execute(
        list(enumerate(cells)), lambda i, c, r: records.__setitem__(i, r)
    )
    return records


def _executor(**overrides):
    settings = dict(
        workers_hint=2,
        shard_size=2,
        lease_base_s=3.0,
        lease_cell_s=1.0,
        heartbeat_timeout_s=1.5,
        backoff_base_s=0.05,
        backoff_max_s=0.5,
        local_fallback_after_s=None,
        poll_s=0.02,
    )
    settings.update(overrides)
    return RemoteExecutor(**settings)


class _CountingHandler:
    """Asserts the exactly-once delivery contract as results arrive."""

    def __init__(self):
        self.records = {}
        self.calls = 0

    def __call__(self, index, cell, record):
        self.calls += 1
        assert index not in self.records, f"cell {index} delivered twice"
        self.records[index] = record


def _thread_worker(address, **kwargs):
    kwargs.setdefault("heartbeat_s", 0.2)
    kwargs.setdefault("connect_timeout_s", 15.0)
    thread = threading.Thread(
        target=run_worker,
        args=(f"{address[0]}:{address[1]}",),
        kwargs=kwargs,
        daemon=True,
    )
    thread.start()
    return thread


def _spawn_worker(address, *extra_args):
    env = {**os.environ, "PYTHONPATH": SRC_DIR}
    env.pop("REPRO_FAULTS", None)  # plans arrive via --faults only
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            f"{address[0]}:{address[1]}",
            "--heartbeat-s",
            "0.2",
            *extra_args,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


@pytest.fixture(autouse=True)
def _clean_fault_state():
    # In-thread workers mark this process as fault-scoped; undo it so the
    # rest of the test session (and pool-based tests) start clean.
    faults.reset()
    yield
    faults.reset()


class TestRemoteExecutor:
    def test_healthy_worker_matches_serial(self):
        cells = _grid()
        expected = _serial_records(cells)
        executor = _executor()
        handler = _CountingHandler()
        worker = _thread_worker(executor.address, worker_id="healthy")
        executor.execute(list(enumerate(cells)), handler)
        worker.join(timeout=10.0)
        assert not worker.is_alive()  # coordinator shutdown reached the worker
        assert handler.calls == len(cells)
        for index, record in expected.items():
            assert _strip(handler.records[index]) == _strip(record)
        summary = executor.fabric_summary()
        assert summary["completed"] == len(cells)
        assert summary["quarantined"] == 0

    def test_killed_worker_recovers_bit_identical(self):
        """SIGKILL one of two real worker processes mid-shard; the survivor
        finishes the sweep with results identical to serial execution."""
        cells = _grid()
        expected = _serial_records(cells)
        executor = _executor()
        handler = _CountingHandler()
        # The doomed worker joins first so it certainly takes a lease; leases
        # are only granted once execute() starts, so the steady worker is
        # launched from a side thread after the doomed one has died.
        doomed = _spawn_worker(
            executor.address, "--id", "doomed", "--faults", "kill@worker.shard:1"
        )
        procs = [doomed]

        def spawn_steady_after_kill():
            deadline = time.monotonic() + 10.0
            while doomed.poll() is None and time.monotonic() < deadline:
                time.sleep(0.05)
            procs.append(_spawn_worker(executor.address, "--id", "steady"))

        spawner = threading.Thread(target=spawn_steady_after_kill)
        spawner.start()
        try:
            executor.execute(list(enumerate(cells)), handler)
            spawner.join(timeout=15.0)
            assert doomed.poll() == -signal.SIGKILL  # the fault really fired
            steady = procs[1]
            assert steady.wait(timeout=10.0) == 0
        finally:
            spawner.join(timeout=15.0)
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
        assert handler.calls == len(cells)
        for index, record in expected.items():
            assert _strip(handler.records[index]) == _strip(record)
        summary = executor.fabric_summary()
        assert summary["counters"]["shard_retries"] >= 1
        assert summary["workers"]["doomed"]["alive"] is False

    def test_hung_worker_is_reaped_and_sweep_matches_serial(self):
        """A worker frozen mid-shard (heartbeats suppressed) is declared
        dead; a healthy worker re-covers its lease.  The sweep must not wait
        out the 30s hang."""
        cells = _grid()
        expected = _serial_records(cells)
        executor = _executor(heartbeat_timeout_s=0.8)
        handler = _CountingHandler()
        hung = _spawn_worker(
            executor.address, "--id", "hung", "--faults", "hang@worker.shard:1:30"
        )

        # Leases only flow once execute() starts, so the healthy worker joins
        # from a side thread after the hung one has had time to freeze on one.
        def spawn_steady_later():
            time.sleep(1.0)
            _thread_worker(executor.address, worker_id="steady")

        spawner = threading.Thread(target=spawn_steady_later)
        spawner.start()
        try:
            started = time.perf_counter()
            executor.execute(list(enumerate(cells)), handler)
            elapsed = time.perf_counter() - started
            spawner.join(timeout=10.0)
        finally:
            if hung.poll() is None:
                hung.kill()
        assert elapsed < 20  # far below the hang duration: liveness won
        assert handler.calls == len(cells)
        for index, record in expected.items():
            assert _strip(handler.records[index]) == _strip(record)
        assert executor.fabric_summary()["workers"]["hung"]["alive"] is False

    def test_slow_worker_matches_serial(self):
        cells = _grid(4)
        expected = _serial_records(cells)
        executor = _executor()
        handler = _CountingHandler()
        worker = _thread_worker(
            executor.address,
            worker_id="slow",
            faults_spec="slow@worker.cell:*:0.02",
        )
        executor.execute(list(enumerate(cells)), handler)
        worker.join(timeout=10.0)
        assert handler.calls == len(cells)
        for index, record in expected.items():
            assert _strip(handler.records[index]) == _strip(record)

    def test_dropped_connection_reconnects_and_completes(self):
        """An injected connection drop before the first result forces a
        reconnect; the lease expires and the shard is re-served."""
        cells = _grid(4)
        expected = _serial_records(cells)
        executor = _executor(lease_base_s=1.0, lease_cell_s=0.2)
        handler = _CountingHandler()
        worker = _thread_worker(
            executor.address,
            worker_id="flaky",
            faults_spec="drop@worker.result:1",
        )
        executor.execute(list(enumerate(cells)), handler)
        worker.join(timeout=10.0)
        assert handler.calls == len(cells)
        for index, record in expected.items():
            assert _strip(handler.records[index]) == _strip(record)
        # The drop severed one session: its lease was re-covered on retry
        # (via disconnect teardown or lease expiry, whichever won the race).
        assert executor.fabric_summary()["counters"]["shard_retries"] >= 1

    def test_no_workers_degrades_to_local_execution(self):
        cells = _grid(4)
        expected = _serial_records(cells)
        executor = _executor(local_fallback_after_s=0.3)
        handler = _CountingHandler()
        executor.execute(list(enumerate(cells)), handler)
        assert handler.calls == len(cells)
        for index, record in expected.items():
            assert _strip(handler.records[index]) == _strip(record)
        assert executor.fabric_summary()["counters"]["local_fallback_cells"] == len(
            cells
        )

    def test_unservable_cells_quarantine_instead_of_hanging(self):
        """A fleet whose only worker always freezes cannot finish cells; with
        max_cell_failures=1 the coordinator quarantines them as error records
        instead of hanging past its lease deadlines."""
        cells = _grid(2)
        executor = _executor(
            shard_size=2,  # one shard: the single freeze covers every cell
            lease_base_s=0.6,
            lease_cell_s=0.1,
            heartbeat_timeout_s=0.5,
            max_cell_failures=1,
        )
        handler = _CountingHandler()
        hung = _spawn_worker(
            executor.address, "--id", "wedged", "--faults", "hang@worker.shard:*:30"
        )
        try:
            started = time.perf_counter()
            executor.execute(list(enumerate(cells)), handler)
            elapsed = time.perf_counter() - started
        finally:
            if hung.poll() is None:
                hung.kill()
        assert elapsed < 20
        assert handler.calls == len(cells)
        assert all(r["status"] == "error" for r in handler.records.values())
        assert all("WorkerFailure" in r["error"] for r in handler.records.values())
        assert executor.fabric_summary()["quarantined"] == len(cells)


class TestRemoteSweepCli:
    """The CI shape: a `repro sweep --backend remote` coordinator process,
    two worker processes, one killed by the fault harness — the sweep
    finishes, results match serial, and `--resume` recomputes nothing."""

    def _start_coordinator(self, store_path):
        env = {**os.environ, "PYTHONPATH": SRC_DIR}
        env.pop("REPRO_FAULTS", None)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "sweep",
                "--scenario",
                "line-flood,tree-flood",
                "--adversary",
                "earliest,latest",
                "--seeds",
                "2",
                "--horizon",
                "4",
                "--backend",
                "remote",
                "--listen",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--shard-size",
                "2",
                "--lease-base-s",
                "3",
                "--lease-cell-s",
                "1",
                "--heartbeat-timeout-s",
                "1.5",
                "--local-fallback-s",
                "30",
                "--store",
                store_path,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        address = None
        for _ in range(20):  # the banner precedes any blocking work
            line = proc.stdout.readline()
            if not line:
                break
            if line.startswith("coordinator: listening on "):
                host, _, port = line.rpartition(" ")[2].strip().rpartition(":")
                address = (host, int(port))
                break
        assert address is not None, "coordinator never announced its address"
        return proc, address

    def test_kill_one_worker_sweep_completes_resume_recomputes_zero(self, tmp_path):
        cells = _grid()
        expected = _serial_records(cells)
        store_path = str(tmp_path / "results.jsonl")
        coordinator, address = self._start_coordinator(store_path)
        doomed = steady = None
        try:
            doomed = _spawn_worker(
                address, "--id", "doomed", "--faults", "kill@worker.shard:1"
            )
            deadline = time.monotonic() + 10.0
            while doomed.poll() is None and time.monotonic() < deadline:
                time.sleep(0.05)
            assert doomed.poll() == -signal.SIGKILL
            steady = _spawn_worker(address, "--id", "steady")
            assert coordinator.wait(timeout=60.0) == 0
            assert steady.wait(timeout=10.0) == 0
        finally:
            for proc in (coordinator, doomed, steady):
                if proc is not None and proc.poll() is None:
                    proc.kill()
        output = coordinator.stdout.read()

        store = ResultStore(store_path)
        by_key = {record["key"]: record for record in store.records()}
        for record in expected.values():
            assert _strip(by_key[record["key"]]) == _strip(record)
        telemetry = [r for r in store.records() if r.get("kind") == "sweep_telemetry"]
        assert len(telemetry) == 1, output
        fabric = telemetry[0]["fabric"]
        assert fabric["workers"]["doomed"]["alive"] is False
        assert fabric["counters"]["shard_retries"] >= 1

        # Recovery path: --resume over the same store recomputes nothing.
        resumed = run_sweep(cells, store=store, resume=True)
        assert resumed.executed == 0
        assert resumed.cached == len(cells)

    def test_chaos_smoke_mode(self, tmp_path, capsys):
        """`repro sweep --chaos` — the CI smoke invocation — completes with
        records identical to a serial sweep of the same grid."""
        store_path = str(tmp_path / "chaos.jsonl")
        serial_path = str(tmp_path / "serial.jsonl")
        base_args = [
            "sweep",
            "--scenario",
            "line-flood",
            "--adversary",
            "earliest,latest",
            "--seeds",
            "2",
            "--horizon",
            "4",
        ]
        assert cli_main(base_args + ["--backend", "serial", "--workers", "1",
                                     "--store", serial_path]) == 0
        assert cli_main(base_args + ["--backend", "sharded", "--workers", "2",
                                     "--shard-size", "1", "--chaos",
                                     "--store", store_path]) == 0
        capsys.readouterr()
        serial_store = ResultStore(serial_path)
        chaos_store = ResultStore(store_path)
        for record in serial_store.records():
            if record.get("kind") == "sweep_telemetry":
                continue
            assert _strip(chaos_store.get(record["key"])) == _strip(record)
        telemetry = [
            r for r in chaos_store.records() if r.get("kind") == "sweep_telemetry"
        ]
        assert telemetry and telemetry[0]["fabric"]["pool_restarts"] >= 1
