"""Integration tests for the sweep pipeline (the PR's acceptance criterion).

A >= 36-cell grid (3 scenarios x 3 delivery adversaries x 4 seeds) runs on a
2-worker process pool, persists to the JSONL store, and a second invocation
completes with 100% cache hits.  A subprocess test exercises the real
``python -m repro`` entry point, and a kill-and-resume test SIGKILLs a sweep
mid-flight and asserts that ``--resume`` recomputes zero completed cells.
"""

import json
import os
import signal
import subprocess
import sys
import time

import repro
from repro.experiments import ADVERSARIES, ResultStore, expand_grid, run_sweep
from repro.experiments.cli import DEFAULT_SWEEP_SCENARIOS, main as cli_main

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

def _grid():
    return expand_grid(
        list(DEFAULT_SWEEP_SCENARIOS),
        adversaries=list(ADVERSARIES),
        seeds=[0, 1, 2, 3],
    )


class TestSweepAcceptance:
    def test_parallel_sweep_then_full_cache_hit(self, tmp_path):
        cells = _grid()
        assert len(cells) >= 36  # 3 scenarios x 3 adversaries x 4 seeds

        store = ResultStore(str(tmp_path / "results.jsonl"))
        first = run_sweep(cells, store=store, workers=2)
        assert first.total == len(cells)
        assert first.executed == len(cells)
        assert first.errors == 0
        # One record per cell plus the sweep's telemetry record.
        assert len(store) == len(cells) + 1
        telemetry = store.get(first.telemetry["key"])
        assert telemetry is not None
        assert telemetry["kind"] == "sweep_telemetry"
        assert telemetry["status"] == "telemetry"

        # Second invocation: incremental, 100% cache hits, nothing executed.
        second = run_sweep(cells, store=store, workers=2)
        assert second.executed == 0
        assert second.cached == len(cells)
        assert second.cache_hit_rate == 1.0
        assert all(record.get("cached") for record in second.records)

        # Cached records are the persisted ones, byte-for-byte (minus the flag).
        for record in second.records:
            stored = store.get(record["key"])
            assert stored is not None
            assert {k: v for k, v in record.items() if k != "cached"} == stored

    def test_parallel_matches_serial(self, tmp_path):
        """Worker count must not change results (deterministic per-cell seeding)."""
        cells = _grid()[:6]
        serial_store = ResultStore(str(tmp_path / "serial.jsonl"))
        parallel_store = ResultStore(str(tmp_path / "parallel.jsonl"))
        run_sweep(cells, store=serial_store, workers=1)
        run_sweep(cells, store=parallel_store, workers=2)

        def strip(record):
            return {k: v for k, v in record.items() if k != "duration_s"}

        for cell in cells:
            key = cell.key()
            assert strip(serial_store.get(key)) == strip(parallel_store.get(key))

    def test_cli_sweep_twice_via_main(self, tmp_path, capsys):
        store_path = str(tmp_path / "results.jsonl")
        args = ["sweep", "--workers", "2", "--store", store_path]
        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "-> 36 cells" in out
        assert "36 executed, 0 cached" in out

        assert cli_main(args) == 0
        out = capsys.readouterr().out
        assert "0 executed, 36 cached" in out

        # The store holds analysable records for every cell (plus the sweep's
        # telemetry record, which carries a non-"ok" status).
        records = ResultStore(store_path).records()
        cell_records = [r for r in records if r["status"] == "ok"]
        assert len(cell_records) == 36
        assert len(records) == 37
        for record in cell_records:
            assert "summary" in record["analyses"]
            json.dumps(record)


class TestCliSubprocess:
    def _env(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def test_python_m_repro_sweep_dry_run(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "--dry-run"],
            capture_output=True,
            text=True,
            env=self._env(),
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "-> 36 cells" in result.stdout
        assert "dry run: nothing executed" in result.stdout

    def test_python_m_repro_sweep_backend_sharded(self, tmp_path):
        store_path = str(tmp_path / "results.jsonl")
        args = [
            sys.executable, "-m", "repro", "sweep",
            "--scenario", "line-flood", "--adversary", "earliest,random",
            "--seeds", "2", "--set", "horizon=5",
            "--backend", "sharded", "--workers", "2", "--store", store_path,
        ]
        result = subprocess.run(
            args, capture_output=True, text=True, env=self._env(), timeout=120
        )
        assert result.returncode == 0, result.stderr
        assert "[backend=sharded]" in result.stdout
        # 4 cell records + 1 telemetry record.
        assert len(ResultStore(store_path)) == 5

    def test_python_m_repro_list(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            env=self._env(),
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "torus-flood" in result.stdout


class TestKillAndResume:
    """A SIGKILLed sweep resumes via ``--resume`` with zero recomputed cells."""

    #: Heavy-ish cells (~50-100ms each) so the kill reliably lands mid-sweep.
    SWEEP_ARGS = [
        "sweep",
        "--scenario", "torus-flood",
        "--adversary", "random",
        "--seeds", "24",
        "--set", "rows=5",
        "--set", "cols=5",
        "--set", "horizon=16",
        "--workers", "2",
    ]

    def _cells(self):
        return expand_grid(
            ["torus-flood"],
            adversaries=["random"],
            seeds=range(24),
            param_grid={"rows": [5], "cols": [5], "horizon": [16]},
        )

    def test_kill_mid_sweep_then_resume(self, tmp_path, capsys):
        store_path = str(tmp_path / "results.jsonl")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *self.SWEEP_ARGS, "--store", store_path],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # Kill as soon as at least two cells have been persisted.
        deadline = time.time() + 120
        while time.time() < deadline and proc.poll() is None:
            if os.path.exists(store_path):
                with open(store_path, "rb") as handle:
                    if handle.read().count(b"\n") >= 2:
                        break
            time.sleep(0.005)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)

        # Simulate the worst crash shape deterministically: a torn final line
        # (the process died mid-append).
        with open(store_path, "ab") as handle:
            handle.write(b'{"key": "torn-by-sigkill')
        completed = set(ResultStore(store_path).keys())
        assert completed, "sweep was killed before persisting anything"

        cells = self._cells()
        recomputed = []
        outcome = run_sweep(
            cells,
            store=ResultStore(store_path),
            workers=2,
            resume=True,
            progress=lambda message: recomputed.append(message)
            if message.startswith("done:") else None,
        )
        # Zero recomputed cells: everything the killed run persisted is a
        # cache hit, and only the remainder executed.
        assert outcome.recovered_lines == 1
        assert outcome.errors == 0
        assert outcome.cached == len(completed)
        assert outcome.executed == len(cells) - len(completed)
        assert len(recomputed) == outcome.executed
        for record in outcome.records:
            if record["key"] in completed:
                assert record.get("cached") is True

        # The CLI path: a second --resume invocation is 100% cache hits.
        exit_code = cli_main([*self.SWEEP_ARGS, "--store", store_path, "--resume"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert f"0 executed, {len(cells)} cached" in out


class TestSegmentDamageResume:
    """``--resume`` self-heals segment corruption: a deliberately corrupted
    sealed record plus a deleted index cost exactly the damaged cells a
    recompute — every intact record stays a cache hit."""

    def test_corrupt_segment_and_deleted_index_resume(self, tmp_path):
        store_path = str(tmp_path / "results.jsonl")
        cells = expand_grid(
            ["line-flood"],
            adversaries=["earliest", "random"],
            seeds=range(4),
            param_grid={"horizon": [6]},
        )
        first = run_sweep(
            cells, store=ResultStore(store_path, rotate_bytes=1024), workers=2
        )
        assert first.executed == len(cells)
        seg_dir = store_path + ".segments"
        index_path = store_path + ".index.json"
        segments = sorted(os.listdir(seg_dir))
        assert segments and os.path.exists(index_path)
        keys_before = set(ResultStore(store_path, rotate_bytes=1024).keys())

        # Flip one byte mid-record in the first segment; delete the index.
        seg_path = os.path.join(seg_dir, segments[0])
        with open(seg_path, "rb") as handle:
            lines = handle.read().split(b"\n")
        line = bytearray(lines[1])  # first record line, after the meta line
        line[len(line) // 2] ^= 0xFF
        lines[1] = bytes(line)
        with open(seg_path, "wb") as handle:
            handle.write(b"\n".join(lines))
        os.unlink(index_path)

        # The rebuilt index drops exactly the CRC-failed record(s).
        damaged = keys_before - set(ResultStore(store_path, rotate_bytes=1024).keys())
        assert damaged
        cell_keys = {cell.key() for cell in cells}
        assert damaged <= cell_keys  # the telemetry record was not the victim

        outcome = run_sweep(
            cells,
            store=ResultStore(store_path, rotate_bytes=1024),
            workers=2,
            resume=True,
        )
        assert outcome.errors == 0
        assert outcome.executed == len(damaged)
        assert outcome.cached == len(cells) - len(damaged)

        # The recomputed records superseded the corrupt ones: whole again.
        assert cell_keys <= set(ResultStore(store_path, rotate_bytes=1024).keys())
