"""Integration tests: each paper figure reproduced end-to-end on the simulator.

These are the test-suite counterparts of the benchmark harness: they simulate
each figure's communication pattern and assert the qualitative claim the paper
makes about it.
"""

import pytest

from repro.core import (
    ExtendedBoundsGraph,
    KnowledgeChecker,
    TwoLeggedFork,
    ZigzagPattern,
    basic_bounds_graph,
    check_theorem1,
    general,
    is_visible_zigzag,
)
from repro.coordination import evaluate, late_task
from repro.scenarios import (
    figure1_guaranteed_margin,
    figure1_scenario,
    figure2a_scenario,
    figure2b_scenario,
    figure3_fork_weight,
    figure3_scenario,
    figure4_scenario,
    zigzag_chain_equation_weight,
)
from repro.simulation import SeededRandomDelivery


class TestFigure1:
    """A single fork guarantees `a --(L_CB - U_CA)--> b` without A<->B traffic."""

    @pytest.mark.parametrize("seed", range(5))
    def test_margin_guaranteed_under_random_adversaries(self, seed):
        scenario = figure1_scenario(delivery=SeededRandomDelivery(seed=seed))
        run = scenario.run()
        margin = figure1_guaranteed_margin(scenario)
        gap = run.action_time("B", "b") - run.action_time("A", "a")
        assert gap >= margin

    def test_no_messages_between_a_and_b(self):
        run = figure1_scenario().run()
        for record in run.deliveries:
            assert {record.sender, record.destination} != {"A", "B"}

    def test_fork_is_the_witnessing_zigzag(self):
        scenario = figure1_scenario()
        run = scenario.run()
        go_node = run.external_deliveries[0].receiver_node
        fork = TwoLeggedFork(general(go_node), ("C", "B"), ("C", "A"))
        pattern = ZigzagPattern((fork,))
        report = check_theorem1(run, pattern)
        assert report.valid_pattern and report.holds
        assert report.weight == figure1_guaranteed_margin(scenario)


class TestFigure2a:
    """Equation (1): the two-fork zigzag bounds how early b can occur."""

    @pytest.mark.parametrize("seed", range(5))
    def test_equation1_margin_holds(self, seed):
        scenario = figure2a_scenario(delivery=SeededRandomDelivery(seed=seed))
        run = scenario.run()
        weight = zigzag_chain_equation_weight(scenario, 2)
        gap = run.action_time("B", "b") - run.action_time("A", "a")
        assert gap >= weight

    def test_longest_path_justifies_equation1(self):
        """Figure 7: the bounds-graph path realises exactly the Equation (1) weight."""
        scenario = figure2a_scenario()
        run = scenario.run()
        graph = basic_bounds_graph(run)
        a_node = run.find_action("A", "a").node
        b_node = run.find_action("B", "b").node
        weight = graph.longest_path_weight(a_node, b_node)
        # The longest path includes the pivot's one-step separation, hence >= Eq.(1).
        assert weight >= zigzag_chain_equation_weight(scenario, 2)

    def test_b_cannot_know_the_margin_without_reports(self):
        """Without D -> B reports the zigzag is invisible to B.

        In Figure 2a B never hears (even indirectly) from C or D, so the node at
        which A acts is not even recognized at B's action node -- B cannot know
        the Equation (1) precedence, exactly as the paper argues.
        """
        from repro.core import is_recognized

        scenario = figure2a_scenario()
        run = scenario.run()
        sigma = run.find_action("B", "b").node
        go_node = next(r.receiver_node for r in run.external_deliveries if r.process == "C")
        theta_a = general(go_node, ("C", "A"))
        assert not is_recognized(theta_a, sigma)


class TestFigure2b:
    """The visible zigzag lets B act safely at the optimal moment."""

    @pytest.mark.parametrize("margin", [1, 3, 5, 7])
    def test_optimal_protocol_meets_every_achievable_margin(self, margin):
        scenario = figure2b_scenario(margin=margin)
        run = scenario.run()
        outcome = evaluate(run, late_task(margin))
        assert outcome.b_performed
        assert outcome.satisfied

    def test_action_time_monotone_in_margin(self):
        times = []
        for margin in (1, 3, 8):
            run = figure2b_scenario(margin=margin).run()
            times.append(run.action_time("B", "b"))
        assert all(t is not None for t in times)
        assert times == sorted(times)

    def test_witnessing_visible_zigzag_exists(self):
        scenario = figure2b_scenario(margin=5)
        run = scenario.run()
        sigma = run.find_action("B", "b").node
        externals = {r.process: r.receiver_node for r in run.external_deliveries}
        pattern = ZigzagPattern(
            (
                TwoLeggedFork(general(externals["C"]), ("C", "D"), ("C", "A")),
                TwoLeggedFork(general(externals["E"]), ("E", "B"), ("E", "D")),
            )
        )
        assert is_visible_zigzag(pattern, sigma, run)
        assert pattern.weight(run) >= 5

    def test_knowledge_at_action_node_meets_margin(self):
        margin = 6
        scenario = figure2b_scenario(margin=margin)
        run = scenario.run()
        sigma = run.find_action("B", "b").node
        go_node = next(r.receiver_node for r in run.external_deliveries if r.process == "C")
        theta_a = general(go_node, ("C", "A"))
        assert KnowledgeChecker(sigma, run.timed_network).knows(theta_a, sigma, margin)


class TestFigure3:
    @pytest.mark.parametrize("head_hops,tail_hops", [(1, 1), (2, 2), (3, 1), (2, 3)])
    def test_multi_hop_fork_weight_is_respected(self, head_hops, tail_hops):
        scenario = figure3_scenario(head_hops=head_hops, tail_hops=tail_hops)
        run = scenario.run()
        weight = figure3_fork_weight(scenario, head_hops, tail_hops)
        gap = run.action_time("B", "b") - run.action_time("A", "a")
        assert gap >= weight


class TestFigure4:
    def test_three_fork_visible_zigzag_supports_action(self):
        scenario = figure4_scenario(margin=4)
        run = scenario.run()
        outcome = evaluate(run, late_task(4))
        assert outcome.b_performed and outcome.satisfied


class TestFigure6:
    def test_bound_edges_of_a_single_message(self, figure6_run):
        graph = basic_bounds_graph(figure6_run)
        net = figure6_run.timed_network
        delivery = figure6_run.deliveries[0]
        forward = [
            e
            for e in graph.out_edges(delivery.sender_node)
            if e.target == delivery.receiver_node
        ]
        backward = [
            e
            for e in graph.out_edges(delivery.receiver_node)
            if e.target == delivery.sender_node
        ]
        assert forward[0].weight == net.L("i", "j")
        assert backward[0].weight == -net.U("i", "j")


class TestFigure8:
    def test_extended_graph_structure(self, figure8_run):
        sigma = figure8_run.final_node("i")
        extended = ExtendedBoundsGraph(sigma, figure8_run.timed_network)
        summary = extended.edge_summary()
        assert summary["aux"] >= 1
        assert summary["flooding"] == len(figure8_run.timed_network.channels)
        assert summary.get("undelivered", 0) >= 1
        assert not extended.graph.has_positive_cycle()
