"""End-to-end integration tests: simulate -> analyse -> decide -> verify."""

import pytest

from repro.core import (
    KnowledgeChecker,
    basic_bounds_graph,
    check_theorem3,
    general,
    local_bounds_graph,
    verify_against_run,
)
from repro.coordination import (
    ChainLowerBoundProtocol,
    LocalGraphProtocol,
    NeverActProtocol,
    OptimalCoordinationProtocol,
    evaluate,
    late_task,
    summarise,
)
from repro.scenarios import (
    figure2b_scenario,
    random_workload,
    workload_scenario,
    zigzag_chain_scenario,
)
from repro.simulation import SeededRandomDelivery


class TestFullPipeline:
    def test_simulate_analyse_act_verify(self):
        """The quickstart pipeline: every stage is consistent with the others."""
        margin = 4
        task = late_task(margin)
        scenario = figure2b_scenario(margin=margin)
        run = scenario.run()

        # 1. The run is legal and its bounds graph is consistent with it.
        run.validate()
        ok, message = verify_against_run(basic_bounds_graph(run), run)
        assert ok, message

        # 2. B acted, and at its action node it knew the required precedence.
        outcome = evaluate(run, task)
        assert outcome.b_performed and outcome.satisfied
        report = check_theorem3(
            run, actor="B", action="b", go_sender="C", go_recipient="A", margin=margin, late=True
        )
        assert report.holds

        # 3. The knowledge that justified the action is reproducible offline.
        sigma = run.find_action("B", "b").node
        go_node = next(r.receiver_node for r in run.external_deliveries if r.process == "C")
        checker = KnowledgeChecker(sigma, run.timed_network)
        assert checker.knows(general(go_node, ("C", "A")), sigma, margin)

        # 4. One step earlier, the knowledge did not yet hold (optimality).
        predecessor = run.predecessor(sigma)
        if predecessor is not None and not predecessor.is_initial:
            earlier_checker = KnowledgeChecker(predecessor, run.timed_network)
            if go_node in run.past(predecessor):
                assert not earlier_checker.knows(
                    general(go_node, ("C", "A")), predecessor, margin
                )

    @pytest.mark.parametrize("seed", range(4))
    def test_random_workloads_are_always_safe(self, seed):
        """On random networks, every protocol in the suite is safe (never violates)."""
        margin = 2
        task = late_task(margin)
        workload = random_workload(num_processes=5, seed=seed)
        task = late_task(
            margin,
            actor_a=workload.actor_a,
            actor_b=workload.actor_b,
            go_sender=workload.go_sender,
        )
        outcomes = []
        for protocol_cls in (
            OptimalCoordinationProtocol,
            LocalGraphProtocol,
            ChainLowerBoundProtocol,
            NeverActProtocol,
        ):
            scenario = workload_scenario(workload, b_protocol=protocol_cls(task), horizon=30)
            run = scenario.run()
            outcomes.append(evaluate(run, task))
        summary = summarise(outcomes)
        assert summary.safe

    def test_optimal_acts_no_later_than_local_graph_ablation(self):
        """The auxiliary-node reasoning can only help (never hurts) action time."""
        for margin in (1, 2, 3):
            task = late_task(margin)
            optimal = zigzag_chain_scenario(
                num_forks=2, with_reports=True, b_protocol=OptimalCoordinationProtocol(task)
            ).run()
            local = zigzag_chain_scenario(
                num_forks=2, with_reports=True, b_protocol=LocalGraphProtocol(task)
            ).run()
            t_optimal = optimal.action_time("B", "b")
            t_local = local.action_time("B", "b")
            if t_local is not None:
                assert t_optimal is not None and t_optimal <= t_local

    def test_local_graph_equals_local_bounds_analysis(self):
        """The ablation's knowledge agrees with a hand-built local bounds graph query."""
        margin = 2
        task = late_task(margin)
        scenario = zigzag_chain_scenario(
            num_forks=2, with_reports=True, b_protocol=LocalGraphProtocol(task)
        )
        run = scenario.run()
        record = run.find_action("B", "b")
        if record is None:
            pytest.skip("the ablation never acted on this workload")
        sigma = record.node
        graph = local_bounds_graph(sigma, run.timed_network)
        assert sigma in graph

    @pytest.mark.parametrize("delivery_seed", range(3))
    def test_adversarial_delivery_never_breaks_safety(self, delivery_seed):
        margin = 5
        task = late_task(margin)
        scenario = figure2b_scenario(margin=margin)
        run = scenario.with_delivery(SeededRandomDelivery(seed=delivery_seed)).run()
        outcome = evaluate(run, task)
        assert outcome.satisfied
