"""Golden-corpus regression: runs and knowledge answers are bit-identical.

Every registered scenario has a recorded default-parameter run and the
KnowledgeChecker answers derived from it under ``tests/data/golden/``
(written by ``scripts/regenerate_golden.py``).  These tests re-execute each
scenario with the current code and require the canonical JSON -- simulator
output, ``Run.to_dict`` wire format, and every recorded knowledge gap -- to
match the stored bytes exactly.  A failure means observable behaviour moved:
either fix the regression or deliberately regenerate the corpus and review
the diff.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.golden import (
    GOLDEN_FORMAT_VERSION,
    golden_json,
    corpus_path,
    golden_payload,
    knowledge_answers,
    load_payload,
)
from repro.scenarios import get_scenario, list_scenarios
from repro.simulation import Run

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "data" / "golden"

ALL_SCENARIOS = list_scenarios()


def test_corpus_covers_every_registered_scenario():
    recorded = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert recorded == set(ALL_SCENARIOS), (
        "golden corpus out of sync with the scenario registry; "
        "run scripts/regenerate_golden.py"
    )


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_golden_file_is_bit_identical(name):
    """Re-executing the scenario reproduces the stored bytes exactly."""
    stored = corpus_path(GOLDEN_DIR, name).read_text(encoding="utf-8")
    fresh = golden_json(golden_payload(name))
    assert stored == fresh, (
        f"golden corpus drift for scenario {name!r}; "
        "run scripts/regenerate_golden.py and review the diff"
    )


@pytest.mark.parametrize("name", ALL_SCENARIOS)
def test_knowledge_answers_reproduce_from_deserialized_run(name):
    """KnowledgeChecker answers match the corpus even off a deserialized run.

    This decouples the knowledge machinery from the simulator: the run is
    reconstructed from the stored wire format alone, so agreement here means
    serialization is lossless *and* the batched longest-path engine answers
    the recorded queries identically.
    """
    payload = load_payload(corpus_path(GOLDEN_DIR, name))
    assert payload["format"] == GOLDEN_FORMAT_VERSION
    run = Run.from_dict(payload["run"])
    assert knowledge_answers(run) == payload["knowledge"]


def test_recorded_params_match_current_defaults():
    """Parameter defaults are part of the recorded contract."""
    for name in ALL_SCENARIOS:
        payload = load_payload(corpus_path(GOLDEN_DIR, name))
        stored = json.loads(json.dumps(get_scenario(name).defaults()))
        assert payload["params"] == stored, name
