"""Baseline protocols for process B, used for comparison with Protocol 2.

The paper motivates zigzag causality by contrasting it with what simpler kinds
of reasoning can achieve.  Three baselines are provided, ordered by the amount
of timing information they exploit:

* :class:`NeverActProtocol` -- B never acts.  Trivially safe, never useful;
  the floor for action-rate comparisons.
* :class:`ChainLowerBoundProtocol` -- the asynchronous-style solution for
  ``Late``: B acts only after it has *seen* (via a message chain) that ``a``
  was performed, and only once the lower bounds accumulated along observed
  chains from the action node reach the margin.  It uses no upper bounds at
  all, and can never solve ``Early``.
* :class:`LocalGraphProtocol` -- Protocol 2 restricted to the local bounds
  graph ``GB(r, sigma)`` plus the go-to-A chain, i.e. without the extended
  graph's auxiliary-node ("over the horizon") reasoning.  This corresponds to
  using forks and zigzags whose evidence has fully arrived, and is the
  ablation showing what the extended bounds graph buys.

All baselines keep FFIP communication so that the comparison isolates the
decision rule.
"""

from __future__ import annotations

from typing import Optional

from ..core.bounds_graph import LOWER_EDGE, SUCCESSOR_EDGE, local_bounds_graph
from ..core.causality import past_nodes
from ..core.graph import WeightedGraph
from ..core.nodes import BasicNode
from ..simulation.messages import LocalAction
from ..simulation.protocols import Protocol, StepContext, StepDecision
from .optimal import OptimalCoordinationProtocol
from .tasks import CoordinationTask


class NeverActProtocol(Protocol):
    """B floods but never performs ``b``; the degenerate safe baseline."""

    def __init__(self, task: CoordinationTask):
        self.task = task

    def on_step(self, ctx: StepContext) -> StepDecision:
        return StepDecision.flood()


def find_action_node(sigma: BasicNode, process: str, action: str) -> Optional[BasicNode]:
    """The earliest node of ``process`` in ``sigma``'s past whose step performs ``action``."""
    best: Optional[BasicNode] = None
    for node in past_nodes(sigma):
        if node.process != process or node.is_initial:
            continue
        if any(
            isinstance(obs, LocalAction) and obs.name == action
            for obs in node.history.last_step
        ):
            if best is None or node.step_count < best.step_count:
                best = node
    return best


def chain_lower_bound(sigma: BasicNode, source: BasicNode, ctx: StepContext) -> Optional[int]:
    """The best lower bound on ``time(sigma) - time(source)`` using chains only.

    Restricts the local bounds graph to its non-negative edges (message lower
    bounds and successor steps) and returns the longest such path from
    ``source`` to ``sigma`` -- exactly what a process can conclude from
    Lamport causality plus per-channel lower bounds, with no use of upper
    bounds anywhere.
    """
    graph = local_bounds_graph(sigma, ctx.timed_network)
    restricted: WeightedGraph[BasicNode] = WeightedGraph()
    for node in graph.nodes:
        restricted.add_node(node)
    for edge in graph.edges:
        if edge.label in (LOWER_EDGE, SUCCESSOR_EDGE):
            restricted.add_edge(edge.source, edge.target, edge.weight, edge.label)
    if source not in restricted or sigma not in restricted:
        return None
    return restricted.longest_path_weight(source, sigma)


class ChainLowerBoundProtocol(Protocol):
    """The message-chain baseline for ``Late<a --x--> b>``.

    B acts once it has seen, through a message chain, that ``a`` has been
    performed and the chain's accumulated lower bounds guarantee the margin.
    For ``Early`` tasks this protocol never acts (the asynchronous approach
    cannot place ``b`` before an action it has not yet heard about).
    """

    def __init__(self, task: CoordinationTask):
        self.task = task

    def on_step(self, ctx: StepContext) -> StepDecision:
        history = ctx.tentative_history
        if history.has_action(self.task.action_b) or self.task.is_early:
            return StepDecision.flood()
        sigma = BasicNode(ctx.process, history)
        a_node = find_action_node(sigma, self.task.actor_a, self.task.action_a)
        if a_node is None:
            return StepDecision.flood()
        bound = chain_lower_bound(sigma, a_node, ctx)
        if bound is not None and bound >= self.task.margin:
            return StepDecision.flood([self.task.action_b])
        return StepDecision.flood()


class LocalGraphProtocol(OptimalCoordinationProtocol):
    """Protocol 2 without the extended graph's auxiliary nodes.

    Sound (it only ever uses valid constraints) but incomplete: it misses
    knowledge that derives from messages known to be in flight beyond B's
    view, so on some workloads it acts later than the optimal protocol or not
    at all.
    """

    def __init__(self, task: CoordinationTask):
        super().__init__(task, include_auxiliary=False)
