"""The timed coordination tasks of Definition 1: ``Early`` and ``Late``.

Processes A, B and C play fixed roles: C spontaneously receives the external
trigger ``mu_go`` and thereupon sends a "go" message to A; A performs the
action ``a`` when it receives the go message; and B must perform ``b`` in a
manner temporally coordinated with ``a``:

* ``Late<a --x--> b>``  -- ``b`` at least ``x`` time units *after* ``a``;
* ``Early<b --x--> a>`` -- ``b`` at least ``x`` time units *before* ``a``;

and in both cases ``b`` may be performed in a run only if ``a`` is performed.
A is unconditional; only B's behaviour is interesting, and the paper
characterises the optimal rule for it (Protocols 1 and 2), implemented in
:mod:`repro.coordination.optimal`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple, TYPE_CHECKING

from ..core.nodes import BasicNode, GeneralNode, general
from ..simulation.messages import GO_TRIGGER
from ..simulation.network import Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.runs import Run


@dataclass(frozen=True)
class CoordinationTask:
    """A timed coordination task between A's action ``a`` and B's action ``b``.

    ``kind`` is ``"late"`` for ``Late<a --margin--> b>`` and ``"early"`` for
    ``Early<b --margin--> a>``.
    """

    kind: str
    margin: int
    actor_a: Process = "A"
    actor_b: Process = "B"
    go_sender: Process = "C"
    action_a: str = "a"
    action_b: str = "b"
    go_trigger: str = GO_TRIGGER

    def __post_init__(self) -> None:
        if self.kind not in ("late", "early"):
            raise ValueError(f"task kind must be 'late' or 'early', got {self.kind!r}")

    @property
    def is_late(self) -> bool:
        return self.kind == "late"

    @property
    def is_early(self) -> bool:
        return self.kind == "early"

    def describe(self) -> str:
        if self.is_late:
            return f"Late<{self.action_a} --{self.margin}--> {self.action_b}>"
        return f"Early<{self.action_b} --{self.margin}--> {self.action_a}>"

    # -- structural helpers ----------------------------------------------------

    def go_node(self, run: "Run") -> Optional[BasicNode]:
        """The node ``sigma_C`` at which C receives the trigger (and sends go)."""
        for record in run.external_deliveries:
            if record.process == self.go_sender and record.tag == self.go_trigger:
                return record.receiver_node
        return None

    def action_node_a(self, run: "Run") -> Optional[GeneralNode]:
        """``sigma_C . A``: the general node at which A performs ``a``."""
        go = self.go_node(run)
        if go is None:
            return None
        return general(go, (self.go_sender, self.actor_a))

    def required_precedence(
        self, run: "Run", b_node: BasicNode
    ) -> Optional[Tuple[GeneralNode, GeneralNode]]:
        """The (earlier, later) pair whose precedence by ``margin`` B must know.

        For ``Late`` the pair is ``(sigma_C . A, sigma_b)``; for ``Early`` it
        is ``(sigma_b, sigma_C . A)``.  Returns ``None`` when no go was sent.
        """
        theta_a = self.action_node_a(run)
        if theta_a is None:
            return None
        theta_b = general(b_node)
        if self.is_late:
            return theta_a, theta_b
        return theta_b, theta_a


def late_task(margin: int, **roles) -> CoordinationTask:
    """``Late<a --margin--> b>`` with optional role overrides."""
    return CoordinationTask(kind="late", margin=margin, **roles)


def early_task(margin: int, **roles) -> CoordinationTask:
    """``Early<b --margin--> a>`` with optional role overrides."""
    return CoordinationTask(kind="early", margin=margin, **roles)


@dataclass(frozen=True)
class TaskOutcome:
    """How one run fared against a coordination task."""

    task: CoordinationTask
    a_time: Optional[int]
    b_time: Optional[int]
    go_time: Optional[int]

    @property
    def a_performed(self) -> bool:
        return self.a_time is not None

    @property
    def b_performed(self) -> bool:
        return self.b_time is not None

    @property
    def vacuous(self) -> bool:
        """B never acted; the specification is then trivially met."""
        return not self.b_performed

    @property
    def satisfied(self) -> bool:
        """Whether the run satisfies the task's specification.

        ``b`` only if ``a`` (within the simulated horizon), and the timing
        constraint between the two action times.
        """
        if not self.b_performed:
            return True
        if not self.a_performed:
            return False
        assert self.a_time is not None and self.b_time is not None
        if self.task.is_late:
            return self.b_time >= self.a_time + self.task.margin
        return self.a_time >= self.b_time + self.task.margin

    @property
    def achieved_margin(self) -> Optional[int]:
        """The realised separation, oriented so larger is better (``None`` if unmeasured)."""
        if self.a_time is None or self.b_time is None:
            return None
        if self.task.is_late:
            return self.b_time - self.a_time
        return self.a_time - self.b_time

    def describe(self) -> str:
        return (
            f"{self.task.describe()}: go={self.go_time}, a={self.a_time}, b={self.b_time}, "
            f"satisfied={self.satisfied}"
        )


def evaluate(run: "Run", task: CoordinationTask) -> TaskOutcome:
    """Evaluate one finished run against a coordination task."""
    go = task.go_node(run)
    go_time = run.time_of(go) if go is not None else None
    a_time = run.action_time(task.actor_a, task.action_a)
    b_time = run.action_time(task.actor_b, task.action_b)
    return TaskOutcome(task=task, a_time=a_time, b_time=b_time, go_time=go_time)


def evaluate_many(runs: Iterable["Run"], task: CoordinationTask) -> Tuple[TaskOutcome, ...]:
    return tuple(evaluate(run, task) for run in runs)


@dataclass
class OutcomeSummary:
    """Aggregate statistics over many task outcomes (one protocol, many runs)."""

    total: int = 0
    acted: int = 0
    violations: int = 0
    margins: list = field(default_factory=list)
    b_times: list = field(default_factory=list)

    def record(self, outcome: TaskOutcome) -> None:
        self.total += 1
        if outcome.b_performed:
            self.acted += 1
            self.b_times.append(outcome.b_time)
            if outcome.achieved_margin is not None:
                self.margins.append(outcome.achieved_margin)
        if not outcome.satisfied:
            self.violations += 1

    @property
    def action_rate(self) -> float:
        return self.acted / self.total if self.total else 0.0

    @property
    def mean_b_time(self) -> Optional[float]:
        return sum(self.b_times) / len(self.b_times) if self.b_times else None

    @property
    def mean_margin(self) -> Optional[float]:
        return sum(self.margins) / len(self.margins) if self.margins else None

    @property
    def safe(self) -> bool:
        return self.violations == 0


def summarise(outcomes: Iterable[TaskOutcome]) -> OutcomeSummary:
    summary = OutcomeSummary()
    for outcome in outcomes:
        summary.record(outcome)
    return summary
