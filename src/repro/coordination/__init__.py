"""Coordination layer: the Early/Late tasks, Protocol 2, and baselines."""

from .baselines import (
    ChainLowerBoundProtocol,
    LocalGraphProtocol,
    NeverActProtocol,
    chain_lower_bound,
    find_action_node,
)
from .optimal import EagerKnowledgeProbe, OptimalCoordinationProtocol, find_go_node
from .planner import (
    ForkPlan,
    best_fork_plan,
    earliest_guaranteed_action_offset,
    guaranteed_margin,
    is_statically_solvable,
    optimistic_margin,
)
from .tasks import (
    CoordinationTask,
    OutcomeSummary,
    TaskOutcome,
    early_task,
    evaluate,
    evaluate_many,
    late_task,
    summarise,
)

__all__ = [
    "ChainLowerBoundProtocol",
    "CoordinationTask",
    "EagerKnowledgeProbe",
    "ForkPlan",
    "LocalGraphProtocol",
    "NeverActProtocol",
    "OptimalCoordinationProtocol",
    "OutcomeSummary",
    "TaskOutcome",
    "best_fork_plan",
    "chain_lower_bound",
    "early_task",
    "earliest_guaranteed_action_offset",
    "evaluate",
    "evaluate_many",
    "find_action_node",
    "find_go_node",
    "guaranteed_margin",
    "is_statically_solvable",
    "late_task",
    "optimistic_margin",
    "summarise",
]
