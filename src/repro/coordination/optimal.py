"""Protocol 2: the optimal zigzag-based protocol for process B.

By Theorem 3, B may perform ``b`` only when it *knows* the required timed
precedence between its current node and the node at which A performs ``a``;
by Theorem 4 that knowledge is equivalent to the existence of a sigma-visible
zigzag of sufficient weight, whose quantitative form is a longest constraint
path in the extended bounds graph.  The protocol below therefore acts exactly
when the knowledge condition first holds, which the paper shows is optimal:
no correct protocol can ever act earlier, and acting at that point is safe.

Because the guard is re-evaluated at every scheduling step and B's causal
past only ever grows along its timeline, both the protocol and the offline
probe carry one :class:`~repro.core.knowledge_session.KnowledgeSession`
across steps: each step pays for the causal-past *delta* (plus a cheap
re-anchoring of the auxiliary layer) instead of rebuilding the extended
bounds graph from scratch, and the go node is memoized rather than re-scanned
from the full past.  Sessions self-reset on a new run, a different observer,
or an intern-pool swap, so protocol instances stay freely reusable.

The same class, with ``include_auxiliary=False``, yields the *local-graph*
ablation used in benchmarks: it reasons only from messages already seen to
arrive, foregoing the paper's "over the horizon" auxiliary-node inferences,
and is therefore sometimes strictly slower to act.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core.knowledge_session import KnowledgeSession
from ..core.nodes import BasicNode, general
from ..simulation.messages import ExternalReceipt, GO_TRIGGER
from ..simulation.network import TimedNetwork
from ..simulation.protocols import Protocol, StepContext, StepDecision
from .tasks import CoordinationTask


def find_go_node(
    sigma: BasicNode, go_sender: str, go_trigger: str = GO_TRIGGER
) -> Optional[BasicNode]:
    """The node at which C received the trigger, if it lies in ``sigma``'s past.

    Under an FFIP, B learns of C's go through flooding; the go node is the
    C-node whose last step contains the external receipt of the trigger.
    This is the from-scratch reference (one full scan of ``past(sigma)``);
    the protocol and probe below use the memoized
    :meth:`KnowledgeSession.find_go_node`, which scans each past node at
    most once across a whole timeline and degrades to a single ``in_past``
    bit probe once the go node is found.
    """
    from ..core.causality import past_nodes

    for node in past_nodes(sigma):
        if node.process != go_sender or node.is_initial:
            continue
        if any(
            isinstance(obs, ExternalReceipt) and obs.tag == go_trigger
            for obs in node.history.last_step
        ):
            return node
    return None


class _SessionHolder:
    """Shared session management for the protocol and the offline probe."""

    def __init__(self, task: CoordinationTask, include_auxiliary: bool = True):
        self.task = task
        self.include_auxiliary = include_auxiliary
        self._session: Optional[KnowledgeSession] = None

    def _session_at(
        self, sigma: BasicNode, timed_network: TimedNetwork
    ) -> KnowledgeSession:
        """The session advanced to ``sigma``, recreated on a network change."""
        return self._session_over((sigma,), timed_network)

    def _session_over(
        self, sigmas: Sequence[BasicNode], timed_network: TimedNetwork
    ) -> KnowledgeSession:
        """The session advanced through a chunk ending at ``sigmas[-1]``.

        Every consumer routes through :meth:`KnowledgeSession.advance_many`
        here -- the per-step protocol with one-node chunks, the offline probe
        with whole timeline chunks.  Run/observer/pool changes are handled
        inside the session (it resets itself); only a different timed network
        requires a new session object.
        """
        session = self._session
        if session is None or session.timed_network is not timed_network:
            session = KnowledgeSession(
                timed_network, include_auxiliary=self.include_auxiliary
            )
            self._session = session
        return session.advance_many(sigmas)

    def _guard_holds(self, session: KnowledgeSession, sigma: BasicNode) -> bool:
        """Protocol 2's knowledge condition at the session's current node."""
        go_node = session.find_go_node(self.task.go_sender, self.task.go_trigger)
        if go_node is None:
            return False
        theta_a = general(go_node, (self.task.go_sender, self.task.actor_a))
        if self.task.is_late:
            return session.knows(theta_a, sigma, self.task.margin)
        return session.knows(sigma, theta_a, self.task.margin)


class OptimalCoordinationProtocol(_SessionHolder, Protocol):
    """B's optimal protocol for an ``Early`` or ``Late`` coordination task.

    On every step B floods (FFIP communication) and performs ``b`` as soon as

    * it has not performed ``b`` yet,
    * the go node ``sigma_C`` is in its causal past, and
    * it knows the required precedence between ``sigma_C . A`` and its current
      node with margin at least the task's ``x``.

    The knowledge test is evaluated at the tentative node (receipts of the
    current step included, the action itself not yet appended); appending the
    action does not change the node's timing information, so this matches the
    paper's "act at sigma" formulation.
    """

    # -- the decision rule -------------------------------------------------------

    def should_act(self, sigma: BasicNode, ctx: StepContext) -> bool:
        """Protocol 2's guard, evaluated at the (tentative) node ``sigma``."""
        session = self._session_at(sigma, ctx.timed_network)
        return self._guard_holds(session, sigma)

    def on_step(self, ctx: StepContext) -> StepDecision:
        history = ctx.tentative_history
        if history.has_action(self.task.action_b):
            return StepDecision.flood()
        sigma = BasicNode(ctx.process, history)
        if self.should_act(sigma, ctx):
            return StepDecision.flood([self.task.action_b])
        return StepDecision.flood()


#: Timeline steps absorbed per session chunk during offline probe replays.
PROBE_CHUNK_STEPS = 8


class EagerKnowledgeProbe(_SessionHolder):
    """Offline analysis helper: when along a run would B first have been able to act?

    Useful for benchmarks: given a finished run (e.g. produced with a plain
    FFIP everywhere), replay B's timeline and report the first node at which
    Protocol 2's guard holds, without re-simulating.  The replay advances one
    knowledge session along the timeline in *chunks*
    (:meth:`KnowledgeSession.advance_many`), so most steps pay neither
    per-step bookkeeping nor an overlay install:

    * while the go node is not yet visible at a chunk's end it is not
      visible anywhere in the chunk (pasts are nested along a timeline), so
      the chunk is skipped wholesale for any task;
    * for ``Late`` tasks the whole guard is monotone along the timeline (the
      precedence being established is fixed and the observer's margin only
      grows with its past), so a chunk whose *end* fails the guard is also
      skipped wholesale;
    * once the guard can first hold inside a chunk, the replay descends to
      per-step evaluation (the session transparently resets on the one
      backward advance) and returns the first holding node -- ``Early``
      guards are not monotone (the margin shrinks as sigma approaches
      ``theta_a``), so after go-visibility they always replay per step.

    The chunked replay is pinned equal to the per-step replay by the
    property-test suite across scenario families, adversaries and chunk
    sizes.
    """

    def first_actionable_node(
        self, run, chunk_steps: int = PROBE_CHUNK_STEPS
    ) -> Optional[Tuple[BasicNode, int]]:
        """The first B-node (and its time) at which the knowledge condition holds."""
        theta_a = self.task.action_node_a(run)
        if theta_a is None:
            return None
        net = run.timed_network

        def knows_at(session: KnowledgeSession, node: BasicNode) -> bool:
            if session.find_go_node(self.task.go_sender, self.task.go_trigger) is None:
                return False
            if self.task.is_late:
                return session.knows(theta_a, node, self.task.margin)
            return session.knows(node, theta_a, self.task.margin)

        timeline = [
            (time, node)
            for time, node in run.timelines[self.task.actor_b]
            if not node.is_initial
        ]
        chunk_steps = max(1, chunk_steps)
        position = 0
        while position < len(timeline):
            chunk = timeline[position : position + chunk_steps]
            session = self._session_over([node for _, node in chunk], net)
            go_node = session.find_go_node(self.task.go_sender, self.task.go_trigger)
            if go_node is None:
                position += len(chunk)
                continue
            if self.task.is_late and not knows_at(session, chunk[-1][1]):
                position += len(chunk)
                continue
            # The first actionable node lies at or after this chunk's start:
            # descend to the per-step replay from here.
            for time, node in timeline[position:]:
                session = self._session_at(node, net)
                if knows_at(session, node):
                    return node, time
            return None
        return None
