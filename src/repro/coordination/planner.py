"""Static (design-time) planning for coordination tasks.

Given only the timed network -- before any run happens -- how large a margin
can B ever hope to guarantee, and along which message chains?  The paper's
Figure 1 pattern is the only structure whose existence is guaranteed *a
priori* under flooding: two chains out of C's go node, one towards A (bounded
above) and one towards B (bounded below).  Richer zigzag patterns depend on
how intermediate deliveries happen to interleave at pivot processes, so their
availability is a run-time matter (that is precisely the paper's point); the
planner therefore reports the guaranteed fork-based margin and, separately,
an optimistic bound assuming the most favourable interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..simulation.network import Path, TimedNetwork
from .tasks import CoordinationTask


@dataclass(frozen=True)
class ForkPlan:
    """A Figure-1 style plan: chains from the go node towards B and towards A."""

    chain_to_b: Path
    chain_to_a: Path
    guaranteed_margin: int

    def describe(self) -> str:
        return (
            f"ForkPlan(to_b={'->'.join(self.chain_to_b)}, "
            f"to_a={'->'.join(self.chain_to_a)}, margin={self.guaranteed_margin})"
        )


def best_fork_plan(
    net: TimedNetwork, task: CoordinationTask, max_hops: int = 4
) -> Optional[ForkPlan]:
    """The best guaranteed single-fork plan for the task, or ``None`` if B can never act.

    For ``Late<a --x--> b>`` the fork's head chain runs from C to B (lower
    bounds accumulate) and its tail chain is the direct go channel C->A
    (upper bound); the guaranteed margin is ``L(C..B) - U(C->A)``.  For
    ``Early<b --x--> a>`` the roles swap: ``L(C->A) - U(C..B)``.  The chain to
    A is always the direct channel because A acts on C's direct go message.
    """
    sender = task.go_sender
    direct = (sender, task.actor_a)
    if not net.is_path(direct):
        return None
    best: Optional[ForkPlan] = None
    for chain in net.network.iter_paths(sender, max_hops):
        if chain[-1] != task.actor_b or len(chain) < 2:
            continue
        if task.is_late:
            margin = net.path_lower(chain) - net.path_upper(direct)
        else:
            margin = net.path_lower(direct) - net.path_upper(chain)
        if best is None or margin > best.guaranteed_margin:
            best = ForkPlan(chain_to_b=chain, chain_to_a=direct, guaranteed_margin=margin)
    return best


def guaranteed_margin(
    net: TimedNetwork, task: CoordinationTask, max_hops: int = 4
) -> Optional[int]:
    """The largest margin B is guaranteed to be able to certify via a single fork."""
    plan = best_fork_plan(net, task, max_hops)
    return None if plan is None else plan.guaranteed_margin


def is_statically_solvable(
    net: TimedNetwork, task: CoordinationTask, max_hops: int = 4
) -> bool:
    """Whether a single-fork plan already certifies the task's margin in *every* run."""
    margin = guaranteed_margin(net, task, max_hops)
    return margin is not None and margin >= task.margin


def earliest_guaranteed_action_offset(
    net: TimedNetwork, task: CoordinationTask, max_hops: int = 4
) -> Optional[int]:
    """An upper bound on how long after the go B must wait before acting, via the best fork.

    Measured in time units after the go node; B acts when the chain to it
    arrives, which takes at most ``U(chain)``.  Returns ``None`` when no fork
    plan certifies the margin.
    """
    sender = task.go_sender
    direct = (sender, task.actor_a)
    if not net.is_path(direct):
        return None
    best: Optional[int] = None
    for chain in net.network.iter_paths(sender, max_hops):
        if chain[-1] != task.actor_b or len(chain) < 2:
            continue
        if task.is_late:
            margin = net.path_lower(chain) - net.path_upper(direct)
        else:
            margin = net.path_lower(direct) - net.path_upper(chain)
        if margin >= task.margin:
            latest_arrival = net.path_upper(chain)
            if best is None or latest_arrival < best:
                best = latest_arrival
    return best


def optimistic_margin(
    net: TimedNetwork, task: CoordinationTask, pivot_hops: int = 1, max_hops: int = 3
) -> Optional[int]:
    """An optimistic (best-interleaving) margin using one zigzag through a pivot.

    Assumes a second spontaneous source E exists co-located with C (the paper's
    Figure 2 uses an independent sender); concretely this searches patterns
    ``C -> D`` (lower), ``E -> D`` (upper), ``E -> ... -> B`` (lower) over all
    pivots D and senders E, yielding ``-U(C->A) + L(C->D) - U(E->D) + L(E..B)``
    for the Late task.  The value is achievable only in runs where D happens to
    hear C before E, so it is an upper bound on what run-time knowledge can
    certify, not a guarantee.
    """
    if task.is_early:
        return guaranteed_margin(net, task, max_hops)
    sender = task.go_sender
    direct = (sender, task.actor_a)
    if not net.is_path(direct):
        return None
    base = -net.path_upper(direct)
    best = guaranteed_margin(net, task, max_hops)
    processes = net.processes
    for pivot in processes:
        if not net.is_path((sender, pivot)):
            continue
        for other in processes:
            if other == sender or not net.is_path((other, pivot)):
                continue
            for chain in net.network.iter_paths(other, max_hops):
                if chain[-1] != task.actor_b or len(chain) < 2:
                    continue
                value = (
                    base
                    + net.path_lower((sender, pivot))
                    - net.path_upper((other, pivot))
                    + net.path_lower(chain)
                )
                if best is None or value > best:
                    best = value
    return best
