"""Text-based visualisation of runs and bounds graphs."""

from .graphs import extended_graph_listing, graph_listing, path_listing
from .spacetime import action_table, message_table, spacetime_diagram

__all__ = [
    "action_table",
    "extended_graph_listing",
    "graph_listing",
    "message_table",
    "path_listing",
    "spacetime_diagram",
]
