"""Text-based visualisation, graph export, and HTML reporting for runs."""

from .export import causal_dag, graph_to_dot, graph_to_graphml
from .graphs import extended_graph_listing, graph_listing, path_listing
from .html_report import render_html_report
from .spacetime import action_table, message_table, spacetime_diagram

__all__ = [
    "action_table",
    "causal_dag",
    "extended_graph_listing",
    "graph_listing",
    "graph_to_dot",
    "graph_to_graphml",
    "message_table",
    "path_listing",
    "render_html_report",
    "spacetime_diagram",
]
