"""ASCII space-time diagrams of runs.

The paper's figures are space-time diagrams: one horizontal line per process,
time flowing to the right, arrows for messages, and marks for actions.  This
module renders the same picture as text so that examples and debugging
sessions can "see" a run without any plotting dependency.

Example output (Figure 1 style)::

    t        0    1    2    3    4    5    6
    A        .    .    .    .    a<C  .    .
    B        .    .    .    .    .    .    *<C
    C        .    .    G!   .    .    .    .

``G!`` marks receipt of an external trigger, ``x<P`` a message received from
process ``P`` together with any action performed at that step, and ``.`` an
idle instant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.nodes import BasicNode
from ..simulation.messages import ExternalReceipt, LocalAction, MessageReceipt
from ..simulation.runs import Run


def _cell_for_node(node: BasicNode) -> str:
    """A compact label for the step taken at a node."""
    if node.is_initial:
        return "."
    senders: List[str] = []
    actions: List[str] = []
    external = False
    for observation in node.history.last_step:
        if isinstance(observation, MessageReceipt):
            senders.append(observation.message.sender)
        elif isinstance(observation, ExternalReceipt):
            external = True
        elif isinstance(observation, LocalAction):
            actions.append(observation.name)
    label = ""
    if actions:
        label += "".join(actions)
    elif senders or external:
        label += "*"
    if external:
        label += "G!"
    if senders:
        label += "<" + ",".join(sorted(set(senders)))
    return label or "*"


def spacetime_diagram(
    run: Run,
    processes: Optional[Sequence[str]] = None,
    start: int = 0,
    end: Optional[int] = None,
    column_width: Optional[int] = None,
) -> str:
    """Render a run as an ASCII space-time diagram.

    ``processes`` restricts and orders the rows (default: all, network order);
    ``start``/``end`` bound the displayed time window.
    """
    if processes is None:
        processes = run.processes
    if end is None:
        end = run.horizon
    end = min(end, run.horizon)

    cells: Dict[str, Dict[int, str]] = {process: {} for process in processes}
    for process in processes:
        for time, node in run.timelines[process]:
            if start <= time <= end and not node.is_initial:
                cells[process][time] = _cell_for_node(node)

    if column_width is None:
        longest = 1
        for row in cells.values():
            for value in row.values():
                longest = max(longest, len(value))
        column_width = max(longest + 1, 4)

    name_width = max(len("t"), *(len(p) for p in processes)) + 1

    def format_row(name: str, values: List[str]) -> str:
        return name.ljust(name_width) + "".join(v.ljust(column_width) for v in values)

    lines = [format_row("t", [str(t) for t in range(start, end + 1)])]
    for process in processes:
        row = [cells[process].get(t, ".") for t in range(start, end + 1)]
        lines.append(format_row(process, row))
    return "\n".join(lines)


def message_table(run: Run, limit: Optional[int] = None) -> str:
    """A tabular listing of the run's deliveries (sender, receiver, send/recv times)."""
    header = f"{'from':>6} {'to':>6} {'sent':>6} {'recv':>6} {'delay':>6} {'window':>10}"
    lines = [header, "-" * len(header)]
    deliveries = sorted(run.deliveries, key=lambda d: (d.delivery_time, d.sender, d.destination))
    if limit is not None:
        deliveries = deliveries[:limit]
    net = run.timed_network
    for record in deliveries:
        low = net.L(record.sender, record.destination)
        high = net.U(record.sender, record.destination)
        window = f"[{low},{high}]"
        lines.append(
            f"{record.sender:>6} {record.destination:>6} {record.send_time:>6} "
            f"{record.delivery_time:>6} {record.delay:>6} {window:>10}"
        )
    return "\n".join(lines)


def action_table(run: Run) -> str:
    """A tabular listing of the actions performed in the run."""
    header = f"{'process':>8} {'action':>8} {'time':>6}"
    lines = [header, "-" * len(header)]
    for record in sorted(run.actions(), key=lambda a: a.time):
        lines.append(f"{record.process:>8} {record.action:>8} {record.time:>6}")
    return "\n".join(lines)
