"""A static, dependency-free HTML dashboard for sweep stores.

``repro report --html PATH`` renders one self-contained page: aggregate
sweep tables (built by the CLI via :mod:`repro.experiments.reporting`, so
non-numeric fields show up as value counts), the persisted sweep telemetry
(backend, phase timings, worker utilization, per-shard throughput, merged
counters), and a handful of space-time diagrams re-derived from stored
cells.  Everything is inline — no scripts, no external assets — so the file
works from CI artifact storage or an email attachment.

This module is purely presentational (it imports nothing from
:mod:`repro.experiments`, keeping the viz layer dependency-free): callers
hand it pre-aggregated table rows.  Rendering is deterministic for fixed
inputs — counters sort by name and no timestamp is embedded unless the
caller passes one explicitly (``generated_at``).
"""

from __future__ import annotations

from html import escape
from typing import Any, List, Mapping, Optional, Sequence, Tuple

__all__ = ["render_html_report"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #4a4e8f; padding-bottom: .3rem; }
h2 { margin-top: 2rem; color: #4a4e8f; }
table { border-collapse: collapse; margin: .8rem 0; font-size: .9rem; }
th, td { border: 1px solid #c5c8e8; padding: .25rem .6rem; text-align: left; }
th { background: #eef0fb; }
tr:nth-child(even) td { background: #f7f8fd; }
pre { background: #14142b; color: #d8e0f0; padding: .8rem;
      overflow-x: auto; font-size: .8rem; line-height: 1.25; }
.meta { color: #555; font-size: .85rem; }
""".strip()


def _table(header: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    parts = ["<table>", "<tr>"]
    parts.extend(f"<th>{escape(str(cell))}</th>" for cell in header)
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        parts.extend(f"<td>{escape(str(cell))}</td>" for cell in row)
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def _telemetry_section(telemetry: Mapping[str, Any]) -> str:
    cells = telemetry.get("cells", {})
    timings = telemetry.get("timings", {})
    overview_rows: List[Tuple[str, Any]] = [
        ("backend", telemetry.get("backend", "?")),
        ("workers", telemetry.get("workers", "?")),
        ("cells total / executed / cached / errors",
         f"{cells.get('total', 0)} / {cells.get('executed', 0)} / "
         f"{cells.get('cached', 0)} / {cells.get('errors', 0)}"),
        ("scan / execute / total (s)",
         f"{timings.get('scan_s', 0)} / {timings.get('execute_s', 0)} / "
         f"{timings.get('total_s', 0)}"),
        ("worker wall time (s)", telemetry.get("worker_wall_s", 0)),
        ("worker utilization", telemetry.get("worker_utilization", "-")),
        ("worker payloads", telemetry.get("worker_payloads", 0)),
    ]
    for name, value in sorted((telemetry.get("derived") or {}).items()):
        overview_rows.append((name, "-" if value is None else value))
    parts = ["<h2>Sweep telemetry</h2>", _table(["field", "value"], overview_rows)]

    counters = (telemetry.get("metrics") or {}).get("counters") or {}
    if counters:
        parts.append("<h3>Merged counters</h3>")
        parts.append(_table(["counter", "value"], sorted(counters.items())))
    shards = telemetry.get("shards") or []
    if shards:
        parts.append("<h3>Shards</h3>")
        parts.append(
            _table(
                ["cells", "wall_s", "cells_per_s", "in_process"],
                [
                    (
                        shard.get("cells", "?"),
                        shard.get("wall_s", "?"),
                        shard.get("cells_per_s", "?"),
                        shard.get("in_process", False),
                    )
                    for shard in shards
                ],
            )
        )
    return "".join(parts)


def _diagram_section(diagrams: Sequence[Tuple[str, str]]) -> str:
    parts = ["<h2>Space-time diagrams</h2>"]
    for title, text in diagrams:
        parts.append(f"<h3>{escape(title)}</h3><pre>{escape(text)}</pre>")
    return "".join(parts)


def render_html_report(
    table_header: Sequence[str],
    table_rows: Sequence[Sequence[Any]],
    record_count: int,
    store_path: str,
    telemetry: Optional[Mapping[str, Any]] = None,
    diagrams: Sequence[Tuple[str, str]] = (),
    title: str = "repro sweep report",
    generated_at: Optional[str] = None,
) -> str:
    """Render the dashboard; see the module docstring.

    ``table_header`` / ``table_rows`` is the pre-aggregated sweep table
    (group fields, cell counts, formatted metric summaries); ``diagrams`` is
    ``(title, preformatted text)`` pairs.
    """
    meta = f"{record_count} records in {escape(store_path)}"
    if generated_at:
        meta += f" · generated {escape(generated_at)}"
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        f'<p class="meta">{meta}</p>',
        "<h2>Sweep results</h2>",
        _table(table_header, table_rows),
    ]
    if telemetry is not None:
        parts.append(_telemetry_section(telemetry))
    if diagrams:
        parts.append(_diagram_section(diagrams))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
