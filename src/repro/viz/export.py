"""Zero-dependency GraphML and DOT exporters for the repo's graphs.

``repro export`` turns the structures the analysis reasons about — basic
bounds graphs, extended bounds graphs ``GE(r, sigma)``, and the causal-past
DAG of a run — into files external tools understand: GraphML for igraph /
networkx / yEd / Gephi, DOT for Graphviz.  The writers emit plain XML/text
(no third-party imports), deterministically: node ids follow the graph's
insertion order and edges keep their construction order, so the same run
always serialises byte-identically.

The GraphML dialect is the minimal one ``networkx.read_graphml`` round-trips
(declared ``<key>`` entries for the node ``label`` and the edge ``weight`` /
``label`` attributes; parallel edges carry distinct ``id`` attributes so
multigraph edges survive).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple
from xml.sax.saxutils import escape

from ..core.graph import WeightedGraph
from ..simulation.runs import Run
from .graphs import _node_label

__all__ = ["causal_dag", "graph_to_dot", "graph_to_graphml"]

_GRAPHML_HEADER = (
    '<?xml version="1.0" encoding="utf-8"?>\n'
    '<graphml xmlns="http://graphml.graphdrawing.org/xmlns"'
    ' xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"'
    ' xsi:schemaLocation="http://graphml.graphdrawing.org/xmlns'
    ' http://graphml.graphdrawing.org/xmlns/1.0/graphml.xsd">'
)


def _node_ids(graph: WeightedGraph, run: Optional[Run]) -> Dict[object, Tuple[str, str]]:
    """node -> (stable id, display label), in graph insertion order."""
    ids: Dict[object, Tuple[str, str]] = {}
    for index, node in enumerate(graph.nodes):
        ids[node] = (f"n{index}", _node_label(node, run))
    return ids


def graph_to_graphml(graph: WeightedGraph, run: Optional[Run] = None) -> str:
    """Serialise a weighted multigraph as GraphML (directed).

    Node labels land in the ``label`` node attribute; edge weights and labels
    in the ``weight`` / ``label`` edge attributes.  Every edge carries a
    unique ``id`` so parallel edges stay distinct in multigraph readers.
    """
    ids = _node_ids(graph, run)
    lines: List[str] = [
        _GRAPHML_HEADER,
        '  <key id="d0" for="node" attr.name="label" attr.type="string"/>',
        '  <key id="d1" for="edge" attr.name="weight" attr.type="int"/>',
        '  <key id="d2" for="edge" attr.name="label" attr.type="string"/>',
        '  <graph edgedefault="directed">',
    ]
    for node_id, label in ids.values():
        lines.append(f'    <node id="{node_id}">')
        lines.append(f'      <data key="d0">{escape(label)}</data>')
        lines.append("    </node>")
    for index, edge in enumerate(graph.edges):
        source_id = ids[edge.source][0]
        target_id = ids[edge.target][0]
        lines.append(
            f'    <edge id="e{index}" source="{source_id}" target="{target_id}">'
        )
        lines.append(f'      <data key="d1">{int(edge.weight)}</data>')
        lines.append(f'      <data key="d2">{escape(edge.label)}</data>')
        lines.append("    </edge>")
    lines.append("  </graph>")
    lines.append("</graphml>")
    return "\n".join(lines) + "\n"


def _dot_quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def graph_to_dot(
    graph: WeightedGraph, run: Optional[Run] = None, name: str = "repro"
) -> str:
    """Serialise a weighted multigraph as a Graphviz ``digraph``."""
    ids = _node_ids(graph, run)
    lines: List[str] = [f"digraph {_dot_quote(name)} {{", "  rankdir=LR;"]
    for node_id, label in ids.values():
        lines.append(f"  {node_id} [label={_dot_quote(label)}];")
    for edge in graph.edges:
        source_id = ids[edge.source][0]
        target_id = ids[edge.target][0]
        text = f"{edge.label},{edge.weight:+d}" if edge.label else f"{edge.weight:+d}"
        lines.append(
            f"  {source_id} -> {target_id} "
            f"[label={_dot_quote(text)}, weight={int(edge.weight)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def causal_dag(run: Run) -> WeightedGraph:
    """The happens-before DAG of a run as an exportable weighted graph.

    Nodes are the run's basic nodes; ``local`` edges join consecutive nodes
    of one timeline (weight = elapsed time) and ``message`` edges join each
    send node to its delivery node (weight = transmission delay).  Longest
    paths through this graph are exactly the paper's causal chains.
    """
    graph: WeightedGraph = WeightedGraph()
    for process in run.processes:
        timeline = run.timelines[process]
        for (earlier_time, earlier), (later_time, later) in zip(timeline, timeline[1:]):
            graph.add_edge(earlier, later, later_time - earlier_time, label="local")
        for _, node in timeline:
            graph.add_node(node)
    for record in run.deliveries:
        graph.add_edge(
            record.sender_node, record.receiver_node, record.delay, label="message"
        )
    return graph
