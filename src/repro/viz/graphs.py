"""Textual dumps of bounds graphs and extended bounds graphs.

These renderers produce stable, human-readable listings of the graph
structures the analysis relies on -- the textual analogue of the paper's
Figures 6, 7 and 8 -- so that examples can show *why* a precedence is known.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.extended_graph import AuxiliaryNode, ChainNode, ExtendedBoundsGraph
from ..core.graph import Edge, WeightedGraph
from ..core.nodes import BasicNode
from ..simulation.runs import Run


def _node_label(node, run: Optional[Run] = None) -> str:
    if isinstance(node, BasicNode):
        if run is not None and run.appears(node):
            return f"{node.process}@t{run.time_of(node)}"
        return node.describe()
    if isinstance(node, (AuxiliaryNode, ChainNode)):
        return node.describe()
    return str(node)


def graph_listing(
    graph: WeightedGraph,
    run: Optional[Run] = None,
    labels: Optional[Sequence[str]] = None,
) -> str:
    """List a weighted graph's edges, one per line, grouped by label."""
    lines = [f"nodes: {len(graph)}, edges: {graph.edge_count()}"]
    selected = list(graph.edges)
    if labels is not None:
        wanted = set(labels)
        selected = [edge for edge in selected if edge.label in wanted]
    selected.sort(
        key=lambda edge: (edge.label, _node_label(edge.source, run), _node_label(edge.target, run))
    )
    for edge in selected:
        lines.append(
            f"  [{edge.label:>11}] {_node_label(edge.source, run):<18} "
            f"--({edge.weight:+d})--> {_node_label(edge.target, run)}"
        )
    return "\n".join(lines)


def extended_graph_listing(extended: ExtendedBoundsGraph, run: Optional[Run] = None) -> str:
    """Render an extended bounds graph, reporting the edge-set sizes of Figure 8."""
    counts = extended.edge_summary()
    lines = [
        extended.describe(),
        "edge sets: "
        + ", ".join(f"{label}={count}" for label, count in sorted(counts.items())),
        graph_listing(extended.graph, run),
    ]
    return "\n".join(lines)


def path_listing(edges: Sequence[Edge], run: Optional[Run] = None) -> str:
    """Render a path (e.g. a longest constraint path) edge by edge with its weight."""
    if not edges:
        return "(empty path, weight 0)"
    total = sum(edge.weight for edge in edges)
    lines = [f"path weight {total:+d}:"]
    for edge in edges:
        lines.append(
            f"  {_node_label(edge.source, run):<18} --({edge.weight:+d}, {edge.label})--> "
            f"{_node_label(edge.target, run)}"
        )
    return "\n".join(lines)
