"""Scenario builders: the paper's figures and randomised workloads."""

from .base import Scenario
from .figures import (
    ZigzagChainLayout,
    figure1_guaranteed_margin,
    figure1_scenario,
    figure2a_scenario,
    figure2b_scenario,
    figure3_fork_weight,
    figure3_scenario,
    figure4_scenario,
    figure5_scenario,
    figure6_scenario,
    figure8_scenario,
    spontaneous_tag,
    zigzag_chain_equation_weight,
    zigzag_chain_layout,
    zigzag_chain_scenario,
)
from .random_nets import (
    RandomWorkload,
    flooding_scenario,
    random_external_schedule,
    random_timed_network,
    random_workload,
    workload_scenario,
)

__all__ = [
    "RandomWorkload",
    "Scenario",
    "ZigzagChainLayout",
    "figure1_guaranteed_margin",
    "figure1_scenario",
    "figure2a_scenario",
    "figure2b_scenario",
    "figure3_fork_weight",
    "figure3_scenario",
    "figure4_scenario",
    "figure5_scenario",
    "figure6_scenario",
    "figure8_scenario",
    "flooding_scenario",
    "random_external_schedule",
    "random_timed_network",
    "random_workload",
    "spontaneous_tag",
    "workload_scenario",
    "zigzag_chain_equation_weight",
    "zigzag_chain_layout",
    "zigzag_chain_scenario",
]
