"""Scenario builders: the paper's figures, randomised workloads, topologies.

Importing this package populates the scenario registry: every figure,
random-network and structured-topology scenario is registered by name via
:func:`~repro.scenarios.base.register_scenario` and is addressable through
:func:`get_scenario` / :func:`list_scenarios` (which is what the
:mod:`repro.experiments` sweep runner and the ``repro`` CLI consume).
"""

from .base import (
    ParamSpec,
    RegistryError,
    Scenario,
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_registry,
)
from .figures import (
    ZigzagChainLayout,
    figure1_guaranteed_margin,
    figure1_scenario,
    figure2a_scenario,
    figure2b_scenario,
    figure3_fork_weight,
    figure3_scenario,
    figure4_scenario,
    figure5_scenario,
    figure6_scenario,
    figure8_scenario,
    spontaneous_tag,
    zigzag_chain_equation_weight,
    zigzag_chain_layout,
    zigzag_chain_scenario,
)
from .random_nets import (
    RandomWorkload,
    flooding_scenario,
    random_coordination_scenario,
    random_external_schedule,
    random_timed_network,
    random_workload,
    workload_scenario,
)
from .topologies import (
    complete_flooding_scenario,
    grid_flooding_scenario,
    line_flooding_scenario,
    ring_flooding_scenario,
    star_flooding_scenario,
    torus_flooding_scenario,
    tree_flooding_scenario,
)

__all__ = [
    "ParamSpec",
    "RandomWorkload",
    "RegistryError",
    "Scenario",
    "ScenarioSpec",
    "ZigzagChainLayout",
    "complete_flooding_scenario",
    "figure1_guaranteed_margin",
    "figure1_scenario",
    "figure2a_scenario",
    "figure2b_scenario",
    "figure3_fork_weight",
    "figure3_scenario",
    "figure4_scenario",
    "figure5_scenario",
    "figure6_scenario",
    "figure8_scenario",
    "flooding_scenario",
    "get_scenario",
    "grid_flooding_scenario",
    "line_flooding_scenario",
    "list_scenarios",
    "random_coordination_scenario",
    "random_external_schedule",
    "random_timed_network",
    "random_workload",
    "register_scenario",
    "ring_flooding_scenario",
    "scenario_registry",
    "spontaneous_tag",
    "star_flooding_scenario",
    "torus_flooding_scenario",
    "tree_flooding_scenario",
    "workload_scenario",
    "zigzag_chain_equation_weight",
    "zigzag_chain_layout",
    "zigzag_chain_scenario",
]
