"""Common plumbing for the paper-figure scenarios.

A :class:`Scenario` bundles everything needed to reproduce one of the paper's
figures on the simulator: the timed network, the per-process protocols, the
external-input schedule, the adversarial delivery strategy that pins down the
drawn message pattern, and the horizon.  ``Scenario.run()`` executes it and
returns the :class:`~repro.simulation.runs.Run`; figure modules add named
accessors for the nodes the paper's discussion refers to (the go node, the
nodes at which ``a`` and ``b`` are performed, pivot nodes, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..simulation.context import Context, ExternalInput
from ..simulation.delivery import DeliveryStrategy, EarliestDelivery
from ..simulation.engine import Simulator
from ..simulation.network import Process, TimedNetwork
from ..simulation.protocols import Protocol, ProtocolAssignment
from ..simulation.runs import Run


@dataclass
class Scenario:
    """A reproducible experimental setup on the bcm simulator."""

    name: str
    timed_network: TimedNetwork
    protocols: ProtocolAssignment
    external_inputs: List[ExternalInput]
    delivery: DeliveryStrategy = field(default_factory=EarliestDelivery)
    horizon: int = 30
    description: str = ""

    @property
    def context(self) -> Context:
        return Context(self.timed_network, description=self.name)

    def simulator(self) -> Simulator:
        return Simulator(
            context=self.context,
            protocols=self.protocols,
            delivery=self.delivery,
            external_inputs=self.external_inputs,
            horizon=self.horizon,
        )

    def run(self) -> Run:
        """Execute the scenario once and validate the resulting run."""
        run = self.simulator().run()
        run.validate()
        return run

    def with_delivery(self, delivery: DeliveryStrategy) -> "Scenario":
        """The same scenario under a different delivery adversary."""
        return Scenario(
            name=self.name,
            timed_network=self.timed_network,
            protocols=self.protocols,
            external_inputs=list(self.external_inputs),
            delivery=delivery,
            horizon=self.horizon,
            description=self.description,
        )

    def with_horizon(self, horizon: int) -> "Scenario":
        return Scenario(
            name=self.name,
            timed_network=self.timed_network,
            protocols=self.protocols,
            external_inputs=list(self.external_inputs),
            delivery=self.delivery,
            horizon=horizon,
            description=self.description,
        )

    def with_protocol(self, process: Process, protocol: Protocol) -> "Scenario":
        """The same scenario with one process's protocol replaced."""
        assignment = ProtocolAssignment(
            protocols=dict(self.protocols.protocols), default=self.protocols.default
        )
        assignment.assign(process, protocol)
        return Scenario(
            name=self.name,
            timed_network=self.timed_network,
            protocols=assignment,
            external_inputs=list(self.external_inputs),
            delivery=self.delivery,
            horizon=self.horizon,
            description=self.description,
        )
