"""Common plumbing for the paper-figure scenarios, plus the scenario registry.

A :class:`Scenario` bundles everything needed to reproduce one of the paper's
figures on the simulator: the timed network, the per-process protocols, the
external-input schedule, the adversarial delivery strategy that pins down the
drawn message pattern, and the horizon.  ``Scenario.run()`` executes it and
returns the :class:`~repro.simulation.runs.Run`; figure modules add named
accessors for the nodes the paper's discussion refers to (the go node, the
nodes at which ``a`` and ``b`` are performed, pivot nodes, ...).

Scenario *builders* (functions returning a fresh :class:`Scenario`) can be
made addressable by name with the :func:`register_scenario` decorator, which
records the builder together with a typed parameter specification.  The
:mod:`repro.experiments` sweep runner and the ``repro`` CLI look builders up
through this registry, expand parameter grids against the declared
:class:`ParamSpec` entries, and reject unknown or ill-typed parameters before
any simulation starts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..simulation.context import Context, ExternalInput
from ..simulation.delivery import DeliveryStrategy, EarliestDelivery
from ..simulation.engine import Simulator
from ..simulation.network import Process, TimedNetwork
from ..simulation.protocols import Protocol, ProtocolAssignment
from ..simulation.runs import Run


@dataclass
class Scenario:
    """A reproducible experimental setup on the bcm simulator."""

    name: str
    timed_network: TimedNetwork
    protocols: ProtocolAssignment
    external_inputs: List[ExternalInput]
    delivery: DeliveryStrategy = field(default_factory=EarliestDelivery)
    horizon: int = 30
    description: str = ""

    @property
    def context(self) -> Context:
        return Context(self.timed_network, description=self.name)

    def simulator(self) -> Simulator:
        return Simulator(
            context=self.context,
            protocols=self.protocols,
            delivery=self.delivery,
            external_inputs=self.external_inputs,
            horizon=self.horizon,
        )

    def run(self) -> Run:
        """Execute the scenario once and validate the resulting run."""
        run = self.simulator().run()
        run.validate()
        return run

    def with_delivery(self, delivery: DeliveryStrategy) -> "Scenario":
        """The same scenario under a different delivery adversary."""
        return Scenario(
            name=self.name,
            timed_network=self.timed_network,
            protocols=self.protocols,
            external_inputs=list(self.external_inputs),
            delivery=delivery,
            horizon=self.horizon,
            description=self.description,
        )

    def with_horizon(self, horizon: int) -> "Scenario":
        return Scenario(
            name=self.name,
            timed_network=self.timed_network,
            protocols=self.protocols,
            external_inputs=list(self.external_inputs),
            delivery=self.delivery,
            horizon=horizon,
            description=self.description,
        )

    def with_protocol(self, process: Process, protocol: Protocol) -> "Scenario":
        """The same scenario with one process's protocol replaced."""
        assignment = ProtocolAssignment(
            protocols=dict(self.protocols.protocols), default=self.protocols.default
        )
        assignment.assign(process, protocol)
        return Scenario(
            name=self.name,
            timed_network=self.timed_network,
            protocols=assignment,
            external_inputs=list(self.external_inputs),
            delivery=self.delivery,
            horizon=self.horizon,
            description=self.description,
        )


# ---------------------------------------------------------------------------
# The scenario registry.
# ---------------------------------------------------------------------------


class RegistryError(ValueError):
    """Raised on unknown scenario names or ill-typed scenario parameters."""


#: Parameter types the registry supports (JSON scalars, so sweeps serialise).
_PARAM_TYPES = {int: "int", float: "float", str: "str", bool: "bool"}


@dataclass(frozen=True)
class ParamSpec:
    """One typed, sweepable parameter of a registered scenario builder.

    Only JSON-scalar types are allowed so that parameter assignments can be
    hashed into cache keys and round-tripped through the result store.
    Rich parameters (delivery strategies, protocol objects) deliberately stay
    out of the spec; the sweep runner controls those through dedicated axes.

    ``shard_key=True`` marks a parameter as *structural*: cells agreeing on
    every shard-key parameter build the same family of instances (same
    topology shape, same channel bounds), so co-scheduling them on one worker
    lets the sharded sweep backend reuse the intern pool and scenario
    construction across them.  The flag is a scheduling hint only — it never
    affects results or cache keys.
    """

    name: str
    type: type
    default: Any
    description: str = ""
    choices: Optional[Tuple[Any, ...]] = None
    shard_key: bool = False

    def __post_init__(self) -> None:
        if self.type not in _PARAM_TYPES:
            raise RegistryError(
                f"parameter {self.name!r} has unsupported type {self.type!r}; "
                f"supported: {sorted(t.__name__ for t in _PARAM_TYPES)}"
            )

    def validate(self, value: Any) -> Any:
        """Coerce and check one assignment for this parameter."""
        if self.type is bool:
            if not isinstance(value, bool):
                raise RegistryError(
                    f"parameter {self.name!r} expects bool, got {value!r}"
                )
        elif self.type is float:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise RegistryError(
                    f"parameter {self.name!r} expects float, got {value!r}"
                )
            value = float(value)
            if not math.isfinite(value):
                # Parameters feed JSON cache keys, which exclude NaN/inf.
                raise RegistryError(
                    f"parameter {self.name!r} must be finite, got {value!r}"
                )
        elif self.type is int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise RegistryError(
                    f"parameter {self.name!r} expects int, got {value!r}"
                )
        elif not isinstance(value, str):
            raise RegistryError(f"parameter {self.name!r} expects str, got {value!r}")
        if self.choices is not None and value not in self.choices:
            raise RegistryError(
                f"parameter {self.name!r} must be one of {list(self.choices)}, got {value!r}"
            )
        return value

    def parse(self, text: str) -> Any:
        """Parse a command-line string into a validated value."""
        if self.type is bool:
            lowered = text.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                return self.validate(True)
            if lowered in ("0", "false", "no", "off"):
                return self.validate(False)
            raise RegistryError(f"cannot parse {text!r} as bool for {self.name!r}")
        try:
            return self.validate(self.type(text))
        except (TypeError, ValueError) as exc:
            raise RegistryError(
                f"cannot parse {text!r} as {_PARAM_TYPES[self.type]} for {self.name!r}"
            ) from exc

    def describe(self) -> str:
        extra = f", one of {list(self.choices)}" if self.choices else ""
        shard = " (shard key)" if self.shard_key else ""
        return f"{self.name}: {_PARAM_TYPES[self.type]} = {self.default!r}{extra}{shard}"


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, parameterised scenario builder."""

    name: str
    builder: Callable[..., Scenario]
    params: Tuple[ParamSpec, ...] = ()
    description: str = ""
    tags: Tuple[str, ...] = ()

    def param(self, name: str) -> Optional[ParamSpec]:
        for spec in self.params:
            if spec.name == name:
                return spec
        return None

    def has_param(self, name: str) -> bool:
        return self.param(name) is not None

    def shard_params(self) -> Tuple[str, ...]:
        """Names of the parameters flagged as shard keys (scheduling hints)."""
        return tuple(spec.name for spec in self.params if spec.shard_key)

    def defaults(self) -> Dict[str, Any]:
        return {spec.name: spec.default for spec in self.params}

    def resolve(self, overrides: Mapping[str, Any]) -> Dict[str, Any]:
        """The full parameter assignment: declared defaults plus ``overrides``."""
        values = self.defaults()
        for name, value in overrides.items():
            spec = self.param(name)
            if spec is None:
                raise RegistryError(
                    f"scenario {self.name!r} has no parameter {name!r}; "
                    f"declared: {sorted(values)}"
                )
            values[name] = spec.validate(value)
        return values

    def build(self, **overrides: Any) -> Scenario:
        """Build a fresh :class:`Scenario` with validated parameters."""
        return self.builder(**self.resolve(overrides))


_SCENARIO_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(
    name: str,
    params: Sequence[ParamSpec] = (),
    description: str = "",
    tags: Sequence[str] = (),
) -> Callable[[Callable[..., Scenario]], Callable[..., Scenario]]:
    """Class-of-service decorator registering a scenario builder by name.

    The decorated function is returned unchanged (direct calls keep working,
    including with parameters outside the declared spec); the registry entry
    is available via :func:`get_scenario` and carries the typed spec under
    the builder's ``scenario_spec`` attribute.
    """

    def decorator(builder: Callable[..., Scenario]) -> Callable[..., Scenario]:
        if name in _SCENARIO_REGISTRY:
            raise RegistryError(f"scenario {name!r} is already registered")
        seen = set()
        for spec in params:
            if spec.name in seen:
                raise RegistryError(
                    f"scenario {name!r} declares parameter {spec.name!r} twice"
                )
            seen.add(spec.name)
        doc = (builder.__doc__ or "").strip()
        entry = ScenarioSpec(
            name=name,
            builder=builder,
            params=tuple(params),
            description=description or (doc.splitlines()[0] if doc else ""),
            tags=tuple(tags),
        )
        _SCENARIO_REGISTRY[name] = entry
        builder.scenario_spec = entry  # type: ignore[attr-defined]
        return builder

    return decorator


def get_scenario(name: str) -> ScenarioSpec:
    """Look a registered scenario up by name."""
    try:
        return _SCENARIO_REGISTRY[name]
    except KeyError:
        raise RegistryError(
            f"unknown scenario {name!r}; registered: {list_scenarios()}"
        ) from None


def list_scenarios(tag: Optional[str] = None) -> Tuple[str, ...]:
    """All registered scenario names (sorted), optionally filtered by tag."""
    names = (
        name
        for name, spec in _SCENARIO_REGISTRY.items()
        if tag is None or tag in spec.tags
    )
    return tuple(sorted(names))


def scenario_registry() -> Dict[str, ScenarioSpec]:
    """A snapshot of the registry (name -> spec)."""
    return dict(_SCENARIO_REGISTRY)
