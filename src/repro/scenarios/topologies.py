"""Sweepable flooding scenarios over families of structured topologies.

Conclusions about timing/coordination bounds only become trustworthy when
swept across *families* of topologies and randomized instances, so every
structured topology builder of :mod:`repro.simulation.network` (line, ring,
star, complete graph, grid, torus, tree) is exposed here as a registered,
seeded scenario.  Each instance floods full-information messages from a
seeded choice of trigger processes, which gives the analysis passes (bounds
graphs, knowledge, theorem checks) realistic runs whose shape is controlled
by a handful of integer parameters — exactly what the sweep runner needs.
"""

from __future__ import annotations

from ..simulation.delivery import SeededRandomDelivery
from ..simulation.network import (
    TimedNetwork,
    fully_connected,
    grid,
    line,
    ring,
    star,
    torus,
    tree,
)
from ..simulation.protocols import ProtocolAssignment
from .base import ParamSpec, Scenario, register_scenario
from .random_nets import random_external_schedule

#: Parameters shared by every topology-flooding scenario.  The structural
#: ones (channel bounds, horizon) are shard keys: cells agreeing on them
#: build the same topology family, so the sharded sweep backend co-schedules
#: them on one worker; the seed/trigger axes vary freely within a shard.
_COMMON_PARAMS = (
    ParamSpec("lower", int, 1, "uniform per-channel lower bound L", shard_key=True),
    ParamSpec("upper", int, 2, "uniform per-channel upper bound U", shard_key=True),
    ParamSpec("seed", int, 0, "seed for trigger placement and delivery"),
    ParamSpec("num_inputs", int, 2, "number of external triggers"),
    ParamSpec("horizon", int, 12, "simulated horizon", shard_key=True),
)


def _flood_scenario(
    name: str,
    net: TimedNetwork,
    seed: int,
    num_inputs: int,
    horizon: int,
    description: str,
) -> Scenario:
    externals = random_external_schedule(
        net, seed=seed, num_inputs=max(1, num_inputs), latest_time=5,
        tag_prefix="mu_topo",
    )
    return Scenario(
        name=name,
        timed_network=net,
        protocols=ProtocolAssignment(),
        external_inputs=externals,
        delivery=SeededRandomDelivery(seed=seed),
        horizon=horizon,
        description=description,
    )


@register_scenario(
    "line-flood",
    params=[
        ParamSpec("num_processes", int, 4, "processes on the line", shard_key=True),
        *_COMMON_PARAMS,
    ],
    description="FFIP flooding on a bidirectional line",
    tags=("topology", "flooding"),
)
def line_flooding_scenario(
    num_processes: int = 4,
    lower: int = 1,
    upper: int = 2,
    seed: int = 0,
    num_inputs: int = 2,
    horizon: int = 12,
) -> Scenario:
    net = line([f"p{i}" for i in range(num_processes)], lower, upper)
    return _flood_scenario(
        f"line-flood-{num_processes}-{seed}", net, seed, num_inputs, horizon,
        f"Flooding on a {num_processes}-process bidirectional line",
    )


@register_scenario(
    "ring-flood",
    params=[
        ParamSpec("num_processes", int, 5, "processes on the ring", shard_key=True),
        *_COMMON_PARAMS,
    ],
    description="FFIP flooding on a unidirectional ring",
    tags=("topology", "flooding"),
)
def ring_flooding_scenario(
    num_processes: int = 5,
    lower: int = 1,
    upper: int = 2,
    seed: int = 0,
    num_inputs: int = 2,
    horizon: int = 12,
) -> Scenario:
    net = ring([f"p{i}" for i in range(num_processes)], lower, upper)
    return _flood_scenario(
        f"ring-flood-{num_processes}-{seed}", net, seed, num_inputs, horizon,
        f"Flooding on a {num_processes}-process unidirectional ring",
    )


@register_scenario(
    "star-flood",
    params=[
        ParamSpec("num_leaves", int, 4, "leaves around the hub", shard_key=True),
        *_COMMON_PARAMS,
    ],
    description="FFIP flooding on a hub-and-leaves star",
    tags=("topology", "flooding"),
)
def star_flooding_scenario(
    num_leaves: int = 4,
    lower: int = 1,
    upper: int = 2,
    seed: int = 0,
    num_inputs: int = 2,
    horizon: int = 12,
) -> Scenario:
    net = star("hub", [f"leaf{i}" for i in range(num_leaves)], lower, upper)
    return _flood_scenario(
        f"star-flood-{num_leaves}-{seed}", net, seed, num_inputs, horizon,
        f"Flooding on a star with {num_leaves} leaves",
    )


@register_scenario(
    "complete-flood",
    params=[
        ParamSpec("num_processes", int, 4, "processes in the clique", shard_key=True),
        *_COMMON_PARAMS,
    ],
    description="FFIP flooding on a complete directed network",
    tags=("topology", "flooding"),
)
def complete_flooding_scenario(
    num_processes: int = 4,
    lower: int = 1,
    upper: int = 2,
    seed: int = 0,
    num_inputs: int = 2,
    horizon: int = 12,
) -> Scenario:
    net = fully_connected([f"p{i}" for i in range(num_processes)], lower, upper)
    return _flood_scenario(
        f"complete-flood-{num_processes}-{seed}", net, seed, num_inputs, horizon,
        f"Flooding on a complete network of {num_processes} processes",
    )


@register_scenario(
    "grid-flood",
    params=[
        ParamSpec("rows", int, 2, "grid rows", shard_key=True),
        ParamSpec("cols", int, 3, "grid columns", shard_key=True),
        *_COMMON_PARAMS,
    ],
    description="FFIP flooding on a rows x cols mesh",
    tags=("topology", "flooding"),
)
def grid_flooding_scenario(
    rows: int = 2,
    cols: int = 3,
    lower: int = 1,
    upper: int = 2,
    seed: int = 0,
    num_inputs: int = 2,
    horizon: int = 12,
) -> Scenario:
    net = grid(rows, cols, lower, upper)
    return _flood_scenario(
        f"grid-flood-{rows}x{cols}-{seed}", net, seed, num_inputs, horizon,
        f"Flooding on a {rows}x{cols} mesh",
    )


@register_scenario(
    "torus-flood",
    params=[
        ParamSpec("rows", int, 3, "torus rows", shard_key=True),
        ParamSpec("cols", int, 3, "torus columns", shard_key=True),
        *_COMMON_PARAMS,
    ],
    description="FFIP flooding on a rows x cols torus",
    tags=("topology", "flooding"),
)
def torus_flooding_scenario(
    rows: int = 3,
    cols: int = 3,
    lower: int = 1,
    upper: int = 2,
    seed: int = 0,
    num_inputs: int = 2,
    horizon: int = 12,
) -> Scenario:
    net = torus(rows, cols, lower, upper)
    return _flood_scenario(
        f"torus-flood-{rows}x{cols}-{seed}", net, seed, num_inputs, horizon,
        f"Flooding on a {rows}x{cols} torus",
    )


@register_scenario(
    "tree-flood",
    params=[
        ParamSpec("branching", int, 2, "children per node", shard_key=True),
        ParamSpec("depth", int, 2, "tree depth", shard_key=True),
        *_COMMON_PARAMS,
    ],
    description="FFIP flooding on a rooted tree",
    tags=("topology", "flooding"),
)
def tree_flooding_scenario(
    branching: int = 2,
    depth: int = 2,
    lower: int = 1,
    upper: int = 2,
    seed: int = 0,
    num_inputs: int = 2,
    horizon: int = 12,
) -> Scenario:
    net = tree(branching, depth, lower, upper)
    return _flood_scenario(
        f"tree-flood-{branching}x{depth}-{seed}", net, seed, num_inputs, horizon,
        f"Flooding on a depth-{depth} tree with branching {branching}",
    )
