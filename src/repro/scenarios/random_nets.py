"""Randomised networks and workloads for property tests and validation benches.

All generators are seeded and deterministic: the same seed always yields the
same network, schedule and scenario, which keeps hypothesis shrinking and the
benchmark harness reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..simulation.context import ExternalInput
from ..simulation.delivery import SeededRandomDelivery
from ..simulation.messages import GO_TRIGGER
from ..simulation.network import TimedNetwork, timed_network
from ..simulation.protocols import (
    ProtocolAssignment,
    actor_protocol,
    go_sender_protocol,
    relayed_actor_protocol,
)
from .base import ParamSpec, Scenario, register_scenario


def random_timed_network(
    num_processes: int,
    seed: int = 0,
    edge_probability: float = 0.5,
    lower_range: Tuple[int, int] = (1, 4),
    upper_slack: Tuple[int, int] = (0, 5),
    ensure_strongly_connected: bool = True,
) -> TimedNetwork:
    """A random directed network with random per-channel bounds.

    A directed ring over all processes is always included when
    ``ensure_strongly_connected`` is true, so floods eventually reach
    everybody; additional channels are added independently with
    ``edge_probability``.  Each channel gets ``L`` uniform in ``lower_range``
    and ``U = L + slack`` with slack uniform in ``upper_slack``.
    """
    if num_processes < 2:
        raise ValueError("need at least two processes")
    rng = random.Random(seed)
    processes = [f"p{i}" for i in range(num_processes)]
    channels: Dict[Tuple[str, str], Tuple[int, int]] = {}

    def add_channel(src: str, dst: str) -> None:
        lower = rng.randint(*lower_range)
        upper = lower + rng.randint(*upper_slack)
        channels[(src, dst)] = (lower, upper)

    if ensure_strongly_connected:
        for index in range(num_processes):
            add_channel(processes[index], processes[(index + 1) % num_processes])
    for src in processes:
        for dst in processes:
            if src == dst or (src, dst) in channels:
                continue
            if rng.random() < edge_probability:
                add_channel(src, dst)
    return timed_network(channels, processes=processes)


def random_external_schedule(
    net: TimedNetwork,
    seed: int = 0,
    num_inputs: int = 2,
    latest_time: int = 6,
    tag_prefix: str = "mu_rand",
) -> List[ExternalInput]:
    """A random schedule of distinct external triggers.

    The first trigger is always ``mu_go``; later ones are tagged
    ``{tag_prefix}_{index}`` so callers (random nets, topology sweeps) can
    keep their trigger families distinguishable.
    """
    rng = random.Random(seed + 1)
    inputs: List[ExternalInput] = []
    for index in range(num_inputs):
        process = rng.choice(net.processes)
        time = rng.randint(1, max(1, latest_time))
        tag = GO_TRIGGER if index == 0 else f"{tag_prefix}_{index}"
        inputs.append(ExternalInput(time, process, tag))
    return inputs


@dataclass(frozen=True)
class RandomWorkload:
    """A random coordination workload: network, roles, schedule and delivery seed."""

    net: TimedNetwork
    go_sender: str
    actor_a: str
    actor_b: str
    externals: Tuple[ExternalInput, ...]
    seed: int


def random_workload(
    num_processes: int = 5,
    seed: int = 0,
    edge_probability: float = 0.5,
    go_time: int = 2,
    extra_triggers: int = 1,
) -> RandomWorkload:
    """A random network plus a random assignment of the A/B/C roles.

    The go sender C must have a channel to A (A acts on C's direct message),
    so the roles are drawn until that holds (always possible because the
    network contains a ring).
    """
    net = random_timed_network(num_processes, seed=seed, edge_probability=edge_probability)
    rng = random.Random(seed + 17)
    processes = list(net.processes)
    while True:
        go_sender, actor_a, actor_b = rng.sample(processes, 3)
        if net.is_path((go_sender, actor_a)):
            break
    externals = [ExternalInput(go_time, go_sender, GO_TRIGGER)]
    for index in range(1, extra_triggers + 1):
        process = rng.choice(processes)
        externals.append(
            ExternalInput(go_time + rng.randint(0, 5), process, f"mu_rand_{index}")
        )
    return RandomWorkload(
        net=net,
        go_sender=go_sender,
        actor_a=actor_a,
        actor_b=actor_b,
        externals=tuple(externals),
        seed=seed,
    )


def workload_scenario(
    workload: RandomWorkload,
    b_protocol=None,
    horizon: int = 25,
) -> Scenario:
    """Wrap a random workload as a runnable scenario (B's protocol pluggable)."""
    protocols = ProtocolAssignment()
    protocols.assign(workload.go_sender, go_sender_protocol())
    protocols.assign(workload.actor_a, actor_protocol("a", workload.go_sender))
    if b_protocol is not None:
        protocols.assign(workload.actor_b, b_protocol)
    return Scenario(
        name=f"random-workload-{workload.seed}",
        timed_network=workload.net,
        protocols=protocols,
        external_inputs=list(workload.externals),
        delivery=SeededRandomDelivery(seed=workload.seed),
        horizon=horizon,
        description="Randomised coordination workload",
    )


@register_scenario(
    "flooding",
    params=[
        ParamSpec("num_processes", int, 4, "number of processes", shard_key=True),
        ParamSpec("seed", int, 0, "seed for the network, schedule and delivery"),
        ParamSpec("horizon", int, 15, "simulated horizon", shard_key=True),
        ParamSpec("edge_probability", float, 0.5, "extra-channel probability"),
        ParamSpec("num_inputs", int, 2, "number of external triggers"),
    ],
    description="Plain FFIP flooding on a seeded random network",
    tags=("random", "flooding"),
)
def flooding_scenario(
    num_processes: int = 4,
    seed: int = 0,
    horizon: int = 15,
    edge_probability: float = 0.5,
    num_inputs: int = 2,
) -> Scenario:
    """A plain flooding run on a random network (no coordination roles).

    Used by property tests that only need "some realistic run" to examine:
    bounds-graph invariants, causality properties, knowledge soundness, etc.
    """
    net = random_timed_network(num_processes, seed=seed, edge_probability=edge_probability)
    externals = random_external_schedule(net, seed=seed, num_inputs=num_inputs)
    return Scenario(
        name=f"flooding-{num_processes}-{seed}",
        timed_network=net,
        protocols=ProtocolAssignment(),
        external_inputs=externals,
        delivery=SeededRandomDelivery(seed=seed),
        horizon=horizon,
        description="Plain FFIP flooding on a random network",
    )


@register_scenario(
    "random-workload",
    params=[
        ParamSpec("num_processes", int, 5, "number of processes", shard_key=True),
        ParamSpec("seed", int, 0, "seed for the network, roles and delivery"),
        ParamSpec("edge_probability", float, 0.5, "extra-channel probability"),
        ParamSpec("go_time", int, 2, "time at which C receives mu_go"),
        ParamSpec("horizon", int, 25, "simulated horizon", shard_key=True),
    ],
    description="Seeded random network with random A/B/C coordination roles",
    tags=("random", "coordination"),
)
def random_coordination_scenario(
    num_processes: int = 5,
    seed: int = 0,
    edge_probability: float = 0.5,
    go_time: int = 2,
    horizon: int = 25,
) -> Scenario:
    """A random coordination workload as a registry-addressable scenario.

    Bundles :func:`random_workload` and :func:`workload_scenario` so sweeps
    can draw randomized coordination instances by seed alone.  B runs the
    naive "act on first message from the go sender" rule so that every
    adversary produces observable (and comparable) ``a``/``b`` timings.
    """
    workload = random_workload(
        num_processes=num_processes,
        seed=seed,
        edge_probability=edge_probability,
        go_time=go_time,
    )
    b_protocol = relayed_actor_protocol("b", workload.go_sender)
    return workload_scenario(workload, b_protocol=b_protocol, horizon=horizon)
