"""Builders for the communication patterns drawn in the paper's figures.

Every figure of the paper is reproduced as a :class:`~repro.scenarios.base.Scenario`
whose network, bounds, external triggers and (scripted) delivery delays
realise exactly the drawn pattern.  The builders are parameterised so the
benchmarks can sweep bounds and margins around the paper's nominal values.

Role naming follows the paper: ``C`` spontaneously receives ``mu_go`` and
sends the go message, ``A`` performs ``a`` upon receiving it, ``B`` is the
coordinating process performing ``b``; ``D`` (and ``D2``, ...) are pivot
processes and ``E`` (``E2``, ...) additional spontaneous senders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..coordination.optimal import OptimalCoordinationProtocol
from ..coordination.tasks import late_task
from ..simulation.context import ExternalInput
from ..simulation.delivery import DeliveryStrategy, EarliestDelivery, LatestDelivery
from ..simulation.messages import GO_TRIGGER
from ..simulation.network import timed_network
from ..simulation.protocols import (
    PerformOnceRule,
    Protocol,
    ProtocolAssignment,
    RuleBasedProtocol,
    actor_protocol,
    go_sender_protocol,
    received_go_trigger,
    relayed_actor_protocol,
)
from .base import ParamSpec, Scenario, register_scenario

#: External trigger tags for the additional spontaneous senders (E, E2, ...).
def spontaneous_tag(index: int) -> str:
    return f"mu_spont_{index}"


def _act_on_message_from(action: str, sender: str) -> RuleBasedProtocol:
    """The naive B rule used in Figures 1 and 2a: act upon hearing from ``sender``."""
    rule = PerformOnceRule(
        action, lambda ctx, s=sender: bool(ctx.received_from(s))
    )
    return RuleBasedProtocol([rule])


def _flood_on_trigger(tag: str) -> RuleBasedProtocol:
    """A spontaneous sender: floods on every receipt (including its trigger)."""
    rule = PerformOnceRule("spontaneous_send", lambda ctx, t=tag: received_go_trigger(ctx, t))
    return RuleBasedProtocol([rule])


# ---------------------------------------------------------------------------
# Figure 1: coordination without direct communication (a single fork).
# ---------------------------------------------------------------------------


@register_scenario(
    "figure1",
    params=[
        ParamSpec("lower_cb", int, 8, "L on the C->B channel"),
        ParamSpec("upper_cb", int, 10, "U on the C->B channel"),
        ParamSpec("lower_ca", int, 1, "L on the C->A channel"),
        ParamSpec("upper_ca", int, 4, "U on the C->A channel"),
        ParamSpec("go_time", int, 2, "time at which C receives mu_go"),
        ParamSpec("horizon", int, 30, "simulated horizon"),
    ],
    description="Figure 1: a single two-legged fork out of C",
    tags=("figure", "coordination"),
)
def figure1_scenario(
    lower_cb: int = 8,
    upper_cb: int = 10,
    lower_ca: int = 1,
    upper_ca: int = 4,
    go_time: int = 2,
    delivery: Optional[DeliveryStrategy] = None,
    b_protocol: Optional[Protocol] = None,
    horizon: int = 30,
) -> Scenario:
    """Figure 1: C sends to A and B; ``L_CB >= U_CA + x`` guarantees ``a --x--> b``.

    By default B uses the figure's rule (perform ``b`` upon receiving C's
    message); pass an explicit ``b_protocol`` to study other rules on the same
    pattern.
    """
    net = timed_network(
        {
            ("C", "A"): (lower_ca, upper_ca),
            ("C", "B"): (lower_cb, upper_cb),
        },
        processes=["A", "B", "C"],
    )
    protocols = ProtocolAssignment()
    protocols.assign("C", go_sender_protocol())
    protocols.assign("A", actor_protocol("a", "C"))
    protocols.assign("B", b_protocol if b_protocol is not None else _act_on_message_from("b", "C"))
    return Scenario(
        name="figure1",
        timed_network=net,
        protocols=protocols,
        external_inputs=[ExternalInput(go_time, "C", GO_TRIGGER)],
        delivery=delivery if delivery is not None else LatestDelivery(),
        horizon=horizon,
        description=(
            "Single two-legged fork out of C; guarantees a precedes b by "
            f"L_CB - U_CA = {lower_cb - upper_ca} without any A<->B communication."
        ),
    )


def figure1_guaranteed_margin(scenario: Scenario) -> int:
    """The fork-guaranteed margin ``L_CB - U_CA`` of a Figure 1 scenario."""
    net = scenario.timed_network
    return net.L("C", "B") - net.U("C", "A")


# ---------------------------------------------------------------------------
# The generic zigzag chain: Figures 2a, 2b, 4 and 5 are instances.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ZigzagChainLayout:
    """Naming and structural description of a zigzag-chain scenario.

    ``sources`` are the spontaneous senders (the first one is C), ``pivots``
    the intermediate processes where consecutive forks meet, ``actor`` is A
    and ``target`` is B.
    """

    sources: Tuple[str, ...]
    pivots: Tuple[str, ...]
    actor: str
    target: str

    @property
    def go_sender(self) -> str:
        return self.sources[0]


def zigzag_chain_layout(num_forks: int) -> ZigzagChainLayout:
    if num_forks < 1:
        raise ValueError("a zigzag chain needs at least one fork")
    sources = tuple(["C"] + [f"E{i}" if i > 1 else "E" for i in range(1, num_forks)])
    pivots = tuple(f"D{i}" if i > 1 else "D" for i in range(1, num_forks))
    return ZigzagChainLayout(sources=sources, pivots=pivots, actor="A", target="B")


@register_scenario(
    "zigzag-chain",
    params=[
        ParamSpec("num_forks", int, 2, "number of forks in the chain"),
        ParamSpec("with_reports", bool, False, "add pivot->B report channels"),
        ParamSpec("go_time", int, 2, "time at which C receives mu_go"),
    ],
    description="Parametric k-fork zigzag chain generalising Figure 2a",
    tags=("figure", "zigzag", "coordination"),
)
def zigzag_chain_scenario(
    num_forks: int = 2,
    head_bounds: Tuple[int, int] = (6, 8),
    tail_bounds: Tuple[int, int] = (1, 3),
    actor_bounds: Tuple[int, int] = (1, 4),
    target_bounds: Tuple[int, int] = (8, 10),
    report_bounds: Tuple[int, int] = (1, 2),
    with_reports: bool = False,
    go_time: int = 2,
    trigger_spacing: Optional[int] = None,
    b_protocol: Optional[Protocol] = None,
    delivery: Optional[DeliveryStrategy] = None,
    horizon: Optional[int] = None,
) -> Scenario:
    """A ``num_forks``-fork zigzag pattern ending at B, generalising Figure 2a.

    Structure (for ``num_forks = k``): spontaneous senders ``C, E, E2, ...``
    and pivots ``D, D2, ...`` with channels

    * ``C -> A`` (the go/action chain, bounds ``actor_bounds``),
    * ``S_i -> D_i`` for each fork's head leg (bounds ``head_bounds``),
    * ``S_{i+1} -> D_i`` for the next fork's tail leg (bounds ``tail_bounds``),
    * ``S_k -> B`` (the final head leg, bounds ``target_bounds``), and
    * optionally ``D_i -> B`` report channels (bounds ``report_bounds``),
      which are what turns the zigzag into a *visible* zigzag (Figure 2b).

    External triggers are staggered so that each pivot hears the earlier
    source before the later one, realising the drawn interleaving.
    """
    layout = zigzag_chain_layout(num_forks)
    channels: Dict[Tuple[str, str], Tuple[int, int]] = {}
    channels[(layout.go_sender, layout.actor)] = actor_bounds
    for index, pivot in enumerate(layout.pivots):
        channels[(layout.sources[index], pivot)] = head_bounds
        channels[(layout.sources[index + 1], pivot)] = tail_bounds
    channels[(layout.sources[-1], layout.target)] = target_bounds
    if with_reports:
        for pivot in layout.pivots:
            channels[(pivot, layout.target)] = report_bounds

    processes = [layout.actor, layout.target, *layout.sources, *layout.pivots]
    net = timed_network(channels, processes=processes)

    if trigger_spacing is None:
        trigger_spacing = head_bounds[1] + 1
    externals = [ExternalInput(go_time, layout.go_sender, GO_TRIGGER)]
    for index, source in enumerate(layout.sources[1:], start=1):
        externals.append(
            ExternalInput(go_time + index * trigger_spacing, source, spontaneous_tag(index))
        )

    protocols = ProtocolAssignment()
    protocols.assign(layout.go_sender, go_sender_protocol())
    protocols.assign(layout.actor, actor_protocol("a", layout.go_sender))
    for index, source in enumerate(layout.sources[1:], start=1):
        protocols.assign(source, _flood_on_trigger(spontaneous_tag(index)))
    if b_protocol is None:
        b_protocol = _act_on_message_from("b", layout.sources[-1])
    protocols.assign(layout.target, b_protocol)

    if horizon is None:
        horizon = go_time + num_forks * trigger_spacing + target_bounds[1] + report_bounds[1] + 10

    return Scenario(
        name=f"zigzag-chain-{num_forks}",
        timed_network=net,
        protocols=protocols,
        external_inputs=externals,
        delivery=delivery if delivery is not None else EarliestDelivery(),
        horizon=horizon,
        description=(
            f"A {num_forks}-fork zigzag pattern from A's action to B"
            + (" with pivot reports to B (visible zigzag)" if with_reports else "")
        ),
    )


def zigzag_chain_equation_weight(scenario: Scenario, num_forks: int) -> int:
    """The Equation (1)-style fork-weight sum of a zigzag-chain scenario.

    ``-U(C->A) + sum_i [L(S_i->D_i) - U(S_{i+1}->D_i)] + L(S_k->B)`` -- the
    guaranteed precedence margin *excluding* the +1 separations that the run's
    interleaving adds at the pivots.
    """
    layout = zigzag_chain_layout(num_forks)
    net = scenario.timed_network
    weight = -net.U(layout.go_sender, layout.actor)
    for index, pivot in enumerate(layout.pivots):
        weight += net.L(layout.sources[index], pivot)
        weight -= net.U(layout.sources[index + 1], pivot)
    weight += net.L(layout.sources[-1], layout.target)
    return weight


@register_scenario(
    "figure2a",
    params=[
        ParamSpec("num_forks", int, 2, "number of forks in the chain"),
        ParamSpec("go_time", int, 2, "time at which C receives mu_go"),
    ],
    description="Figure 2a: the two-fork zigzag through pivot D",
    tags=("figure", "zigzag", "coordination"),
)
def figure2a_scenario(**kwargs) -> Scenario:
    """Figure 2a: the two-fork zigzag through pivot D, without reports to B."""
    kwargs.setdefault("num_forks", 2)
    kwargs.setdefault("with_reports", False)
    scenario = zigzag_chain_scenario(**kwargs)
    scenario.name = "figure2a"
    return scenario


@register_scenario(
    "figure2b",
    params=[
        ParamSpec("num_forks", int, 2, "number of forks in the chain"),
        ParamSpec("go_time", int, 2, "time at which C receives mu_go"),
    ],
    description="Figure 2b: the visible zigzag; B runs the optimal protocol",
    tags=("figure", "zigzag", "coordination"),
)
def figure2b_scenario(margin: Optional[int] = None, **kwargs) -> Scenario:
    """Figure 2b: the same zigzag made visible via D's report; B runs Protocol 2."""
    kwargs.setdefault("num_forks", 2)
    kwargs.setdefault("with_reports", True)
    if margin is None:
        probe = zigzag_chain_scenario(**{**kwargs, "b_protocol": None})
        margin = zigzag_chain_equation_weight(probe, kwargs["num_forks"])
    task = late_task(margin)
    kwargs.setdefault("b_protocol", OptimalCoordinationProtocol(task))
    scenario = zigzag_chain_scenario(**kwargs)
    scenario.name = "figure2b"
    scenario.description += f"; B acts optimally for {task.describe()}"
    return scenario


@register_scenario(
    "figure4",
    params=[
        ParamSpec("num_forks", int, 3, "number of forks in the chain"),
        ParamSpec("go_time", int, 2, "time at which C receives mu_go"),
    ],
    description="Figure 4: a sigma-visible zigzag made of three forks",
    tags=("figure", "zigzag", "coordination"),
)
def figure4_scenario(margin: Optional[int] = None, **kwargs) -> Scenario:
    """Figure 4: a sigma-visible zigzag made of three forks."""
    kwargs.setdefault("num_forks", 3)
    kwargs.setdefault("with_reports", True)
    if margin is None:
        probe = zigzag_chain_scenario(**{**kwargs, "b_protocol": None})
        margin = zigzag_chain_equation_weight(probe, kwargs["num_forks"])
    task = late_task(margin)
    kwargs.setdefault("b_protocol", OptimalCoordinationProtocol(task))
    scenario = zigzag_chain_scenario(**kwargs)
    scenario.name = "figure4"
    return scenario


@register_scenario(
    "figure5",
    params=[
        ParamSpec("go_time", int, 2, "time at which C receives mu_go"),
    ],
    description="Figure 5: the visible zigzag pattern for Late<a --x--> b>",
    tags=("figure", "zigzag", "coordination"),
)
def figure5_scenario(margin: Optional[int] = None, **kwargs) -> Scenario:
    """Figure 5: the visible zigzag pattern for ``Late<a --x--> b>`` (two forks)."""
    scenario = figure2b_scenario(margin=margin, **kwargs)
    scenario.name = "figure5"
    return scenario


# ---------------------------------------------------------------------------
# Figure 3: a two-legged fork with multi-hop legs.
# ---------------------------------------------------------------------------


@register_scenario(
    "figure3",
    params=[
        ParamSpec("head_hops", int, 2, "hops on the C->...->B head leg"),
        ParamSpec("tail_hops", int, 2, "hops on the C->...->A tail leg"),
        ParamSpec("go_time", int, 2, "time at which C receives mu_go"),
    ],
    description="Figure 3: a fork whose legs are multi-hop relay chains",
    tags=("figure", "coordination"),
)
def figure3_scenario(
    head_hops: int = 2,
    tail_hops: int = 2,
    head_bounds: Tuple[int, int] = (4, 5),
    tail_bounds: Tuple[int, int] = (1, 2),
    go_time: int = 2,
    delivery: Optional[DeliveryStrategy] = None,
    horizon: Optional[int] = None,
) -> Scenario:
    """Figure 3: a fork whose head and tail legs are multi-hop relay chains.

    The head chain runs ``C -> H1 -> ... -> B`` (``head_hops`` hops, lower
    bounds accumulate) and the tail chain ``C -> T1 -> ... -> A``
    (``tail_hops`` hops, upper bounds accumulate); its weight is
    ``L(head chain) - U(tail chain)``.
    """
    if head_hops < 1 or tail_hops < 1:
        raise ValueError("both legs need at least one hop")
    head_relays = [f"H{i}" for i in range(1, head_hops)]
    tail_relays = [f"T{i}" for i in range(1, tail_hops)]
    head_chain = ["C", *head_relays, "B"]
    tail_chain = ["C", *tail_relays, "A"]
    channels: Dict[Tuple[str, str], Tuple[int, int]] = {}
    for src, dst in zip(head_chain, head_chain[1:]):
        channels[(src, dst)] = head_bounds
    for src, dst in zip(tail_chain, tail_chain[1:]):
        channels[(src, dst)] = tail_bounds
    processes = ["A", "B", "C", *head_relays, *tail_relays]
    net = timed_network(channels, processes=processes)

    protocols = ProtocolAssignment()
    protocols.assign("C", go_sender_protocol())
    protocols.assign("A", _act_on_relayed_go("a", "C"))
    protocols.assign("B", _act_on_relayed_go("b", "C"))

    if horizon is None:
        horizon = go_time + head_hops * head_bounds[1] + tail_hops * tail_bounds[1] + 10
    return Scenario(
        name="figure3",
        timed_network=net,
        protocols=protocols,
        external_inputs=[ExternalInput(go_time, "C", GO_TRIGGER)],
        delivery=delivery if delivery is not None else LatestDelivery(),
        horizon=horizon,
        description=(
            f"Two-legged fork with {head_hops}-hop head and {tail_hops}-hop tail legs"
        ),
    )


def _act_on_relayed_go(action: str, origin: str, trigger: str = GO_TRIGGER) -> RuleBasedProtocol:
    """Act when any received message's history shows ``origin`` saw the trigger.

    Used when the go reaches the actor through a relay chain rather than a
    direct channel (Figure 3): under an FFIP the relays embed C's receipt of
    ``mu_go`` in the forwarded history.
    """
    return relayed_actor_protocol(action, origin, trigger)


def figure3_fork_weight(scenario: Scenario, head_hops: int = 2, tail_hops: int = 2) -> int:
    """``L(head chain) - U(tail chain)`` for a Figure 3 scenario."""
    net = scenario.timed_network
    head_chain = ["C", *[f"H{i}" for i in range(1, head_hops)], "B"]
    tail_chain = ["C", *[f"T{i}" for i in range(1, tail_hops)], "A"]
    return net.path_lower(head_chain) - net.path_upper(tail_chain)


# ---------------------------------------------------------------------------
# Figure 6: the bound edges created by a single message.
# ---------------------------------------------------------------------------


@register_scenario(
    "figure6",
    params=[
        ParamSpec("lower", int, 2, "L on the i->j channel"),
        ParamSpec("upper", int, 5, "U on the i->j channel"),
        ParamSpec("go_time", int, 1, "time at which i receives mu_go"),
        ParamSpec("horizon", int, 12, "simulated horizon"),
    ],
    description="Figure 6: one message and the two bound edges it induces",
    tags=("figure",),
)
def figure6_scenario(
    lower: int = 2,
    upper: int = 5,
    go_time: int = 1,
    delivery: Optional[DeliveryStrategy] = None,
    horizon: int = 12,
) -> Scenario:
    """Figure 6: two processes, one message, and the two bound edges it induces."""
    net = timed_network({("i", "j"): (lower, upper)}, processes=["i", "j"])
    protocols = ProtocolAssignment()
    protocols.assign("i", go_sender_protocol())
    return Scenario(
        name="figure6",
        timed_network=net,
        protocols=protocols,
        external_inputs=[ExternalInput(go_time, "i", GO_TRIGGER)],
        delivery=delivery if delivery is not None else EarliestDelivery(),
        horizon=horizon,
        description="A single message from i to j and its L / -U bound edges",
    )


# ---------------------------------------------------------------------------
# Figure 8: the extended bounds graph of a three-process run.
# ---------------------------------------------------------------------------


@register_scenario(
    "figure8",
    params=[
        ParamSpec("go_time", int, 2, "time at which i receives mu_go"),
        ParamSpec("horizon", int, 14, "simulated horizon"),
    ],
    description="Figure 8: three flooding processes (extended bounds graph)",
    tags=("figure",),
)
def figure8_scenario(
    bounds: Tuple[int, int] = (2, 4),
    go_time: int = 2,
    delivery: Optional[DeliveryStrategy] = None,
    horizon: int = 14,
) -> Scenario:
    """Figure 8: three mutually connected processes i, j, k exchanging floods.

    The run gives an observing node on ``i`` a past containing some deliveries
    and some messages still in flight, which is exactly the situation the
    extended bounds graph (auxiliary nodes, E', E'', E''' edges) describes.
    """
    processes = ["i", "j", "k"]
    channels = {
        (a, b): bounds for a in processes for b in processes if a != b
    }
    net = timed_network(channels, processes=processes)
    protocols = ProtocolAssignment()
    protocols.assign("i", go_sender_protocol())
    return Scenario(
        name="figure8",
        timed_network=net,
        protocols=protocols,
        external_inputs=[ExternalInput(go_time, "i", GO_TRIGGER)],
        delivery=delivery if delivery is not None else EarliestDelivery(),
        horizon=horizon,
        description="Three flooding processes; substrate for the extended bounds graph",
    )
