"""repro: a reproduction of "On Using Time Without Clocks via Zigzag Causality".

The package is organised in layers:

* :mod:`repro.simulation` -- the bounded-communication-model (bcm) substrate:
  timed networks, full-information messages, protocols, delivery adversaries,
  and a discrete-event engine producing :class:`~repro.simulation.Run` objects.
* :mod:`repro.core` -- the paper's contribution: basic/general nodes, two-legged
  forks and zigzag patterns, basic and extended bounds graphs, timing
  constructions, knowledge of timed precedence, and executable checkers for
  Theorems 1-4.
* :mod:`repro.coordination` -- the ``Early``/``Late`` coordination tasks, the
  optimal zigzag-based protocol for process B, and baseline protocols.
* :mod:`repro.scenarios` -- builders for the exact communication patterns of
  the paper's figures plus randomized workloads and structured-topology
  families, all addressable by name through the scenario registry.
* :mod:`repro.viz` -- ASCII space-time diagrams, bounds-graph dumps,
  GraphML/DOT export, and the static HTML sweep dashboard.
* :mod:`repro.obs` -- zero-dependency observability: process-local metric
  counters/gauges/histograms, ``span()`` tracing (deep mode via the
  ``REPRO_TRACE`` environment variable), and the snapshot-delta collector
  that merges worker metrics into persisted sweep telemetry.
* :mod:`repro.experiments` -- the experiment substrate: a parallel sweep
  runner with deterministic per-cell seeding, versioned analysis passes, a
  persistent content-addressed result store, and the ``repro`` CLI
  (``python -m repro`` or the installed console script).

The most common entry points are re-exported here for convenience.
"""

from .core import (
    BasicNode,
    GeneralNode,
    KnowledgeChecker,
    KnowledgeSession,
    LongestPathEngine,
    TimedPrecedence,
    TwoLeggedFork,
    ZigzagPattern,
    basic_bounds_graph,
    check_theorem1,
    check_theorem2,
    check_theorem3,
    check_theorem4,
    check_theorem4_batch,
    general,
    knows_precedence,
    max_known_gap,
    precedes,
)
from .simulation import (
    Bounds,
    Context,
    EarliestDelivery,
    ExternalInput,
    LatestDelivery,
    Network,
    Run,
    SeededRandomDelivery,
    Simulator,
    TimedNetwork,
    simulate,
    timed_network,
)

__version__ = "1.0.0"

__all__ = [
    "BasicNode",
    "Bounds",
    "Context",
    "EarliestDelivery",
    "ExternalInput",
    "GeneralNode",
    "KnowledgeChecker",
    "KnowledgeSession",
    "LongestPathEngine",
    "LatestDelivery",
    "Network",
    "Run",
    "SeededRandomDelivery",
    "Simulator",
    "TimedNetwork",
    "TimedPrecedence",
    "TwoLeggedFork",
    "ZigzagPattern",
    "__version__",
    "basic_bounds_graph",
    "check_theorem1",
    "check_theorem2",
    "check_theorem3",
    "check_theorem4",
    "check_theorem4_batch",
    "general",
    "knows_precedence",
    "max_known_gap",
    "precedes",
    "simulate",
    "timed_network",
]
