"""Process-local structured metrics: counters, gauges, fixed-bucket histograms.

The registry is the always-on half of the instrumentation layer (the opt-in
``REPRO_TRACE`` deep mode lives in :mod:`repro.obs.trace`).  Design rules,
set by the hot paths that carry these metrics:

* **One registry per OS process, never swapped.**  Instrumented modules bind
  their :class:`Counter` objects once at import time (``_C = counter("x")``)
  and increment via a plain attribute add (``_C.value += 1``) -- the cost of
  one metric event is an attribute load plus an integer add, cheap enough to
  ride inside :class:`~repro.core.longest_paths.LongestPathEngine` queries.
  :meth:`MetricsRegistry.reset` therefore zeroes instruments *in place*; it
  never replaces them, so bound references stay live.
* **Snapshots are plain JSON.**  :meth:`MetricsRegistry.snapshot` returns a
  dict of dicts that serialises as-is; sweep workers ship snapshot *deltas*
  (:func:`snapshot_diff`) back with their results and the parent folds them
  together with :func:`merge_snapshots` -- counters and histogram buckets are
  additive across processes, gauges merge by sum (they report per-worker
  levels, so the merged value is a fleet aggregate).
* **Histograms have cheap fixed buckets.**  A tuple of upper bounds plus an
  overflow bucket; one observation is a short linear scan.  The default
  bucket ladder suits sub-second durations, the dominant use.

Metric names are dotted lowercase, grouped by subsystem: ``engine.*``,
``session.*``, ``intern.*``, ``store.*``, ``sweep.*``, and ``span.*`` (the
histograms recorded by :func:`repro.obs.trace.span`).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "registry",
    "empty_snapshot",
    "flatten_snapshot",
    "merge_snapshots",
    "snapshot_diff",
]

#: Default histogram bucket upper bounds (seconds): spans from ~0.1ms cells
#: to multi-second shards land in distinct buckets; everything above the last
#: bound goes to the overflow bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)


class Counter:
    """A monotonically increasing count (ints or float totals).

    Hot call sites skip :meth:`inc` and do ``c.value += 1`` directly -- same
    semantics, one attribute add.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (e.g. an intern-pool table size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max sidecars."""

    __slots__ = ("name", "bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds = tuple(sorted(bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    def _zero(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = None
        self.vmax = None


class MetricsRegistry:
    """Create-or-get registry of named instruments for one process."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name, bounds)
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe copy of every instrument's current state."""
        return {
            "counters": {name: c.value for name, c in self.counters.items()},
            "gauges": {name: g.value for name, g in self.gauges.items()},
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.total,
                    "min": h.vmin,
                    "max": h.vmax,
                }
                for name, h in self.histograms.items()
            },
        }

    def reset(self) -> None:
        """Zero every instrument in place (bound references stay live)."""
        for instrument in self.counters.values():
            instrument.value = 0
        for instrument in self.gauges.values():
            instrument.value = 0
        for instrument in self.histograms.values():
            instrument._zero()


#: The registry of this process.  Deliberately module-global and never
#: swapped: instrumented modules bind counters out of it at import time.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-local registry."""
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
    return _REGISTRY.histogram(name, bounds)


def empty_snapshot() -> Dict[str, Any]:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def flatten_snapshot(snapshot: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten a :meth:`~MetricsRegistry.snapshot` to sorted ``name -> number``.

    The text exposition format (``GET /metrics?format=flat`` in ``repro
    serve``, grep-friendly CI assertions): counters and gauges keep their
    names, histograms contribute ``<name>.count`` and ``<name>.sum``.
    """
    flat: Dict[str, float] = {}
    flat.update(snapshot.get("counters", {}))
    flat.update(snapshot.get("gauges", {}))
    for name, hist in snapshot.get("histograms", {}).items():
        flat[f"{name}.count"] = hist["count"]
        flat[f"{name}.sum"] = hist["sum"]
    return dict(sorted(flat.items()))


def snapshot_diff(before: Mapping[str, Any], after: Mapping[str, Any]) -> Dict[str, Any]:
    """What happened between two snapshots of the *same* registry.

    Counters and histogram counts/sums subtract (instruments absent from
    ``before`` count from zero); gauges take their ``after`` level, and a
    diffed histogram's ``min``/``max`` are the ``after`` values (the exact
    window extremes are not recoverable from two cumulative snapshots).
    """
    counters_before = before.get("counters", {})
    counters = {
        name: value - counters_before.get(name, 0)
        for name, value in after.get("counters", {}).items()
    }
    gauges = dict(after.get("gauges", {}))
    histograms: Dict[str, Any] = {}
    hist_before = before.get("histograms", {})
    for name, h_after in after.get("histograms", {}).items():
        h_prev = hist_before.get(name)
        if h_prev is None or list(h_prev["bounds"]) != list(h_after["bounds"]):
            histograms[name] = {key: value for key, value in h_after.items()}
            continue
        histograms[name] = {
            "bounds": list(h_after["bounds"]),
            "counts": [a - b for a, b in zip(h_after["counts"], h_prev["counts"])],
            "count": h_after["count"] - h_prev["count"],
            "sum": h_after["sum"] - h_prev["sum"],
            "min": h_after["min"],
            "max": h_after["max"],
        }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def _merge_minmax(a: Optional[float], b: Optional[float], pick) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return pick(a, b)


def merge_snapshots(
    accumulator: Dict[str, Any], snapshot: Mapping[str, Any]
) -> Dict[str, Any]:
    """Fold ``snapshot`` into ``accumulator`` (mutated and returned).

    Counters, gauges, and histogram buckets add; histogram ``min``/``max``
    combine.  Histograms with mismatched bucket ladders fall back to adding
    only ``count``/``sum`` (the first ladder wins).
    """
    acc_counters = accumulator.setdefault("counters", {})
    for name, value in snapshot.get("counters", {}).items():
        acc_counters[name] = acc_counters.get(name, 0) + value
    acc_gauges = accumulator.setdefault("gauges", {})
    for name, value in snapshot.get("gauges", {}).items():
        acc_gauges[name] = acc_gauges.get(name, 0) + value
    acc_hists = accumulator.setdefault("histograms", {})
    for name, incoming in snapshot.get("histograms", {}).items():
        current = acc_hists.get(name)
        if current is None:
            acc_hists[name] = {
                "bounds": list(incoming["bounds"]),
                "counts": list(incoming["counts"]),
                "count": incoming["count"],
                "sum": incoming["sum"],
                "min": incoming["min"],
                "max": incoming["max"],
            }
            continue
        if list(current["bounds"]) == list(incoming["bounds"]):
            current["counts"] = [
                a + b for a, b in zip(current["counts"], incoming["counts"])
            ]
        current["count"] += incoming["count"]
        current["sum"] += incoming["sum"]
        current["min"] = _merge_minmax(current["min"], incoming["min"], min)
        current["max"] = _merge_minmax(current["max"], incoming["max"], max)
    return accumulator
