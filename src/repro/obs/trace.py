"""Span tracing: monotonic timestamps around the stack's coarse phases.

:func:`span` is the deep half of the instrumentation layer.  It always
times its block with :func:`time.perf_counter` (monotonic) and records the
duration into the ``span.<name>.s`` histogram of the process registry, so
per-phase timing totals are available from metrics alone.  When the deep
mode is enabled -- the ``REPRO_TRACE`` environment variable is set to
anything non-empty, or :func:`set_tracing` was called -- each span
additionally appends a structured trace event::

    {"name": "cell", "start_s": 12.345678, "duration_s": 0.0021,
     "attrs": {"scenario": "torus-flood"}}

to a bounded per-process buffer (:func:`trace_events` /
:func:`drain_trace_events`).  Sweep workers drain their buffer and ship the
events back with their results so a sweep's telemetry can interleave spans
from every process.

Spans are for *coarse* phases (cells, shards, analysis passes, sweep
stages), not per-query paths: one disabled span costs two ``perf_counter``
calls and one histogram observation.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List

from .metrics import histogram

__all__ = [
    "TRACE_ENV",
    "TRACE_EVENT_LIMIT",
    "drain_trace_events",
    "set_tracing",
    "span",
    "trace_events",
    "tracing_enabled",
]

#: Environment variable enabling the deep trace mode (any non-empty value).
TRACE_ENV = "REPRO_TRACE"

#: Hard cap on buffered trace events per process; beyond it events are
#: counted as dropped rather than grown without bound.
TRACE_EVENT_LIMIT = 10_000

_tracing = bool(os.environ.get(TRACE_ENV))
_events: List[Dict[str, Any]] = []
_dropped = 0


def tracing_enabled() -> bool:
    return _tracing


def set_tracing(enabled: bool) -> bool:
    """Force the deep mode on/off; returns the previous setting."""
    global _tracing
    previous = _tracing
    _tracing = bool(enabled)
    return previous


def trace_events() -> List[Dict[str, Any]]:
    """A copy of the buffered trace events (oldest first)."""
    return list(_events)


def dropped_trace_events() -> int:
    """How many events the buffer cap discarded since the last drain."""
    return _dropped


def drain_trace_events() -> List[Dict[str, Any]]:
    """Return the buffered events and clear the buffer (and drop count)."""
    global _dropped
    events = list(_events)
    _events.clear()
    _dropped = 0
    return events


class span:
    """Context manager timing one phase; see the module docstring.

    Reusable and re-entrant-safe per instance is *not* guaranteed -- create
    one per ``with`` block (the normal idiom ``with span("cell", ...):``).
    """

    __slots__ = ("name", "attrs", "_start", "duration_s")

    def __init__(self, name: str, **attrs: Any):
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        #: Set on exit; lets callers read the phase timing off the span.
        self.duration_s = 0.0

    def __enter__(self) -> "span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        self.duration_s = duration
        histogram(f"span.{self.name}.s").observe(duration)
        if _tracing:
            global _dropped
            if len(_events) < TRACE_EVENT_LIMIT:
                event: Dict[str, Any] = {
                    "name": self.name,
                    "start_s": round(self._start, 6),
                    "duration_s": round(duration, 6),
                }
                if self.attrs:
                    event["attrs"] = dict(self.attrs)
                if exc_type is not None:
                    event["error"] = exc_type.__name__
                _events.append(event)
            else:
                _dropped += 1
