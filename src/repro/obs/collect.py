"""Collecting metrics across process boundaries.

Sweep workers run in their own OS processes with their own
:mod:`repro.obs.metrics` registries, so their instrument values never reach
the parent by themselves.  The protocol is snapshot deltas: a worker task
snapshots its registry before the work, does the work, and ships
``snapshot_diff(before, after)`` back alongside its results (the payloads of
``run_cell_monitored`` / ``run_shard_monitored`` in
:mod:`repro.experiments.executors`).  The parent folds every worker delta --
plus its own registry delta for in-process work -- into one
:class:`Collector`, whose merged snapshot becomes the ``metrics`` section of
the persisted sweep telemetry.

Deltas make worker reuse safe: a pool process that runs ten shards reports
each shard's increments exactly once, regardless of start method or reuse.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional

from .metrics import empty_snapshot, merge_snapshots, registry, snapshot_diff

__all__ = ["Collector", "registry_baseline", "registry_delta"]


def registry_baseline() -> Dict[str, Any]:
    """Snapshot the local registry as a baseline for :func:`registry_delta`."""
    return registry().snapshot()


def registry_delta(baseline: Mapping[str, Any]) -> Dict[str, Any]:
    """What the local registry accumulated since ``baseline``."""
    return snapshot_diff(baseline, registry().snapshot())


class Collector:
    """Accumulates worker metric deltas, shard timings, and trace events."""

    def __init__(self) -> None:
        self.merged: Dict[str, Any] = empty_snapshot()
        self.shards: List[Dict[str, Any]] = []
        self.trace: List[Dict[str, Any]] = []
        self.worker_events: List[Dict[str, Any]] = []
        self.worker_payloads = 0

    def add_metrics(self, snapshot: Optional[Mapping[str, Any]]) -> None:
        """Fold one worker's snapshot delta into the merged totals."""
        if snapshot:
            merge_snapshots(self.merged, snapshot)
            self.worker_payloads += 1

    def add_shard(self, cells: int, wall_s: float, **extra: Any) -> None:
        """Record one dispatched shard's size and wall time."""
        meta: Dict[str, Any] = {
            "cells": cells,
            "wall_s": round(wall_s, 6),
            "cells_per_s": round(cells / wall_s, 3) if wall_s > 0 else None,
        }
        meta.update(extra)
        self.shards.append(meta)

    def add_trace(self, events: Optional[List[Dict[str, Any]]]) -> None:
        if events:
            self.trace.extend(events)

    def add_worker_event(self, event: Mapping[str, Any]) -> None:
        """Record one worker liveness/retry event (joins, deaths, expiries).

        Fed by the distributed fabric (:mod:`repro.experiments.remote`);
        bounded so a flapping fleet cannot bloat the telemetry record.
        """
        if len(self.worker_events) < 1000:
            self.worker_events.append(dict(event))

    def worker_wall_s(self) -> float:
        """Total wall time spent inside dispatched shards/cells."""
        return sum(shard["wall_s"] for shard in self.shards)

    def summary(self) -> Dict[str, Any]:
        """The collector's contents as one JSON-safe dict."""
        summary = {
            "metrics": self.merged,
            "shards": list(self.shards),
            "worker_payloads": self.worker_payloads,
        }
        if self.worker_events:
            summary["worker_events"] = list(self.worker_events)
        return summary


def monotonic() -> float:
    """The trace timebase (exposed for tests)."""
    return time.perf_counter()
