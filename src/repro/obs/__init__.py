"""``repro.obs``: zero-dependency instrumentation for the whole stack.

Three pieces:

* :mod:`metrics <repro.obs.metrics>` -- a process-local
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  fixed-bucket histograms.  Always on; hot paths pay one attribute add per
  event (the overhead is gated below 5% by ``benchmarks/test_bench_obs.py``).
* :mod:`trace <repro.obs.trace>` -- :func:`~repro.obs.trace.span` context
  managers timing the coarse phases (cells, shards, analysis passes).  Span
  durations always land in ``span.<name>.s`` histograms; setting the
  ``REPRO_TRACE`` environment variable additionally records structured
  trace events with monotonic timestamps.
* :mod:`collect <repro.obs.collect>` -- the snapshot-delta protocol that
  carries worker-process metrics back to the sweep parent, and the
  :class:`~repro.obs.collect.Collector` that merges them into the persisted
  sweep telemetry.

The package imports nothing from the rest of ``repro``, so any layer (core,
simulation, experiments, viz) may instrument itself without cycles.
"""

from .collect import Collector, registry_baseline, registry_delta
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    empty_snapshot,
    flatten_snapshot,
    gauge,
    histogram,
    merge_snapshots,
    registry,
    snapshot_diff,
)
from .trace import (
    TRACE_ENV,
    drain_trace_events,
    set_tracing,
    span,
    trace_events,
    tracing_enabled,
)

__all__ = [
    "Collector",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TRACE_ENV",
    "counter",
    "drain_trace_events",
    "empty_snapshot",
    "flatten_snapshot",
    "gauge",
    "histogram",
    "merge_snapshots",
    "registry",
    "registry_baseline",
    "registry_delta",
    "set_tracing",
    "snapshot_diff",
    "span",
    "trace_events",
    "tracing_enabled",
]
