"""Pluggable analysis passes applied to every run a sweep produces.

An analysis pass is a named, versioned function ``(Run) -> dict`` returning
JSON-scalar results.  The version participates in the result-store cache key,
so bumping it invalidates exactly the cached cells whose numbers it produced;
unversioned code changes that do not alter results can ship without
re-running anything.

Passes adapt the existing analysis machinery of :mod:`repro.core` and
:mod:`repro.coordination` to arbitrary registry scenarios: roles (go sender,
actors of ``a`` and ``b``) are inferred from the run itself rather than
assumed to be the literal processes ``A``/``B``/``C``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, TYPE_CHECKING

from ..core.bounds_graph import basic_bounds_graph
from ..obs.trace import span
from ..core.extended_graph import ExtendedGraphError
from ..core.knowledge_session import KnowledgeSession
from ..core.nodes import general
from ..coordination.tasks import late_task, evaluate
from ..simulation.messages import GO_TRIGGER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.runs import Run


class AnalysisError(ValueError):
    """Raised on unknown analysis names."""


@dataclass(frozen=True)
class AnalysisPass:
    """A named, versioned analysis over a finished run."""

    name: str
    version: int
    fn: Callable[["Run"], Dict[str, Any]]
    description: str = ""

    def run(self, run: "Run") -> Dict[str, Any]:
        return self.fn(run)


_ANALYSIS_REGISTRY: Dict[str, AnalysisPass] = {}


def register_analysis(
    name: str, version: int = 1, description: str = ""
) -> Callable[[Callable[["Run"], Dict[str, Any]]], Callable[["Run"], Dict[str, Any]]]:
    """Register an analysis pass; the decorated function is returned unchanged."""

    def decorator(fn: Callable[["Run"], Dict[str, Any]]):
        if name in _ANALYSIS_REGISTRY:
            raise AnalysisError(f"analysis {name!r} is already registered")
        doc = (fn.__doc__ or "").strip()
        _ANALYSIS_REGISTRY[name] = AnalysisPass(
            name=name,
            version=version,
            fn=fn,
            description=description or (doc.splitlines()[0] if doc else ""),
        )
        return fn

    return decorator


def get_analysis(name: str) -> AnalysisPass:
    try:
        return _ANALYSIS_REGISTRY[name]
    except KeyError:
        raise AnalysisError(
            f"unknown analysis {name!r}; registered: {list_analyses()}"
        ) from None


def list_analyses() -> Tuple[str, ...]:
    return tuple(sorted(_ANALYSIS_REGISTRY))


@lru_cache(maxsize=None)
def _analysis_versions(names: Tuple[str, ...]) -> Tuple[Tuple[str, int], ...]:
    # Safe to memoize: versions are frozen at registration and names can
    # never be re-registered; an unknown name raises (and is not cached), so
    # late registrations are picked up on the next call.
    return tuple((name, get_analysis(name).version) for name in names)


def analysis_versions(names: Sequence[str]) -> Dict[str, int]:
    """``{name: version}`` for the requested passes (cache-key material).

    Memoized per name tuple — resume scans key every cell of a grid, and the
    registry lookup was the hot part of :meth:`SweepCell.key`.
    """
    return dict(_analysis_versions(tuple(names)))


def run_analyses(run: "Run", names: Sequence[str]) -> Dict[str, Dict[str, Any]]:
    """Apply the requested passes to one run, in the requested order.

    Each pass runs under a ``span(f"analysis.{name}")``, so per-pass timing
    totals accumulate in the ``span.analysis.<name>.s`` histograms without
    changing any result.
    """
    results: Dict[str, Dict[str, Any]] = {}
    for name in names:
        with span(f"analysis.{name}"):
            results[name] = get_analysis(name).run(run)
    return results


#: Passes every sweep applies unless told otherwise.
DEFAULT_ANALYSES: Tuple[str, ...] = (
    "summary",
    "bounds_graph",
    "bounds_stats",
    "coordination",
)


# ---------------------------------------------------------------------------
# Role inference.
# ---------------------------------------------------------------------------


def infer_roles(run: "Run") -> Dict[str, Optional[str]]:
    """Infer the coordination roles a run actually exhibits.

    The go sender is the process that received ``mu_go``; the actors of ``a``
    and ``b`` are whichever processes performed those actions.  Any role may
    be absent (pure flooding scenarios have none).
    """
    go_sender: Optional[str] = None
    for record in run.external_deliveries:
        if record.tag == GO_TRIGGER:
            go_sender = record.process
            break
    actor_a: Optional[str] = None
    actor_b: Optional[str] = None
    for record in run.actions():
        if record.action == "a" and actor_a is None:
            actor_a = record.process
        elif record.action == "b" and actor_b is None:
            actor_b = record.process
    return {"go_sender": go_sender, "actor_a": actor_a, "actor_b": actor_b}


# ---------------------------------------------------------------------------
# The built-in passes.
# ---------------------------------------------------------------------------


@register_analysis("summary", version=1)
def summary_pass(run: "Run") -> Dict[str, Any]:
    """Cheap structural statistics of the run."""
    first_action_times: Dict[str, int] = {}
    for record in run.actions():
        if record.action not in first_action_times:
            first_action_times[record.action] = record.time
    return {
        "horizon": run.horizon,
        "processes": len(run.processes),
        "channels": len(run.timed_network.channels),
        "sends": len(run.sends),
        "deliveries": len(run.deliveries),
        "pending": len(run.pending),
        "external_deliveries": len(run.external_deliveries),
        "actions": len(run.actions()),
        "first_action_times": first_action_times,
        "max_timeline_steps": max(
            (len(timeline) - 1 for timeline in run.timelines.values()), default=0
        ),
    }


@register_analysis("bounds_graph", version=1)
def bounds_graph_pass(run: "Run") -> Dict[str, Any]:
    """Size and composition of the run's basic bounds graph ``GB(r)``."""
    graph = basic_bounds_graph(run)
    by_label: Dict[str, int] = {}
    for edge in graph.edges:
        by_label[edge.label] = by_label.get(edge.label, 0) + 1
    return {
        "nodes": len(graph),
        "edges": graph.edge_count(),
        "edges_by_label": by_label,
    }


@register_analysis("bounds_stats", version=1)
def bounds_stats_pass(run: "Run") -> Dict[str, Any]:
    """All-pairs longest-path statistics of ``GB(r)`` over final nodes.

    Every ordered pair of per-process final nodes is queried through the
    batched longest-path engine's :meth:`LongestPathEngine.rows` -- one call
    for all sources, which the vectorized kernels settle in a single
    multi-source relaxation -- so the relaxation cost is paid once per source
    row rather than once per pair; ``rows_computed`` records exactly how many
    relaxations the whole cell needed.
    """
    graph = basic_bounds_graph(run)
    engine = graph.engine
    finals = sorted(
        (run.final_node(process) for process in run.processes),
        key=lambda node: node.process,
    )
    queried = 0
    reachable = 0
    max_gap: Optional[int] = None
    min_gap: Optional[int] = None
    for source, row in zip(finals, engine.rows(finals)):
        for target in finals:
            if target is source:
                continue
            queried += 1
            value = row[target]
            if value == float("-inf"):
                continue
            reachable += 1
            gap = int(value)
            if max_gap is None or gap > max_gap:
                max_gap = gap
            if min_gap is None or gap < min_gap:
                min_gap = gap
    return {
        "nodes": len(graph),
        "edges": graph.edge_count(),
        "queried_pairs": queried,
        "reachable_pairs": reachable,
        "max_pair_gap": max_gap,
        "min_pair_gap": min_gap,
        "has_positive_cycle": engine.has_positive_cycle(),
        "rows_computed": engine.stats.rows_computed,
    }


@register_analysis("coordination", version=1)
def coordination_pass(run: "Run") -> Dict[str, Any]:
    """Outcome of the run against a ``Late<a --0--> b>`` task with inferred roles."""
    roles = infer_roles(run)
    if roles["go_sender"] is None or roles["actor_a"] is None:
        return {"applicable": False, **roles}
    task = late_task(
        0,
        actor_a=roles["actor_a"],
        actor_b=roles["actor_b"] or "B",
        go_sender=roles["go_sender"],
    )
    outcome = evaluate(run, task)
    return {
        "applicable": True,
        **roles,
        "go_time": outcome.go_time,
        "a_time": outcome.a_time,
        "b_time": outcome.b_time,
        "b_performed": outcome.b_performed,
        "satisfied": outcome.satisfied,
        "achieved_margin": outcome.achieved_margin,
    }


@register_analysis("knowledge", version=2)
def knowledge_pass(run: "Run") -> Dict[str, Any]:
    """``max_known_gap`` at B's action node between A's action and B's action.

    Builds the extended bounds graph at the node where ``b`` was performed
    and asks for the largest ``x`` with ``K_sigma(theta_a --x--> sigma_b)``
    (Theorem 4 machinery).  The pass rides the incremental
    :class:`KnowledgeSession` substrate (a single observation is just a
    session's cold step) and answers both directions of the pair in one
    :meth:`KnowledgeSession.max_known_gaps` batch against a single overlay
    snapshot, which also yields the full known window.  Marked inapplicable
    when the run has no ``b`` action, no go, or the required nodes are not
    recognized at ``sigma_b``.
    """
    roles = infer_roles(run)
    if roles["go_sender"] is None or roles["actor_a"] is None or roles["actor_b"] is None:
        return {"applicable": False, **roles}
    b_record = run.find_action(roles["actor_b"], "b")
    go_node = None
    for record in run.external_deliveries:
        if record.tag == GO_TRIGGER and record.process == roles["go_sender"]:
            go_node = record.receiver_node
            break
    if b_record is None or go_node is None:
        return {"applicable": False, **roles}
    sigma_b = b_record.node
    if not run.timed_network.is_path((roles["go_sender"], roles["actor_a"])):
        return {"applicable": False, **roles, "reason": "no C->A channel"}
    theta_a = general(go_node, (roles["go_sender"], roles["actor_a"]))
    # A one-node chunk through the batch entry point: analysis passes share
    # the advance_many contract with the coordination replays.
    session = KnowledgeSession(run.timed_network).advance_many((sigma_b,))
    try:
        known_gap, reverse_gap = session.max_known_gaps(
            [(theta_a, sigma_b), (sigma_b, theta_a)]
        )
    except ExtendedGraphError:
        return {"applicable": False, **roles, "reason": "not recognized at sigma_b"}
    return {
        "applicable": True,
        **roles,
        "b_time": b_record.time,
        "known_gap": known_gap,
        "known_window": [
            known_gap,
            None if reverse_gap is None else -reverse_gap,
        ],
        "knows_precedence": known_gap is not None and known_gap >= 0,
    }
