"""Experiment orchestration: sweeps, analyses, the result store, and the CLI.

This package is the substrate for running the reproduction at scale: a
registered scenario (see :mod:`repro.scenarios`) crossed with delivery
adversaries, seeds and parameter values becomes a grid of *cells*; the
:mod:`runner <repro.experiments.runner>` executes cells on a process pool
with deterministic per-cell seeding; versioned :mod:`analysis passes
<repro.experiments.analyses>` turn each run into JSON metrics; and the
content-addressed :mod:`store <repro.experiments.store>` makes repeated
sweeps incremental.  Sweeps scale past one machine through the distributed
fabric (:mod:`repro.experiments.remote`: a lease-and-heartbeat coordinator
serving ``repro worker`` processes) and survive sick workers everywhere —
pool supervision in :mod:`repro.experiments.executors`, deterministic fault
injection in :mod:`repro.experiments.faults`.  The ``repro`` CLI
(:mod:`repro.experiments.cli`) wraps the whole pipeline.
"""

from .analyses import (
    DEFAULT_ANALYSES,
    AnalysisError,
    AnalysisPass,
    analysis_versions,
    get_analysis,
    infer_roles,
    list_analyses,
    register_analysis,
    run_analyses,
)
from .cli import main
from .executors import (
    BACKENDS,
    ChunkedShardExecutor,
    ProcessExecutor,
    SerialExecutor,
    SweepExecutor,
    WorkerTimeout,
    plan_shards,
    resolve_executor,
    run_cell_monitored,
    run_shard,
    run_shard_monitored,
    shard_signature,
)
from .faults import (
    DEFAULT_CHAOS_PLAN,
    FAULTS_ENV,
    STORAGE_KINDS,
    DropConnection,
    FaultError,
    FaultPlan,
    FaultRule,
    parse_plan,
    storage_fault,
)
from .golden import (
    GOLDEN_FORMAT_VERSION,
    check_corpus,
    golden_payload,
    knowledge_answers,
    write_corpus,
)
from .reporting import (
    aggregate_metric,
    cell_records,
    discover_metrics,
    flatten_scalars,
    format_aggregate,
    group_records,
)
from .runner import (
    ADVERSARIES,
    TELEMETRY_KIND,
    TELEMETRY_STATUS,
    SweepCell,
    SweepError,
    SweepOutcome,
    build_base_scenario,
    build_cell_scenario,
    decorate_scenario,
    error_record,
    execute_cell,
    execute_cell_inline,
    expand_grid,
    make_cell,
    make_delivery,
    run_cell,
    run_sweep,
    sweep_telemetry_key,
)
from .remote import (
    FabricScheduler,
    RemoteExecutor,
    WorkerFailure,
    cell_from_wire,
    cell_to_wire,
    run_worker,
)
from .snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    load_snapshot,
    write_snapshot,
)
from .store import (
    DEFAULT_ROTATE_BYTES,
    DEFAULT_STORE_PATH,
    INDEX_FORMAT_VERSION,
    SEGMENT_FORMAT_VERSION,
    STORE_FORMAT_VERSION,
    ResultStore,
    StoreError,
    canonical_json,
    cell_key,
)

__all__ = [
    "ADVERSARIES",
    "BACKENDS",
    "AnalysisError",
    "AnalysisPass",
    "ChunkedShardExecutor",
    "DEFAULT_ANALYSES",
    "DEFAULT_CHAOS_PLAN",
    "DEFAULT_ROTATE_BYTES",
    "DEFAULT_STORE_PATH",
    "DropConnection",
    "FAULTS_ENV",
    "FabricScheduler",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "GOLDEN_FORMAT_VERSION",
    "INDEX_FORMAT_VERSION",
    "ProcessExecutor",
    "RemoteExecutor",
    "ResultStore",
    "SEGMENT_FORMAT_VERSION",
    "SNAPSHOT_FORMAT_VERSION",
    "STORAGE_KINDS",
    "STORE_FORMAT_VERSION",
    "SerialExecutor",
    "SnapshotError",
    "StoreError",
    "SweepCell",
    "SweepError",
    "SweepExecutor",
    "SweepOutcome",
    "TELEMETRY_KIND",
    "TELEMETRY_STATUS",
    "WorkerFailure",
    "WorkerTimeout",
    "aggregate_metric",
    "analysis_versions",
    "build_base_scenario",
    "cell_records",
    "build_cell_scenario",
    "canonical_json",
    "cell_from_wire",
    "cell_key",
    "cell_to_wire",
    "check_corpus",
    "decorate_scenario",
    "discover_metrics",
    "error_record",
    "execute_cell",
    "execute_cell_inline",
    "expand_grid",
    "flatten_scalars",
    "format_aggregate",
    "get_analysis",
    "golden_payload",
    "group_records",
    "infer_roles",
    "knowledge_answers",
    "list_analyses",
    "load_snapshot",
    "main",
    "make_cell",
    "make_delivery",
    "parse_plan",
    "plan_shards",
    "register_analysis",
    "resolve_executor",
    "run_analyses",
    "run_cell",
    "run_cell_monitored",
    "run_shard",
    "run_shard_monitored",
    "run_sweep",
    "run_worker",
    "shard_signature",
    "storage_fault",
    "sweep_telemetry_key",
    "write_corpus",
    "write_snapshot",
]
