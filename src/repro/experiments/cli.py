"""The ``repro`` command line: list, run, sweep, report, export.

* ``repro list`` — registered scenarios (with typed parameters), analysis
  passes, and delivery adversaries;
* ``repro run SCENARIO`` — one cell, with an optional space-time diagram;
* ``repro sweep`` — a parameter grid executed on a process pool, cached in
  the persistent result store (repeat invocations are incremental);
* ``repro report`` — aggregate tables over the store (numeric metrics as
  mean/min/max, booleans and labels as value counts), per-cell space-time
  diagrams, persisted sweep telemetry (``--telemetry``), and a static HTML
  dashboard (``--html``);
* ``repro export`` — GraphML / DOT dumps of a cell's bounds graph, extended
  bounds graph ``GE(r, sigma)``, or causal-past DAG;
* ``repro worker`` — join a ``repro sweep --backend remote`` coordinator as
  a remote worker (heartbeats, lease-based shard execution, optional
  deterministic fault injection via ``--faults``, warm-start via
  ``--snapshot``);
* ``repro store`` — inspect and maintain the segmented result store:
  ``verify`` (CRC every sealed record; ``--repair`` drops corrupt ones),
  ``migrate`` (upgrade a legacy single-file store), ``compact``, ``info``,
  and ``snapshot`` (write a worker warm-start file).

Installed as a console script via ``pip install -e .`` or reachable as
``python -m repro``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.bounds_graph import basic_bounds_graph
from ..core.extended_graph import ExtendedBoundsGraph
from ..scenarios.base import ParamSpec, RegistryError, get_scenario, scenario_registry
from ..viz.export import causal_dag, graph_to_dot, graph_to_graphml
from ..viz.html_report import render_html_report
from ..viz.spacetime import action_table, spacetime_diagram
from .analyses import (
    DEFAULT_ANALYSES,
    AnalysisError,
    get_analysis,
    list_analyses,
)
from .executors import BACKENDS
from . import faults
from .faults import (
    DEFAULT_CHAOS_PLAN,
    FAULTS_ENV,
    STORAGE_KINDS,
    FaultError,
    parse_plan,
)
from .reporting import (
    DEFAULT_REPORT_METRICS,
    aggregate_metric,
    cell_records,
    format_aggregate,
    group_records,
    report_payload,
)
from .runner import (
    ADVERSARIES,
    TELEMETRY_KIND,
    SweepError,
    build_cell_scenario,
    execute_cell,
    expand_grid,
    make_cell,
    run_sweep,
)
from .store import DEFAULT_ROTATE_BYTES, DEFAULT_STORE_PATH, ResultStore

#: Default axes of `repro sweep`: 3 scenarios x 3 adversaries x 4 seeds = 36 cells.
DEFAULT_SWEEP_SCENARIOS = ("flooding", "torus-flood", "tree-flood")
DEFAULT_SWEEP_SEEDS = 4
DEFAULT_SWEEP_WORKERS = 2

class CliError(ValueError):
    """Raised on bad command-line input; rendered as an error message."""


# ---------------------------------------------------------------------------
# Argument plumbing.
# ---------------------------------------------------------------------------


def _csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _find_param_spec(scenarios: Sequence[str], name: str) -> ParamSpec:
    for scenario in scenarios:
        spec = get_scenario(scenario).param(name)
        if spec is not None:
            return spec
    raise CliError(
        f"no scenario in {list(scenarios)} declares a parameter named {name!r}"
    )


def _parse_single_overrides(
    scenario: str, assignments: Sequence[str]
) -> Dict[str, Any]:
    """Parse ``--set name=value`` entries against one scenario's spec."""
    overrides: Dict[str, Any] = {}
    for assignment in assignments:
        if "=" not in assignment:
            raise CliError(f"--set expects name=value, got {assignment!r}")
        name, _, text = assignment.partition("=")
        name = name.strip()
        spec = get_scenario(scenario).param(name)
        if spec is None:
            raise CliError(
                f"scenario {scenario!r} has no parameter {name!r}; "
                f"declared: {[p.name for p in get_scenario(scenario).params]}"
            )
        overrides[name] = spec.parse(text)
    return overrides


def _parse_grid_overrides(
    scenarios: Sequence[str], assignments: Sequence[str]
) -> Dict[str, List[Any]]:
    """Parse ``--set name=v1,v2,...`` entries into a parameter grid."""
    grid: Dict[str, List[Any]] = {}
    for assignment in assignments:
        if "=" not in assignment:
            raise CliError(f"--set expects name=v1[,v2...], got {assignment!r}")
        name, _, text = assignment.partition("=")
        name = name.strip()
        spec = _find_param_spec(scenarios, name)
        values = [spec.parse(part) for part in _csv(text)]
        if not values:
            raise CliError(f"--set {name!r} needs at least one value")
        grid[name] = values
    return grid


def _validated_analyses(names: Optional[Sequence[str]]) -> Tuple[str, ...]:
    chosen = tuple(names) if names else DEFAULT_ANALYSES
    for name in chosen:
        get_analysis(name)  # raises AnalysisError on unknown names
    return chosen


# ---------------------------------------------------------------------------
# Subcommands.
# ---------------------------------------------------------------------------


def _cmd_list(args: argparse.Namespace, out) -> int:
    registry = scenario_registry()
    print(f"scenarios ({len(registry)}):", file=out)
    for name in sorted(registry):
        spec = registry[name]
        tags = f" [{','.join(spec.tags)}]" if spec.tags else ""
        print(f"  {name}{tags}: {spec.description}", file=out)
        for param in spec.params:
            print(f"      {param.describe()}  # {param.description}", file=out)
    print(f"\nanalyses ({len(list_analyses())}):", file=out)
    for name in list_analyses():
        entry = get_analysis(name)
        default = " (default)" if name in DEFAULT_ANALYSES else ""
        print(f"  {name} v{entry.version}{default}: {entry.description}", file=out)
    print(f"\nadversaries: {', '.join(ADVERSARIES)}", file=out)
    return 0


def _cmd_run(args: argparse.Namespace, out) -> int:
    overrides = _parse_single_overrides(args.scenario, args.set or ())
    cell = make_cell(
        args.scenario,
        overrides=overrides,
        adversary=args.adversary,
        seed=args.seed,
        analyses=_validated_analyses(args.analysis),
        horizon=args.horizon,
    )
    record, run = execute_cell(cell)
    if args.store is not None:
        ResultStore(args.store).put(record)
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True), file=out)
    else:
        print(f"cell: {cell.describe()}", file=out)
        print(f"key:  {record['key']}", file=out)
        for name, result in record["analyses"].items():
            print(f"\n[{name}]", file=out)
            for key, value in result.items():
                print(f"  {key}: {value}", file=out)
    if args.viz:
        print("\n" + spacetime_diagram(run), file=out)
        print("\n" + action_table(run), file=out)
    return 0


def _cmd_sweep(args: argparse.Namespace, out) -> int:
    if args.workers < 1:
        raise CliError(
            f"--workers must be >= 1, got {args.workers} "
            "(use --workers 1 for the serial path)"
        )
    if args.shard_size is not None:
        if args.shard_size < 1:
            raise CliError(f"--shard-size must be >= 1, got {args.shard_size}")
        if args.backend not in ("sharded", "remote"):
            raise CliError("--shard-size requires --backend sharded or remote")
    if args.cell_timeout is not None and args.cell_timeout <= 0:
        raise CliError(f"--cell-timeout must be > 0, got {args.cell_timeout}")
    if args.listen is not None and args.backend != "remote":
        raise CliError("--listen requires --backend remote")
    if args.force and args.resume:
        raise CliError("--force and --resume are mutually exclusive")
    if args.retry_errors and not args.resume:
        raise CliError("--retry-errors requires --resume")
    if args.rotate_bytes is not None and args.rotate_bytes < 0:
        raise CliError(f"--rotate-bytes must be >= 0, got {args.rotate_bytes}")
    chaos_plan: Optional[str] = None
    chaos_has_storage = False
    if args.chaos or args.chaos_plan:
        chaos_plan = args.chaos_plan or DEFAULT_CHAOS_PLAN
        try:
            parsed_plan = parse_plan(chaos_plan)
        except FaultError as exc:
            raise CliError(f"--chaos-plan: {exc}")
        process_kinds = [
            rule.kind for rule in parsed_plan.rules if rule.kind not in STORAGE_KINDS
        ]
        chaos_has_storage = len(process_kinds) < len(parsed_plan.rules)
        # Storage faults fire in *this* process (the coordinator owns the
        # store), so a storage-only plan works on any backend, serial
        # included.  Process faults keep their pool-worker scoping rules.
        if process_kinds:
            if args.backend == "remote":
                raise CliError(
                    "--chaos scripts faults into this process's pool workers; remote "
                    "workers are separate processes — start them with "
                    "`repro worker --faults SPEC` instead"
                )
            if args.backend == "serial" or args.workers < 2:
                raise CliError(
                    "--chaos needs a pool backend with --workers >= 2: process "
                    "faults only fire in worker processes, never in the "
                    "coordinator (storage-only plans run anywhere)"
                )
    scenarios = _csv(args.scenario) if args.scenario else list(DEFAULT_SWEEP_SCENARIOS)
    adversaries = _csv(args.adversary) if args.adversary else list(ADVERSARIES)
    if args.seed_list is not None:
        # Validate before parsing: an empty value (or one that is all commas)
        # must not silently fall back to the default seed range or expand to
        # a zero-cell sweep.
        parts = _csv(args.seed_list)
        if not parts:
            raise CliError(
                f"--seed-list needs at least one seed, got {args.seed_list!r}"
            )
        try:
            seeds = [int(part) for part in parts]
        except ValueError:
            raise CliError(f"--seed-list expects integers, got {args.seed_list!r}")
    else:
        seeds = list(range(args.seeds))
    grid = _parse_grid_overrides(scenarios, args.set or ())
    cells = expand_grid(
        scenarios,
        adversaries=adversaries,
        seeds=seeds,
        param_grid=grid,
        analyses=_validated_analyses(args.analysis),
        horizon=args.horizon,
    )
    print(
        f"sweep: {len(scenarios)} scenario(s) x {len(adversaries)} adversar"
        f"{'y' if len(adversaries) == 1 else 'ies'} x {len(seeds)} seed(s)"
        f" -> {len(cells)} cells",
        file=out,
    )
    if args.dry_run:
        for cell in cells:
            print(f"  {cell.key()[:12]}  {cell.describe()}", file=out)
        print("dry run: nothing executed", file=out)
        return 0
    rotate_bytes: Optional[int] = DEFAULT_ROTATE_BYTES
    if args.rotate_bytes is not None:
        rotate_bytes = args.rotate_bytes or None  # 0 disables rotation
    store = ResultStore(args.store, rotate_bytes=rotate_bytes)
    progress = (lambda message: print(f"  {message}", file=out)) if args.verbose else None
    backend: Any = args.backend
    if args.backend == "remote":
        from .remote import RemoteExecutor
        from .serve import parse_endpoint

        host, port = parse_endpoint(args.listen or "127.0.0.1:0", what="--listen")
        try:
            backend = RemoteExecutor(
                host,
                port,
                workers_hint=args.workers,
                shard_size=args.shard_size,
                lease_base_s=args.lease_base_s,
                lease_cell_s=args.lease_cell_s,
                heartbeat_timeout_s=args.heartbeat_timeout_s,
                local_fallback_after_s=args.local_fallback_s,
            )
        except OSError as exc:
            raise CliError(f"--listen: cannot bind {host}:{port}: {exc}") from None
        # Parse-friendly and flushed before blocking: worker launchers (and
        # the CI smoke) scrape the port from this line.
        print(
            f"coordinator: listening on {backend.address[0]}:{backend.address[1]}",
            file=out,
            flush=True,
        )
    if chaos_plan is not None:
        print(f"chaos: injecting {chaos_plan!r}", file=out)
    previous_faults = os.environ.get(FAULTS_ENV)
    try:
        if chaos_plan is not None:
            # Pool workers inherit the environment at fork and mark
            # themselves via the pool initializer; this process never marks
            # itself as a *worker*, so process faults cannot fire in the
            # coordinator.  Storage faults are different: the coordinator
            # owns the store, so it marks itself storage-fault-visible.
            os.environ[FAULTS_ENV] = chaos_plan
            if chaos_has_storage:
                faults.mark_storage(chaos_plan)
        outcome = run_sweep(
            cells,
            store=store,
            workers=args.workers,
            force=args.force,
            progress=progress,
            backend=backend,
            resume=args.resume,
            retry_errors=args.retry_errors,
            shard_size=args.shard_size,
            cell_timeout=args.cell_timeout,
        )
    finally:
        if chaos_plan is not None:
            if chaos_has_storage:
                faults.reset()
            if previous_faults is None:
                os.environ.pop(FAULTS_ENV, None)
            else:
                os.environ[FAULTS_ENV] = previous_faults
    print(f"{outcome.describe()} [backend={outcome.backend}]", file=out)
    if outcome.recovered_lines:
        print(
            f"recovered store: dropped {outcome.recovered_lines} torn line(s)",
            file=out,
        )
    print(f"store: {store.path} ({len(store)} records)", file=out)
    return 1 if outcome.errors else 0


def _cmd_worker(args: argparse.Namespace, out) -> int:
    if args.heartbeat_s <= 0:
        raise CliError(f"--heartbeat-s must be > 0, got {args.heartbeat_s}")
    if args.faults is not None:
        try:
            parse_plan(args.faults)
        except FaultError as exc:
            raise CliError(f"--faults: {exc}")
    from .remote import run_worker
    from .serve import parse_endpoint

    # Fail fast on a malformed or unresolvable endpoint: without this a bad
    # host would spin in the connect-retry loop for the whole timeout.
    parse_endpoint(args.connect, what="--connect")

    notify = (lambda message: print(message, file=out, flush=True)) if args.verbose else None
    return run_worker(
        args.connect,
        worker_id=args.id,
        heartbeat_s=args.heartbeat_s,
        faults_spec=args.faults,
        connect_timeout_s=args.connect_timeout_s,
        log=notify,
        snapshot_path=args.snapshot,
    )


def _cmd_serve(args: argparse.Namespace, out) -> int:
    """``repro serve``: the HTTP sweep service (:mod:`repro.experiments.serve`)."""
    from .serve import SweepService, parse_endpoint

    host, port = parse_endpoint(args.listen, what="--listen")
    workers_listen = None
    if args.workers_listen is not None:
        workers_listen = parse_endpoint(args.workers_listen, what="--workers-listen")
    notify = (
        (lambda message: print(f"  {message}", file=out, flush=True))
        if args.verbose
        else None
    )
    service = SweepService(
        args.store,
        rotate_bytes=args.rotate_bytes,
        workers_listen=workers_listen,
        workers=args.workers,
        shard_size=args.shard_size,
        local_fallback_s=args.local_fallback_s,
        max_cells=args.max_cells,
        log=notify,
    )
    try:
        address = service.start(host, port)
    except OSError as exc:
        raise CliError(f"--listen: cannot bind {host}:{port}: {exc}") from None
    # Parse-friendly and flushed before blocking: clients (and the CI smoke)
    # scrape the ephemeral port from this line.
    print(f"serve: listening on {address[0]}:{address[1]}", file=out, flush=True)
    print(f"serve: store {args.store}", file=out, flush=True)
    if workers_listen is not None:
        print(
            f"serve: workers connect via {workers_listen[0]}:{workers_listen[1]}",
            file=out,
            flush=True,
        )
    try:
        service.join()
    except KeyboardInterrupt:
        print("serve: shutting down", file=out, flush=True)
    finally:
        service.stop()
    return 0


def _cmd_store(args: argparse.Namespace, out) -> int:
    """``repro store verify|repair|migrate|compact|info|snapshot``."""
    store = ResultStore(args.store)
    action = args.store_command
    if action == "info":
        print(json.dumps(store.info(), indent=2, sort_keys=True), file=out)
        return 0
    if action == "verify":
        report = store.verify(repair=args.repair)
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
        if report["ok"]:
            print("store: ok", file=out)
            return 0
        print(
            "store: DAMAGED (re-run with --repair to drop corrupt records "
            "and rebuild the index; dropped cells recompute on the next "
            "--resume)",
            file=out,
        )
        return 1
    if action == "migrate":
        info = store.migrate()
        print(json.dumps(info, indent=2, sort_keys=True), file=out)
        print(
            f"migrated: {len(info['segments'])} segment(s), "
            f"{info['sealed_records']} sealed record(s), index {info['index']}",
            file=out,
        )
        return 0
    if action == "compact":
        dropped = store.compact()
        print(f"compacted: dropped {dropped} superseded/corrupt line(s)", file=out)
        print(f"store: {store.path} ({len(store)} records)", file=out)
        return 0
    if action == "snapshot":
        from .snapshot import SnapshotError, write_snapshot

        try:
            info = write_snapshot(store, args.output, limit=args.limit)
        except SnapshotError as exc:
            raise CliError(str(exc))
        print(json.dumps(info, indent=2, sort_keys=True), file=out)
        print(
            f"snapshot: {info['bases']} base(s), {info['nodes']} node(s) "
            f"-> {info['path']}",
            file=out,
        )
        return 0
    raise CliError(f"unknown store command {action!r}")


def _record_run(record: Dict[str, Any]):
    """Re-derive the run of one stored record (deterministic by cell identity)."""
    cell = make_cell(
        record["scenario"],
        overrides=record["params"],
        adversary=record["adversary"],
        seed=record["seed"],
        horizon=record.get("horizon"),
    )
    return cell, build_cell_scenario(cell).run()


def _cmd_report(args: argparse.Namespace, out) -> int:
    store = ResultStore(args.store)
    all_records = store.records()
    records = cell_records(all_records)
    telemetry_records = [r for r in all_records if r.get("kind") == TELEMETRY_KIND]

    if args.telemetry:
        # JSON for machine consumption (CI artifacts); newest last.
        print(json.dumps(telemetry_records, indent=2, sort_keys=True), file=out)
        return 0

    if args.viz:
        record = store.get(args.viz)
        if record is not None and record.get("kind") == TELEMETRY_KIND:
            # An exact telemetry key must not reach _record_run (telemetry
            # records carry no scenario/params to re-simulate).
            raise CliError(
                f"key {args.viz!r} is a sweep-telemetry record, not a cell; "
                "inspect it with --telemetry instead"
            )
        if record is None:
            matches = [r for r in records if r["key"].startswith(args.viz)]
            if len(matches) != 1:
                raise CliError(
                    f"key {args.viz!r} matches {len(matches)} records in {store.path}"
                )
            record = matches[0]
        cell, run = _record_run(record)
        print(f"cell: {cell.describe()}", file=out)
        print("\n" + spacetime_diagram(run), file=out)
        print("\n" + action_table(run), file=out)
        return 0

    if not records:
        print(f"no records in {store.path}", file=out)
        return 0

    group_fields = _csv(args.group_by)
    metrics = list(args.metric) if args.metric else list(DEFAULT_REPORT_METRICS)
    groups = group_records(records, group_fields)

    if args.json:
        payload = report_payload(records, group_fields, metrics)
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0

    header = group_fields + ["cells"] + list(metrics)
    rows_out: List[List[str]] = []
    for group, rows in sorted(groups.items()):
        row = list(group) + [str(len(rows))]
        for metric in metrics:
            row.append(format_aggregate(aggregate_metric(rows, metric)))
        rows_out.append(row)

    if args.html is not None:
        telemetry = telemetry_records[-1] if telemetry_records else None
        diagrams: List[Tuple[str, str]] = []
        for record in records[: args.diagrams]:
            cell, run = _record_run(record)
            diagrams.append((cell.describe(), spacetime_diagram(run)))
        html = render_html_report(
            header,
            rows_out,
            record_count=len(records),
            store_path=store.path,
            telemetry=telemetry,
            diagrams=diagrams,
        )
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(html)
        print(f"wrote {args.html} ({len(records)} records)", file=out)
        return 0

    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows_out)) if rows_out else len(header[i])
        for i in range(len(header))
    ]
    print("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)), file=out)
    print("  ".join("-" * width for width in widths), file=out)
    for row in rows_out:
        print("  ".join(cellval.ljust(widths[i]) for i, cellval in enumerate(row)), file=out)
    print(f"\n{len(records)} records in {store.path}", file=out)
    return 0


def _parse_sigma(run, text: Optional[str]):
    """Resolve ``--sigma PROCESS[@TIME]`` against a run's timelines."""
    if text is None:
        process = run.processes[0]
        return run.final_node(process)
    process, _, time_text = text.partition("@")
    process = process.strip()
    if process not in run.processes:
        raise CliError(
            f"--sigma process {process!r} not in run (processes: {list(run.processes)})"
        )
    if not time_text:
        return run.final_node(process)
    try:
        time = int(time_text)
    except ValueError:
        raise CliError(f"--sigma expects PROCESS[@TIME], got {text!r}")
    if time < 0 or time > run.horizon:
        raise CliError(
            f"--sigma time {time} outside run horizon [0, {run.horizon}]"
        )
    return run.node_at(process, time)


def _cmd_export(args: argparse.Namespace, out) -> int:
    overrides = _parse_single_overrides(args.scenario, args.set or ())
    cell = make_cell(
        args.scenario,
        overrides=overrides,
        adversary=args.adversary,
        seed=args.seed,
        horizon=args.horizon,
    )
    run = build_cell_scenario(cell).run()
    if args.graph == "bounds":
        graph = basic_bounds_graph(run)
    elif args.graph == "causal":
        graph = causal_dag(run)
    else:  # extended
        sigma = _parse_sigma(run, args.sigma)
        graph = ExtendedBoundsGraph(sigma, run.timed_network).graph
    if args.format == "graphml":
        text = graph_to_graphml(graph, run)
    else:
        text = graph_to_dot(graph, run, name=f"{args.graph}-{cell.scenario}")
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {args.output} ({len(graph)} nodes, {graph.edge_count()} edges)",
            file=out,
        )
    else:
        out.write(text)
    return 0


# ---------------------------------------------------------------------------
# Parser wiring.
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Seeded experiment sweeps for the zigzag-causality reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered scenarios, analyses and adversaries")

    run_parser = sub.add_parser("run", help="run one scenario cell")
    run_parser.add_argument("scenario", help="registered scenario name")
    run_parser.add_argument(
        "--set", action="append", metavar="NAME=VALUE", help="override one parameter"
    )
    run_parser.add_argument("--adversary", default="earliest", choices=ADVERSARIES)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--horizon", type=int, default=None)
    run_parser.add_argument(
        "--analysis", action="append", metavar="NAME", help="analysis pass to apply"
    )
    run_parser.add_argument("--viz", action="store_true", help="print a space-time diagram")
    run_parser.add_argument("--json", action="store_true", help="emit the raw record")
    run_parser.add_argument(
        "--store", default=None, metavar="PATH", help="also persist the record here"
    )

    sweep_parser = sub.add_parser("sweep", help="run a cached parameter-grid sweep")
    sweep_parser.add_argument(
        "--scenario",
        default=None,
        metavar="CSV",
        help=f"comma-separated scenario names (default: {','.join(DEFAULT_SWEEP_SCENARIOS)})",
    )
    sweep_parser.add_argument(
        "--adversary",
        default=None,
        metavar="CSV",
        help=f"comma-separated adversaries (default: {','.join(ADVERSARIES)})",
    )
    sweep_parser.add_argument(
        "--seeds",
        type=int,
        default=DEFAULT_SWEEP_SEEDS,
        help="sweep seeds 0..N-1 (default: %(default)s)",
    )
    sweep_parser.add_argument(
        "--seed-list", default=None, metavar="CSV", help="explicit seed values"
    )
    sweep_parser.add_argument(
        "--set",
        action="append",
        metavar="NAME=V1[,V2...]",
        help="sweep a parameter over explicit values",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=DEFAULT_SWEEP_WORKERS, help="process-pool size"
    )
    sweep_parser.add_argument(
        "--backend",
        default="auto",
        choices=BACKENDS,
        help="execution backend: serial, per-cell process dispatch, or chunked "
        "shards of structurally similar cells (default: %(default)s)",
    )
    sweep_parser.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="N",
        help="cells per shard for --backend sharded (default: derived)",
    )
    sweep_parser.add_argument(
        "--resume",
        action="store_true",
        help="recover the store from a torn tail and skip persisted cells "
        "(a killed sweep continues, re-executing only what never reached "
        "the store: at most one in-flight cell per worker, or one in-flight "
        "shard with --backend sharded)",
    )
    sweep_parser.add_argument(
        "--retry-errors",
        action="store_true",
        help="with --resume: recompute cells quarantined as status:\"error\" "
        "records instead of skipping them",
    )
    sweep_parser.add_argument(
        "--rotate-bytes",
        type=int,
        default=None,
        metavar="N",
        help="seal the store tail into a checksummed segment at this size "
        f"(default: {DEFAULT_ROTATE_BYTES}; 0 disables rotation)",
    )
    sweep_parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="max seconds one cell (sharded: one shard) may run in a pool "
        "worker; violators restart the pool and repeat offenders are "
        "quarantined as error records",
    )
    sweep_parser.add_argument(
        "--chaos",
        action="store_true",
        help="smoke mode: inject the default deterministic fault plan "
        f"({DEFAULT_CHAOS_PLAN!r}) into pool workers; the sweep must still "
        "complete with results identical to a serial run",
    )
    sweep_parser.add_argument(
        "--chaos-plan",
        default=None,
        metavar="SPEC",
        help="custom fault plan (KIND@POINT:WHEN[:ARG], comma-separated); "
        "implies --chaos",
    )
    sweep_parser.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="with --backend remote: bind the coordinator here "
        "(default 127.0.0.1:0, an ephemeral port printed at startup)",
    )
    sweep_parser.add_argument(
        "--lease-base-s",
        type=float,
        default=10.0,
        metavar="S",
        help="remote: base lease budget per shard assignment (default: %(default)s)",
    )
    sweep_parser.add_argument(
        "--lease-cell-s",
        type=float,
        default=5.0,
        metavar="S",
        help="remote: extra lease budget per cell in the shard (default: %(default)s)",
    )
    sweep_parser.add_argument(
        "--heartbeat-timeout-s",
        type=float,
        default=5.0,
        metavar="S",
        help="remote: a worker silent this long is declared dead and its "
        "shards requeued (default: %(default)s)",
    )
    sweep_parser.add_argument(
        "--local-fallback-s",
        type=float,
        default=30.0,
        metavar="S",
        help="remote: with no live workers for this long, the coordinator "
        "starts executing shards inline (default: %(default)s)",
    )
    sweep_parser.add_argument("--horizon", type=int, default=None)
    sweep_parser.add_argument("--analysis", action="append", metavar="NAME")
    sweep_parser.add_argument("--store", default=DEFAULT_STORE_PATH, metavar="PATH")
    sweep_parser.add_argument(
        "--dry-run", action="store_true", help="print the cells, execute nothing"
    )
    sweep_parser.add_argument(
        "--force", action="store_true", help="re-run cells even when cached"
    )
    sweep_parser.add_argument("--verbose", action="store_true", help="per-cell progress")

    report_parser = sub.add_parser("report", help="aggregate stored sweep results")
    report_parser.add_argument("--store", default=DEFAULT_STORE_PATH, metavar="PATH")
    report_parser.add_argument(
        "--group-by",
        default="scenario,adversary",
        metavar="CSV",
        help="record fields forming a group (default: %(default)s)",
    )
    report_parser.add_argument(
        "--metric",
        action="append",
        metavar="DOTTED.PATH",
        help=f"analysis metric(s) to aggregate (default: {', '.join(DEFAULT_REPORT_METRICS)})",
    )
    report_parser.add_argument(
        "--viz",
        default=None,
        metavar="KEY",
        help="re-derive and draw the run of one stored cell (key or unique prefix)",
    )
    report_parser.add_argument("--json", action="store_true", help="emit JSON")
    report_parser.add_argument(
        "--telemetry",
        action="store_true",
        help="emit the persisted sweep telemetry records as JSON",
    )
    report_parser.add_argument(
        "--html",
        default=None,
        metavar="PATH",
        help="write a static HTML dashboard (tables, telemetry, diagrams)",
    )
    report_parser.add_argument(
        "--diagrams",
        type=int,
        default=3,
        metavar="N",
        help="space-time diagrams to embed in --html (default: %(default)s)",
    )

    export_parser = sub.add_parser(
        "export", help="export a cell's graphs as GraphML or DOT"
    )
    export_parser.add_argument("scenario", help="registered scenario name")
    export_parser.add_argument(
        "--set", action="append", metavar="NAME=VALUE", help="override one parameter"
    )
    export_parser.add_argument("--adversary", default="earliest", choices=ADVERSARIES)
    export_parser.add_argument("--seed", type=int, default=0)
    export_parser.add_argument("--horizon", type=int, default=None)
    export_parser.add_argument(
        "--graph",
        default="bounds",
        choices=("bounds", "extended", "causal"),
        help="which graph: the basic bounds graph GB(r), the extended bounds "
        "graph GE(r, sigma), or the causal-past DAG (default: %(default)s)",
    )
    export_parser.add_argument(
        "--sigma",
        default=None,
        metavar="PROCESS[@TIME]",
        help="observer node for --graph extended (default: first process, "
        "final state)",
    )
    export_parser.add_argument(
        "--format",
        default="graphml",
        choices=("graphml", "dot"),
        help="output format (default: %(default)s)",
    )
    export_parser.add_argument(
        "--output", default=None, metavar="PATH", help="write here instead of stdout"
    )

    worker_parser = sub.add_parser(
        "worker", help="join a sweep coordinator as a remote worker"
    )
    worker_parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT", help="coordinator address"
    )
    worker_parser.add_argument(
        "--id", default=None, metavar="NAME", help="worker id (default: host-pid)"
    )
    worker_parser.add_argument(
        "--heartbeat-s",
        type=float,
        default=1.0,
        metavar="S",
        help="heartbeat interval (default: %(default)s)",
    )
    worker_parser.add_argument(
        "--connect-timeout-s",
        type=float,
        default=30.0,
        metavar="S",
        help="give up when the coordinator stays unreachable this long "
        "(default: %(default)s)",
    )
    worker_parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="deterministic fault plan for this worker "
        "(KIND@POINT:WHEN[:ARG], e.g. 'kill@worker.shard:1')",
    )
    worker_parser.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="warm-start from a snapshot written by `repro store snapshot` "
        "(pre-interned pool + pre-built base scenarios)",
    )
    worker_parser.add_argument(
        "--verbose", action="store_true", help="log leases and lifecycle events"
    )

    serve_parser = sub.add_parser(
        "serve", help="serve sweeps and cached results over HTTP"
    )
    serve_parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="HTTP endpoint to bind; port 0 picks an ephemeral port "
        "(default: %(default)s)",
    )
    serve_parser.add_argument(
        "--store",
        default=DEFAULT_STORE_PATH,
        metavar="PATH",
        help="result store backing the service (default: %(default)s)",
    )
    serve_parser.add_argument(
        "--workers-listen",
        default=None,
        metavar="HOST:PORT",
        help="also run a sweep coordinator here for `repro worker` fleets "
        "(default: execute cold cells inline, still through the scheduler)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_SWEEP_WORKERS,
        metavar="N",
        help="expected worker count / inline parallelism hint "
        "(default: %(default)s)",
    )
    serve_parser.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="N",
        help="cells per dispatched shard (default: auto)",
    )
    serve_parser.add_argument(
        "--local-fallback-s",
        type=float,
        default=10.0,
        metavar="S",
        help="with --workers-listen: run shards inline when no worker takes "
        "them this long (default: %(default)s)",
    )
    serve_parser.add_argument(
        "--max-cells",
        type=int,
        default=10_000,
        metavar="N",
        help="reject specs expanding past this many cells (default: %(default)s)",
    )
    serve_parser.add_argument(
        "--rotate-bytes",
        type=int,
        default=None,
        metavar="N",
        help="tail size that triggers sealing a store segment "
        "(0 disables rotation; default: library default)",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log requests and sweep lifecycle"
    )

    store_parser = sub.add_parser(
        "store", help="inspect and maintain the segmented result store"
    )
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)
    verify_parser = store_sub.add_parser(
        "verify", help="CRC-check every sealed record and the index"
    )
    verify_parser.add_argument(
        "--repair",
        action="store_true",
        help="drop corrupt records, recover the tail, rebuild the index",
    )
    migrate_parser = store_sub.add_parser(
        "migrate", help="upgrade a legacy single-file store to segments + index"
    )
    compact_parser = store_sub.add_parser(
        "compact", help="rewrite the store keeping the newest record per key"
    )
    info_parser = store_sub.add_parser("info", help="print the store layout")
    snapshot_parser = store_sub.add_parser(
        "snapshot", help="write a worker warm-start snapshot from the store"
    )
    snapshot_parser.add_argument(
        "--output", required=True, metavar="PATH", help="snapshot file to write"
    )
    snapshot_parser.add_argument(
        "--limit",
        type=int,
        default=8,
        metavar="N",
        help="distinct (scenario, params) bases to capture (default: %(default)s)",
    )
    for sub_parser in (
        verify_parser,
        migrate_parser,
        compact_parser,
        info_parser,
        snapshot_parser,
    ):
        sub_parser.add_argument("--store", default=DEFAULT_STORE_PATH, metavar="PATH")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = {
        "list": _cmd_list,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "report": _cmd_report,
        "export": _cmd_export,
        "worker": _cmd_worker,
        "serve": _cmd_serve,
        "store": _cmd_store,
    }
    try:
        return commands[args.command](args, sys.stdout)
    except (CliError, RegistryError, SweepError, AnalysisError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream (e.g. `repro list | head`) closed the pipe: exit quietly,
        # pointing stdout at devnull so interpreter shutdown does not re-raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
