"""Deterministic fault injection for the sweep fabric.

The robustness machinery in :mod:`repro.experiments.executors` and
:mod:`repro.experiments.remote` exists to survive sick workers: processes
that die mid-shard, hang without heartbeating, crawl, or drop their
connection.  This module makes those failures *reproducible*: a
:class:`FaultPlan` is a list of rules, each naming an injection point, the
arrival at which it fires, and what happens — so a test (or ``repro sweep
--chaos``) can script "the worker's second shard SIGKILLs it" and get the
same failure on every run.

Spec grammar (comma-separated rules)::

    KIND@POINT:WHEN[:ARG]

    kill@worker.shard:2          SIGKILL the worker on its 2nd shard
    hang@worker.shard:1:600      freeze (no heartbeats) for 600s on shard 1
    slow@worker.cell:*:0.05      sleep 50ms before every cell
    drop@worker.result:1         drop the connection instead of the 1st result

* ``KIND`` — ``kill`` (SIGKILL the current process), ``hang`` (sleep with
  heartbeats suppressed, simulating a frozen process), ``slow`` (plain
  sleep), ``drop`` (raise :class:`DropConnection`; only meaningful at the
  remote worker's connection-facing points, where the worker catches it and
  reconnects).
* ``POINT`` — a dotted site name.  The shipped points are ``worker.cell``
  and ``worker.shard`` (fired by ``run_cell_monitored`` /
  ``run_shard_monitored`` before the work) and ``worker.result`` /
  ``worker.connect`` (fired by the remote worker runtime).  The *storage*
  points are ``store.append``, ``store.rotate``, and ``store.seal``,
  consulted by :class:`repro.experiments.store.ResultStore`.
* ``WHEN`` — ``n`` (exactly the n-th arrival at the point, 1-based),
  ``n+`` (the n-th and every later arrival), or ``*`` (every arrival).
* ``ARG`` — seconds for ``slow``/``hang`` (hang defaults to
  :data:`DEFAULT_HANG_S`).

Storage faults are a second family of kinds — ``torn-write`` (an append is
cut short mid-line, like a crash between ``write(2)`` issuing and
completing), ``partial-fsync`` (a sealed segment loses its unsynced last
bytes), ``corrupt-segment`` (one byte of a sealed segment flips), and
``stale-index`` (the sidecar index write after a rotation never lands).
They are *cooperative*: the store asks :func:`storage_fault` which rules
are due at a point and degrades its own I/O accordingly, rather than
:func:`fire` doing anything violent.  Every one of them is recoverable by
construction — the damage surfaces as cache misses, an index rebuild, or a
``repro store verify --repair``, never as wrong records served.

Scoping: process faults (``kill``/``hang``/``slow``/``drop``) only fire in
processes explicitly marked as *workers* (:func:`mark_worker`, called by
the remote worker runtime and by the pool initializer the hardened
executors install).  The sweep parent — including its serial and
in-process execution paths, and the inline fallbacks the recovery
machinery degrades to — is never marked, so a chaos plan can never kill
the coordinator.  Storage faults instead fire in any process marked via
:func:`mark_storage` *or* :func:`mark_worker` — the coordinator owns the
store, so ``repro sweep --chaos`` with a storage plan marks itself; the
coordinator's immunity to process faults is preserved because
:func:`fire` skips storage kinds and :func:`storage_fault` never kills
anything.  Arrival counts are per process: every pool worker or remote
worker counts its own arrivals, which keeps plans deterministic for a
fixed worker (a worker's n-th shard is its n-th shard regardless of what
the rest of the fleet does).

Plans travel to worker processes via the :data:`FAULTS_ENV` environment
variable (``REPRO_FAULTS``), set by ``repro sweep --chaos`` or
``repro worker --faults`` and read at :func:`mark_worker` time.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_CHAOS_PLAN",
    "DEFAULT_HANG_S",
    "FAULTS_ENV",
    "DropConnection",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "fire",
    "hang_active",
    "install_plan",
    "is_storage",
    "is_worker",
    "mark_storage",
    "mark_worker",
    "parse_plan",
    "pool_worker_init",
    "reset",
    "storage_fault",
    "STORAGE_KINDS",
]

#: Environment variable carrying a fault spec into worker processes.
FAULTS_ENV = "REPRO_FAULTS"

#: How long a ``hang`` freezes when the rule gives no duration.  Long enough
#: that leases and heartbeat timeouts expire first; the coordinator is
#: expected to kill or abandon the hung process, not wait it out.
DEFAULT_HANG_S = 600.0

#: The plan ``repro sweep --chaos`` installs when none is given: every pool
#: worker SIGKILLs itself on its second shard (exercising broken-pool
#: recovery and resubmission) and crawls briefly on its third cell.  Both
#: kinds leave results bit-identical to serial execution — the smoke mode
#: asserts completion, not degradation.
DEFAULT_CHAOS_PLAN = "kill@worker.shard:2,slow@worker.cell:3:0.02"

#: Storage fault kinds: consulted cooperatively by the result store via
#: :func:`storage_fault`, never applied by :func:`fire`.
STORAGE_KINDS = frozenset({"torn-write", "partial-fsync", "corrupt-segment", "stale-index"})

_KINDS = ("kill", "hang", "slow", "drop", *sorted(STORAGE_KINDS))


class FaultError(ValueError):
    """Raised on a malformed fault spec."""


class DropConnection(Exception):
    """A ``drop`` fault fired: the worker should sever its connection."""


@dataclass(frozen=True)
class FaultRule:
    """One parsed ``KIND@POINT:WHEN[:ARG]`` clause."""

    kind: str
    point: str
    nth: Optional[int]  # None means every arrival
    repeat: bool = False  # ``n+``: the nth and all later arrivals
    arg: Optional[float] = None

    def matches(self, count: int) -> bool:
        if self.nth is None:
            return True
        if self.repeat:
            return count >= self.nth
        return count == self.nth

    def describe(self) -> str:
        when = "*" if self.nth is None else f"{self.nth}{'+' if self.repeat else ''}"
        arg = f":{self.arg}" if self.arg is not None else ""
        return f"{self.kind}@{self.point}:{when}{arg}"


@dataclass
class FaultPlan:
    """A set of rules plus per-point arrival counters (one process's view)."""

    rules: Tuple[FaultRule, ...] = ()
    _counts: Dict[str, int] = field(default_factory=dict)

    def arrivals(self, point: str) -> int:
        return self._counts.get(point, 0)

    def arrive(self, point: str) -> List[FaultRule]:
        """Count one arrival at ``point`` and return the rules that fire."""
        count = self._counts.get(point, 0) + 1
        self._counts[point] = count
        return [
            rule for rule in self.rules if rule.point == point and rule.matches(count)
        ]

    def describe(self) -> str:
        return ",".join(rule.describe() for rule in self.rules)


def parse_plan(spec: str) -> FaultPlan:
    """Parse a comma-separated fault spec into a :class:`FaultPlan`."""
    rules: List[FaultRule] = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        if "@" not in clause:
            raise FaultError(f"fault rule {clause!r} must look like KIND@POINT:WHEN")
        kind, _, rest = clause.partition("@")
        kind = kind.strip()
        if kind not in _KINDS:
            raise FaultError(f"unknown fault kind {kind!r}; known: {list(_KINDS)}")
        parts = rest.split(":")
        if len(parts) < 2:
            raise FaultError(f"fault rule {clause!r} is missing its WHEN clause")
        point = parts[0].strip()
        if not point:
            raise FaultError(f"fault rule {clause!r} has an empty point name")
        when = parts[1].strip()
        nth: Optional[int]
        repeat = False
        if when == "*":
            nth = None
        else:
            if when.endswith("+"):
                repeat = True
                when = when[:-1]
            try:
                nth = int(when)
            except ValueError:
                raise FaultError(
                    f"fault rule {clause!r}: WHEN must be an integer, 'n+', or '*'"
                )
            if nth < 1:
                raise FaultError(f"fault rule {clause!r}: WHEN counts from 1")
        arg: Optional[float] = None
        if len(parts) > 2 and parts[2].strip():
            try:
                arg = float(parts[2])
            except ValueError:
                raise FaultError(f"fault rule {clause!r}: ARG must be a number")
            if arg < 0:
                raise FaultError(f"fault rule {clause!r}: ARG must be >= 0")
        rules.append(FaultRule(kind=kind, point=point, nth=nth, repeat=repeat, arg=arg))
    return FaultPlan(rules=tuple(rules))


# ---------------------------------------------------------------------------
# Process-local installation and firing.
# ---------------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None
_IS_WORKER = False
_IS_STORAGE = False
#: Set while a ``hang`` fault sleeps; the remote worker's heartbeat thread
#: checks it and goes silent, so a hang looks like a frozen process to the
#: coordinator (missed heartbeats), not a slow-but-alive one.
_HANGING = threading.Event()


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or clear, with ``None``) this process's fault plan."""
    global _PLAN
    _PLAN = plan


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


def is_worker() -> bool:
    return _IS_WORKER


def is_storage() -> bool:
    return _IS_STORAGE


def mark_storage(spec: Optional[str] = None) -> None:
    """Open this process to *storage* faults and install its plan.

    The coordinator calls this (via ``repro sweep --chaos`` with a
    storage-kind plan) so its own ``ResultStore`` consults the plan at
    append/rotate/seal time.  Unlike :func:`mark_worker` this does **not**
    expose the process to ``kill``/``hang``/``slow``/``drop`` — storage
    faults degrade I/O, they never touch the process itself.  ``spec``
    defaults to the :data:`FAULTS_ENV` environment variable.
    """
    global _IS_STORAGE
    _IS_STORAGE = True
    if spec is None:
        spec = os.environ.get(FAULTS_ENV, "")
    if spec:
        install_plan(parse_plan(spec))


def mark_worker(spec: Optional[str] = None) -> None:
    """Mark this process as a fault-scoped worker and install its plan.

    ``spec`` defaults to the :data:`FAULTS_ENV` environment variable; an
    absent/empty spec still marks the process (harmlessly — firing a point
    against no plan is a no-op), so the call is safe as an unconditional
    pool initializer.
    """
    global _IS_WORKER
    _IS_WORKER = True
    if spec is None:
        spec = os.environ.get(FAULTS_ENV, "")
    if spec:
        install_plan(parse_plan(spec))


def pool_worker_init() -> None:
    """`ProcessPoolExecutor` initializer: scope faults to pool workers."""
    mark_worker()


def reset() -> None:
    """Clear plan, worker/storage marks, and hang flag (test isolation)."""
    global _PLAN, _IS_WORKER, _IS_STORAGE
    _PLAN = None
    _IS_WORKER = False
    _IS_STORAGE = False
    _HANGING.clear()


def hang_active() -> bool:
    """Whether a ``hang`` fault is currently freezing this process."""
    return _HANGING.is_set()


def fire(point: str) -> None:
    """Report one arrival at an injection point and apply any due faults.

    A no-op unless this process is marked as a worker and a plan is
    installed.  ``kill`` SIGKILLs the process (indistinguishable from an
    external ``kill -9``); ``hang`` sleeps with the hang flag raised so
    heartbeat loops go silent; ``slow`` sleeps; ``drop`` raises
    :class:`DropConnection` for the caller to translate into a severed
    connection.
    """
    if not _IS_WORKER or _PLAN is None:
        return
    for rule in _PLAN.arrive(point):
        if rule.kind in STORAGE_KINDS:
            continue  # storage kinds are consulted via storage_fault()
        if rule.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif rule.kind == "hang":
            _HANGING.set()
            try:
                time.sleep(rule.arg if rule.arg is not None else DEFAULT_HANG_S)
            finally:
                _HANGING.clear()
        elif rule.kind == "slow":
            if rule.arg:
                time.sleep(rule.arg)
        elif rule.kind == "drop":
            raise DropConnection(rule.describe())


def storage_fault(point: str) -> List[FaultRule]:
    """Report one arrival at a storage point; return the due storage rules.

    Returns ``[]`` (without counting the arrival) unless this process is
    marked via :func:`mark_storage` or :func:`mark_worker` and a plan is
    installed.  The store interprets the returned rules itself — this
    function never sleeps, kills, or raises, so the coordinator's immunity
    to process faults is untouched.
    """
    if not (_IS_STORAGE or _IS_WORKER) or _PLAN is None:
        return []
    return [rule for rule in _PLAN.arrive(point) if rule.kind in STORAGE_KINDS]
