"""Intern-pool + base-scenario snapshots for millisecond worker warm-start.

A fresh worker process on a large sweep pays two cold-start costs before its
first cell finishes: building the base scenarios its shard needs, and
re-interning from scratch the histories/messages/nodes every run of those
scenarios churns through (:mod:`repro.simulation.interning` hash-conses
them, but an empty pool means every value is a first sighting).  A
*snapshot* captures both from a store that has already seen the sweep: the
distinct ``(scenario, params)`` bases its records cover, plus the interned
value DAG produced by actually running those bases — encoded with the same
flat shared tables :class:`repro.simulation.runs._RunEncoder` uses for
``Run.to_dict``, so deep sharing stays linear on disk.

Loading (:func:`load_snapshot`) decodes the tables into the *current*
process pool — decoding constructs :class:`History`/:class:`Message`/
:class:`BasicNode` values, which re-intern locally, exactly like shipping a
``Run`` across a process boundary — and rebuilds the base scenarios into a
cache keyed ``(scenario, sorted-params-tuple)``, the same key
:func:`repro.experiments.runner.execute_cell_inline` probes.  A worker
started with ``repro worker --snapshot`` therefore begins its first shard
with a warm pool and pre-built bases instead of a rebuild.

Snapshots are advisory: a corrupt, missing, or version-skewed file is
reported and ignored (the worker cold-starts), and a snapshot never changes
results — it only pre-populates caches whose hits are bit-identical to
misses by construction.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Tuple

from ..scenarios.base import RegistryError
from ..simulation.interning import current_pool, intern_pool
from ..simulation.runs import RunError, RunFormatError, _RunDecoder, _RunEncoder
from .runner import SweepError, build_base_scenario, decorate_scenario, make_cell
from .store import ResultStore, canonical_json

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotError",
    "load_pool_snapshot",
    "load_snapshot",
    "pool_snapshot",
    "write_snapshot",
]

#: Version stamp of the snapshot file layout.
SNAPSHOT_FORMAT_VERSION = 1

#: How many distinct bases a snapshot captures by default.  Warm-start wins
#: saturate quickly — a shard rarely spans more bases than this — while the
#: file and its load time stay small.
DEFAULT_SNAPSHOT_BASES = 8

#: The base-cache key :func:`execute_cell_inline` probes.
BaseKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


class SnapshotError(ValueError):
    """Raised on a malformed or version-skewed snapshot file."""


def pool_snapshot() -> Dict[str, Any]:
    """Encode the current process pool's node DAG into flat shared tables."""
    encoder = _RunEncoder()
    node_ids = [
        encoder.history_id(history) for history in current_pool().nodes
    ]
    return {
        "histories": encoder.histories,
        "messages": encoder.messages,
        "nodes": node_ids,
    }


def load_pool_snapshot(data: Dict[str, Any]) -> int:
    """Decode a pool table into the *current* pool; returns nodes interned.

    Decoding constructs each value, which re-interns it locally — loading
    the same snapshot twice is idempotent, and loading into a pool that
    already holds some of the values simply dedups against them.
    """
    try:
        decoder = _RunDecoder(data["histories"], data["messages"])
        node_ids = data["nodes"]
        for node_id in node_ids:
            decoder.node(node_id)
    except (KeyError, TypeError, RunError, RunFormatError) as exc:
        raise SnapshotError(f"corrupt pool snapshot: {exc}") from exc
    return len(node_ids)


def _distinct_bases(
    records: List[Dict[str, Any]], limit: int
) -> List[Tuple[str, Dict[str, Any]]]:
    """The distinct ``(scenario, params)`` bases of a store's cell records,
    deterministically ordered (by canonical JSON), capped at ``limit``."""
    seen: Dict[str, Tuple[str, Dict[str, Any]]] = {}
    for record in records:
        scenario = record.get("scenario")
        params = record.get("params")
        if not isinstance(scenario, str) or not isinstance(params, dict):
            continue  # telemetry or foreign records
        seen.setdefault(canonical_json([scenario, params]), (scenario, params))
    return [seen[key] for key in sorted(seen)][:limit]


def write_snapshot(
    store: ResultStore,
    path: str,
    limit: int = DEFAULT_SNAPSHOT_BASES,
) -> Dict[str, Any]:
    """Build and atomically write a warm-start snapshot from ``store``.

    Picks up to ``limit`` distinct bases from the store's records, runs each
    under the two deterministic delivery adversaries inside a scratch pool
    (populating exactly the values a worker's first cells would intern), and
    writes the encoded pool plus the base list.  Returns a summary dict.
    """
    if limit < 1:
        raise SnapshotError(f"snapshot limit must be >= 1, got {limit}")
    bases = _distinct_bases(store.records(), limit)
    with intern_pool():
        for scenario, params in bases:
            for adversary in ("earliest", "latest"):
                try:
                    cell = make_cell(
                        scenario, overrides=params, adversary=adversary, seed=0
                    )
                except (SweepError, RegistryError):
                    continue  # scenario/params no longer registered; skip
                decorate_scenario(cell, build_base_scenario(cell)).run()
        pool = pool_snapshot()
    payload = {
        "format": SNAPSHOT_FORMAT_VERSION,
        "bases": [[scenario, params] for scenario, params in bases],
        "pool": pool,
    }
    data = (canonical_json(payload) + "\n").encode("utf-8")
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.{os.getpid()}.tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return {
        "path": path,
        "bases": len(bases),
        "nodes": len(pool["nodes"]),
        "histories": len(pool["histories"]),
        "messages": len(pool["messages"]),
        "bytes": len(data),
    }


def load_snapshot(path: str) -> Dict[BaseKey, Any]:
    """Load a snapshot into the current pool; return the base-scenario cache.

    The returned dict is keyed exactly like
    :func:`~repro.experiments.runner.execute_cell_inline`'s ``base_cache``
    (``(scenario, tuple(sorted(params.items())))``), so it can be handed to
    a shard runner as-is.  Bases whose scenario is no longer registered are
    skipped — the worker just cold-builds those.  Raises
    :class:`SnapshotError` on a missing, corrupt, or version-skewed file.
    """
    try:
        with open(path, "rb") as handle:
            data = json.loads(handle.read())
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"snapshot {path!r} is not valid JSON") from exc
    if not isinstance(data, dict) or data.get("format") != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path!r} has format {data.get('format')!r}; "
            f"expected {SNAPSHOT_FORMAT_VERSION}"
        )
    load_pool_snapshot(data.get("pool") or {})
    base_cache: Dict[BaseKey, Any] = {}
    for entry in data.get("bases") or []:
        try:
            scenario, params = entry
        except (TypeError, ValueError) as exc:
            raise SnapshotError(f"bad base entry {entry!r}") from exc
        if not isinstance(scenario, str) or not isinstance(params, dict):
            raise SnapshotError(f"bad base entry {entry!r}")
        try:
            cell = make_cell(scenario, overrides=params, adversary="earliest", seed=0)
        except (SweepError, RegistryError):
            continue  # scenario/params no longer registered: cold-build later
        base_cache[(cell.scenario, cell.params)] = build_base_scenario(cell)
    return base_cache
