"""The sweep runner: grid expansion, cache-aware execution, resumability.

A *sweep* is a grid of cells ``scenario x adversary x seed x params``; each
cell builds a registered scenario, overrides its delivery adversary, runs the
simulation, applies the requested analysis passes, and yields one JSON
record.  Execution is embarrassingly parallel and delegated to a pluggable
backend (:mod:`repro.experiments.executors`): serial, per-cell process-pool
dispatch, or chunked shards of structurally similar cells; every cell
derives its own deterministic seed from its identity, so results are
independent of backend, worker count and execution order.

Cells are content-addressed (see :mod:`repro.experiments.store`): the result
store is the source of truth for completed cells, so cells whose key is
already present are cache hits and are never re-simulated.  That makes
repeated sweeps incremental and killed sweeps resumable —
``run_sweep(resume=True)`` first recovers the store from any torn tail the
crash left behind, then skips exactly the cells that already completed.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..obs import metrics as _metrics
from ..obs.collect import Collector, registry_baseline, registry_delta
from ..obs.metrics import merge_snapshots
from ..obs.trace import span, trace_events, tracing_enabled
from ..scenarios.base import Scenario, get_scenario
from ..simulation.interning import intern_pool, intern_stats
from ..simulation.delivery import (
    DeliveryStrategy,
    EarliestDelivery,
    LatestDelivery,
    SeededRandomDelivery,
)
from .analyses import DEFAULT_ANALYSES, analysis_versions, run_analyses
from .store import ResultStore, canonical_json, cell_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.runs import Run
    from .executors import SweepExecutor

#: The delivery adversaries a sweep can pit scenarios against.
ADVERSARIES: Tuple[str, ...] = ("earliest", "latest", "random")

_C_CELLS_EXECUTED = _metrics.counter("sweep.cells_executed")
_C_CELLS_CACHED = _metrics.counter("sweep.cells_cached")
_C_CELLS_ERRORS = _metrics.counter("sweep.cells_errors")
_C_BASE_HITS = _metrics.counter("runner.base_cache_hits")
_C_BASE_MISSES = _metrics.counter("runner.base_cache_misses")
_C_INTERNED = _metrics.counter("intern.objects_interned")

#: The intern-pool tables counting *values* (as opposed to derived caches);
#: their growth across a cell is what ``intern.objects_interned`` reports.
_INTERN_VALUE_TABLES = (
    "externals",
    "actions",
    "receipts",
    "messages",
    "history_initials",
    "history_children",
    "nodes",
)


def _interned_objects() -> int:
    stats = intern_stats()
    return sum(stats[name] for name in _INTERN_VALUE_TABLES)


class SweepError(ValueError):
    """Raised on malformed sweep configurations."""


def make_delivery(adversary: str, seed: int) -> DeliveryStrategy:
    """Instantiate a delivery adversary by name (seeded where applicable)."""
    if adversary == "earliest":
        return EarliestDelivery()
    if adversary == "latest":
        return LatestDelivery()
    if adversary == "random":
        return SeededRandomDelivery(seed=seed)
    raise SweepError(f"unknown adversary {adversary!r}; known: {list(ADVERSARIES)}")


@dataclass(frozen=True)
class SweepCell:
    """One fully-resolved point of a sweep grid.

    ``params`` is the *complete* parameter assignment (declared defaults plus
    overrides plus the injected seed), sorted by name, so the cell's cache
    key also covers default values: changing a scenario's default in code
    invalidates exactly the affected cells.
    """

    scenario: str
    params: Tuple[Tuple[str, Any], ...]
    adversary: str
    seed: int
    analyses: Tuple[str, ...] = DEFAULT_ANALYSES
    horizon: Optional[int] = None

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def key(self) -> str:
        # Memoized: resume scans hash every cell of a large grid, and the
        # digest of a frozen cell can never change.
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = cell_key(
                scenario=self.scenario,
                params=self.params_dict(),
                adversary=self.adversary,
                seed=self.seed,
                analysis_versions=analysis_versions(self.analyses),
                horizon=self.horizon,
            )
            object.__setattr__(self, "_key", cached)
        return cached

    def derived_seed(self) -> int:
        """A deterministic per-cell seed for the delivery adversary.

        Mixing the whole cell identity (not just ``seed``) decorrelates the
        random adversary across scenarios and parameter assignments that
        share a seed axis value.
        """
        material = canonical_json(
            [self.scenario, self.params_dict(), self.adversary, self.seed]
        )
        return int.from_bytes(
            hashlib.sha256(material.encode("utf-8")).digest()[:4], "big"
        )

    def describe(self) -> str:
        params = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.scenario}[{params}] x {self.adversary} x seed={self.seed}"


def make_cell(
    scenario: str,
    overrides: Optional[Mapping[str, Any]] = None,
    adversary: str = "earliest",
    seed: int = 0,
    analyses: Sequence[str] = DEFAULT_ANALYSES,
    horizon: Optional[int] = None,
) -> SweepCell:
    """Resolve one cell: validate parameters and inject the seed axis.

    If the scenario declares a ``seed`` parameter and the caller did not pin
    it explicitly, the sweep's seed-axis value is injected so that the seed
    axis varies the *instance* (network, schedule) and not just the delivery
    adversary.
    """
    if adversary not in ADVERSARIES:
        raise SweepError(f"unknown adversary {adversary!r}; known: {list(ADVERSARIES)}")
    spec = get_scenario(scenario)
    merged: Dict[str, Any] = dict(overrides or {})
    if spec.has_param("seed") and "seed" not in merged:
        merged["seed"] = seed
    params = spec.resolve(merged)
    return SweepCell(
        scenario=scenario,
        params=tuple(sorted(params.items())),
        adversary=adversary,
        seed=int(seed),
        analyses=tuple(analyses),
        horizon=horizon,
    )


def expand_grid(
    scenarios: Sequence[str],
    adversaries: Sequence[str] = ADVERSARIES,
    seeds: Sequence[int] = (0,),
    param_grid: Optional[Mapping[str, Sequence[Any]]] = None,
    analyses: Sequence[str] = DEFAULT_ANALYSES,
    horizon: Optional[int] = None,
) -> List[SweepCell]:
    """Expand a sweep grid into resolved cells (deduplicated, stable order).

    ``param_grid`` maps parameter names to lists of values; for each scenario
    only the parameters it declares apply (a value list for a parameter no
    scenario declares is an error).  Cells that resolve to identical
    parameter assignments collapse into one.
    """
    grid = {name: list(values) for name, values in (param_grid or {}).items()}
    if grid:
        declared = set()
        for scenario in scenarios:
            spec = get_scenario(scenario)
            declared.update(name for name in grid if spec.has_param(name))
        unknown = set(grid) - declared
        if unknown:
            raise SweepError(
                f"no scenario in {list(scenarios)} declares swept parameter(s) "
                f"{sorted(unknown)}"
            )

    cells: List[SweepCell] = []
    seen = set()
    for scenario in scenarios:
        spec = get_scenario(scenario)
        applicable = [name for name in grid if spec.has_param(name)]
        assignments: List[Dict[str, Any]] = [{}]
        for name in applicable:
            assignments = [
                {**assignment, name: value}
                for assignment in assignments
                for value in grid[name]
            ]
        for adversary in adversaries:
            for seed in seeds:
                for overrides in assignments:
                    cell = make_cell(
                        scenario,
                        overrides=overrides,
                        adversary=adversary,
                        seed=seed,
                        analyses=analyses,
                        horizon=horizon,
                    )
                    identity = (cell.scenario, cell.params, cell.adversary, cell.seed)
                    if identity in seen:
                        continue
                    seen.add(identity)
                    cells.append(cell)
    return cells


def build_base_scenario(cell: SweepCell) -> Scenario:
    """Instantiate the scenario of a cell *before* adversary decoration.

    The base scenario depends only on ``(scenario, params)``, so shard
    workers cache it across cells that differ only in adversary or horizon
    override (see :func:`repro.experiments.executors.run_shard`).
    """
    return get_scenario(cell.scenario).build(**cell.params_dict())


def decorate_scenario(cell: SweepCell, base: Scenario) -> Scenario:
    """Apply a cell's adversary (and horizon override) to its base scenario."""
    scenario = base.with_delivery(make_delivery(cell.adversary, cell.derived_seed()))
    if cell.horizon is not None:
        scenario = scenario.with_horizon(cell.horizon)
    return scenario


def build_cell_scenario(cell: SweepCell) -> Scenario:
    """Instantiate the scenario of a cell with its adversary applied."""
    return decorate_scenario(cell, build_base_scenario(cell))


def sanitize_non_finite(value: Any) -> Any:
    """Replace non-finite floats (``nan``/``inf``) with ``None``, recursively.

    Applied to analysis outputs at the record boundary: the store's
    ``canonical_json(allow_nan=False)`` would otherwise raise on the append,
    aborting the sweep mid-flight and losing the cell.  JSON has no
    ``NaN``/``Infinity`` anyway, so ``None`` (= ``null``) is the faithful
    wire value; tuples normalise to lists exactly as JSON round-tripping
    already does.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: sanitize_non_finite(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_non_finite(inner) for inner in value]
    return value


def execute_cell_inline(
    cell: SweepCell,
    base_cache: Optional[Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], Scenario]] = None,
) -> Tuple[Dict[str, Any], "Run"]:
    """Execute one cell inside the *caller's* intern pool.

    ``base_cache`` (keyed by ``(scenario, params)``) lets shard workers
    reuse the undecorated scenario across cells of the same parameter
    assignment; the per-cell delivery adversary is always freshly built, so
    reuse never leaks adversary state between cells.
    """
    started = time.perf_counter()
    with span("cell", scenario=cell.scenario, adversary=cell.adversary):
        interned_before = _interned_objects()
        base: Optional[Scenario] = None
        cache_key = (cell.scenario, cell.params)
        if base_cache is not None:
            base = base_cache.get(cache_key)
        if base is None:
            _C_BASE_MISSES.value += 1
            base = build_base_scenario(cell)
            if base_cache is not None:
                base_cache[cache_key] = base
        else:
            _C_BASE_HITS.value += 1
        run = decorate_scenario(cell, base).run()
        results = sanitize_non_finite(run_analyses(run, cell.analyses))
        _C_INTERNED.value += _interned_objects() - interned_before
        record = {
            "key": cell.key(),
            "scenario": cell.scenario,
            "params": cell.params_dict(),
            "adversary": cell.adversary,
            "seed": cell.seed,
            "horizon": cell.horizon,
            "analyses": results,
            "analysis_versions": analysis_versions(cell.analyses),
            "status": "ok",
            "duration_s": round(time.perf_counter() - started, 6),
        }
    return record, run


def execute_cell(cell: SweepCell) -> Tuple[Dict[str, Any], "Run"]:
    """Execute one cell, returning both its result record and the run.

    Callers that also want the run itself (e.g. the CLI's ``--viz``) use this
    to avoid simulating twice.  One intern pool per cell: every run/analysis
    of the cell shares the hash-consed substrate (identity equality, cached
    causal pasts), and dropping the pool afterwards bounds worker memory
    across a long sweep.  Shard workers instead scope one pool around a whole
    shard (:func:`repro.experiments.executors.run_shard`).
    """
    with intern_pool():
        return execute_cell_inline(cell)


def run_cell(cell: SweepCell) -> Dict[str, Any]:
    """Execute one cell and return its result record (pure; pool-safe)."""
    record, _ = execute_cell(cell)
    return record


def error_record(cell: SweepCell, exc: BaseException) -> Dict[str, Any]:
    """The ``status: "error"`` record of a failed cell.

    Persisted as a quarantine marker: resumed sweeps skip the cell (until
    ``--retry-errors``), plain sweeps retry it and the fresh record
    supersedes this one.  Reports ignore it (``cell_records`` keeps only
    ``status: "ok"``).
    """
    return {
        "key": cell.key(),
        "scenario": cell.scenario,
        "params": cell.params_dict(),
        "adversary": cell.adversary,
        "seed": cell.seed,
        "status": "error",
        "error": f"{type(exc).__name__}: {exc}",
    }


@dataclass
class SweepOutcome:
    """What a sweep did: per-cell records plus cache accounting."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    errors: int = 0
    records: List[Dict[str, Any]] = field(default_factory=list)
    duration_s: float = 0.0
    backend: str = ""
    recovered_lines: int = 0
    #: The persisted :data:`sweep telemetry <sweep_telemetry_key>` record
    #: (also appended to the store when one is given).
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def cache_hit_rate(self) -> float:
        return self.cached / self.total if self.total else 0.0

    def describe(self) -> str:
        return (
            f"{self.total} cells: {self.executed} executed, {self.cached} cached, "
            f"{self.errors} errors in {self.duration_s:.2f}s"
        )


#: ``kind``/``status`` of the telemetry record a sweep persists; report and
#: cache scans filter on these, so telemetry never masquerades as a cell.
TELEMETRY_KIND = "sweep_telemetry"
TELEMETRY_STATUS = "telemetry"


def sweep_telemetry_key(cells: Sequence[SweepCell]) -> str:
    """The store key of a sweep's telemetry record.

    A digest of the sorted cell keys: re-running the same grid overwrites its
    telemetry (newest record per key wins) instead of growing the store, and
    the ``telemetry-`` prefix can never collide with a cell's hex key.
    """
    material = canonical_json(sorted(cell.key() for cell in cells))
    return "telemetry-" + hashlib.sha256(material.encode("utf-8")).hexdigest()[:12]


def _hit_rate(hits: float, misses: float) -> Optional[float]:
    total = hits + misses
    return round(hits / total, 6) if total else None


def _derived_metrics(merged: Mapping[str, Any]) -> Dict[str, Any]:
    """Headline rates computed from the merged counter totals."""
    counters = merged.get("counters", {})
    return {
        "engine_row_hit_rate": _hit_rate(
            counters.get("engine.row_cache_hits", 0),
            counters.get("engine.rows_computed", 0),
        ),
        "engine_overlay_hit_rate": _hit_rate(
            counters.get("engine.overlay_row_cache_hits", 0),
            counters.get("engine.overlay_rows_computed", 0),
        ),
        "base_scenario_hit_rate": _hit_rate(
            counters.get("runner.base_cache_hits", 0),
            counters.get("runner.base_cache_misses", 0),
        ),
        "store_appends": counters.get("store.appends", 0),
        "store_rotations": counters.get("store.rotations", 0),
        "store_segments_sealed": counters.get("store.segments_sealed", 0),
        "store_index_hits": counters.get("store.index_hits", 0),
        "store_index_rebuilds": counters.get("store.index_rebuilds", 0),
        "store_crc_failures": counters.get("store.crc_failures", 0),
        "objects_interned": counters.get("intern.objects_interned", 0),
    }


def run_sweep(
    cells: Sequence[SweepCell],
    store: Optional[ResultStore] = None,
    workers: int = 1,
    force: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    backend: Union[str, "SweepExecutor"] = "auto",
    resume: bool = False,
    retry_errors: bool = False,
    shard_size: Optional[int] = None,
    cell_timeout: Optional[float] = None,
    observer: Optional[Callable[[str, SweepCell, Dict[str, Any]], None]] = None,
) -> SweepOutcome:
    """Run a sweep, serving cells from ``store`` where possible.

    Cached cells (key present in the store) are returned without simulation
    unless ``force``.  The rest execute on the requested ``backend`` (a name
    from :data:`~repro.experiments.executors.BACKENDS` or a ready
    :class:`~repro.experiments.executors.SweepExecutor`); freshly-computed
    records are persisted as they arrive, so an interrupted sweep loses at
    most the in-flight work: one cell per worker on the serial/process
    backends, up to one *shard* per worker on the sharded backend (workers
    report whole shards — coarser checkpoint granularity is the price of the
    amortisation).  ``resume=True`` first recovers the store from a torn
    tail (atomic rewrite) and then relies on the normal cache scan, so a
    killed sweep re-executes exactly the cells whose records never reached
    the store.  A cell that raises yields a ``status: "error"`` record that
    is persisted too (quarantined): a resumed sweep *skips* it — counted in
    ``outcome.errors``, not recomputed — until ``retry_errors=True`` (which
    requires ``resume``) turns stored errors back into pending cells, and a
    plain non-resume sweep always retries them (the fresh record, ok or
    error, supersedes the old one — newest per key wins).  ``cell_timeout``
    bounds how long any one cell (or, on the sharded backend, shard) may
    run in a pool worker before the pool is restarted and the work retried
    — repeat offenders are quarantined as error records instead of hanging
    the sweep.

    Every sweep also assembles a telemetry record (``kind:
    "sweep_telemetry"``): phase timings, per-shard wall times, worker
    utilization, and the metric deltas of the parent process merged with the
    deltas every worker shipped back (see :mod:`repro.obs.collect`).  It is
    returned on ``outcome.telemetry`` and persisted into the store under
    :func:`sweep_telemetry_key` — error counts included, since the
    ``fabric``/``worker_events`` diagnostics matter most on exactly the
    sweeps that went wrong — where its non-hex key and non-``ok`` status
    keep it out of cache scans and reports.

    ``observer``, if given, is called once per delivered cell with
    ``(phase, cell, record)`` where phase is ``"cached"``, ``"executed"``,
    or ``"error"`` — a structured progress feed (used by ``repro serve`` to
    stream events) that rides the same exactly-once delivery as the record
    handling itself.
    """
    from .executors import resolve_executor  # runner <-> executors layering

    if force and resume:
        raise SweepError("force and resume are mutually exclusive")
    if resume and store is None:
        raise SweepError("resume requires a result store")
    if retry_errors and not resume:
        raise SweepError("retry_errors requires resume")
    executor = resolve_executor(
        backend, workers, shard_size=shard_size, cell_timeout=cell_timeout
    )

    started = time.perf_counter()
    parent_baseline = registry_baseline()
    trace_mark = len(trace_events())
    outcome = SweepOutcome(total=len(cells), backend=executor.name)
    notify = progress or (lambda message: None)
    watch = observer or (lambda phase, cell, record: None)

    if resume and store is not None:
        outcome.recovered_lines = store.recover()
        if outcome.recovered_lines:
            notify(f"store recovery: dropped {outcome.recovered_lines} torn line(s)")

    pending: List[Tuple[int, SweepCell]] = []
    records: List[Optional[Dict[str, Any]]] = [None] * len(cells)
    with span("sweep.scan") as scan_span:
        for index, cell in enumerate(cells):
            cached = store.get(cell.key()) if (store is not None and not force) else None
            if cached is not None and cached.get("kind") == TELEMETRY_KIND:
                # Telemetry keys cannot collide with cell keys by
                # construction, but the invariant is cheap to enforce here
                # too: a telemetry record is never a cache hit.
                cached = None
            if cached is not None and cached.get("status") == "error":
                if resume and not retry_errors:
                    # Quarantined: the cell failed before and stays failed
                    # until someone asks for a retry — resuming must not
                    # grind through known-bad cells on every attempt.
                    records[index] = {**cached, "cached": True}
                    outcome.errors += 1
                    _C_CELLS_ERRORS.value += 1
                    notify(
                        f"quarantined error (use --retry-errors to recompute): "
                        f"{cell.describe()}"
                    )
                    watch("error", cell, records[index])
                    continue
                cached = None  # plain runs and --retry-errors recompute
            if cached is not None:
                records[index] = {**cached, "cached": True}
                outcome.cached += 1
                _C_CELLS_CACHED.value += 1
                notify(f"cache hit: {cell.describe()}")
                watch("cached", cell, records[index])
            else:
                pending.append((index, cell))

    def finish(index: int, cell: SweepCell, record: Dict[str, Any]) -> None:
        records[index] = record
        if record.get("status") == "ok":
            outcome.executed += 1
            _C_CELLS_EXECUTED.value += 1
            if store is not None:
                store.put(record)
            notify(f"done: {cell.describe()} ({record['duration_s']:.3f}s)")
            watch("executed", cell, record)
        else:
            outcome.errors += 1
            _C_CELLS_ERRORS.value += 1
            if store is not None:
                # Quarantine: the error record persists so a resume can skip
                # the known-bad cell (or --retry-errors recompute it) — and a
                # later ok record supersedes it, newest per key wins.
                store.put(record)
            notify(f"ERROR: {cell.describe()}: {record.get('error')}")
            watch("error", cell, record)

    with span("sweep.execute", backend=executor.name) as execute_span:
        executor.execute(pending, finish)

    undelivered = [cell.describe() for index, cell in pending if records[index] is None]
    if undelivered:
        # A backend violating the call-handle-once contract must not let the
        # sweep report success with cells silently skipped.
        raise SweepError(
            f"backend {executor.name!r} never reported {len(undelivered)} cell(s): "
            f"{undelivered[:3]}{'...' if len(undelivered) > 3 else ''}"
        )

    outcome.records = [record for record in records if record is not None]
    outcome.duration_s = time.perf_counter() - started

    # -- telemetry: parent registry delta + worker payloads, persisted -----
    collector: Collector = getattr(executor, "worker_telemetry", None) or Collector()
    merged = dict(collector.merged)
    merge_snapshots(merged, registry_delta(parent_baseline))
    execute_s = execute_span.duration_s
    utilization = None
    if collector.shards and execute_s > 0 and workers > 0:
        utilization = round(collector.worker_wall_s() / (execute_s * workers), 4)
    telemetry: Dict[str, Any] = {
        "key": sweep_telemetry_key(cells),
        "kind": TELEMETRY_KIND,
        "status": TELEMETRY_STATUS,
        "backend": executor.name,
        "workers": workers,
        "cells": {
            "total": outcome.total,
            "executed": outcome.executed,
            "cached": outcome.cached,
            "errors": outcome.errors,
            "cache_hit_rate": round(outcome.cache_hit_rate, 6),
        },
        "timings": {
            "scan_s": round(scan_span.duration_s, 6),
            "execute_s": round(execute_s, 6),
            "total_s": round(outcome.duration_s, 6),
        },
        "shards": list(collector.shards),
        "worker_payloads": collector.worker_payloads,
        "worker_wall_s": round(collector.worker_wall_s(), 6),
        "worker_utilization": utilization,
        "metrics": merged,
        "derived": _derived_metrics(merged),
    }
    fabric = executor.fabric_summary() if hasattr(executor, "fabric_summary") else {}
    if fabric:
        # Robustness accounting: pool restarts, retries, quarantines, and —
        # on the remote backend — per-worker liveness and lease history.
        telemetry["fabric"] = fabric
    if collector.worker_events:
        telemetry["worker_events"] = list(collector.worker_events)
    if tracing_enabled():
        telemetry["trace"] = collector.trace + trace_events()[trace_mark:]
    outcome.telemetry = telemetry
    if store is not None:
        # Persisted even (especially) for sweeps with errors: the fabric and
        # worker_events diagnostics matter most when something went wrong,
        # and the record carries the error count.
        store.put(telemetry)
    return outcome
