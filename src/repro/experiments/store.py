"""A persistent, content-addressed JSONL store for sweep results.

Each record is one JSON object per line, keyed by a stable SHA-256 digest of
the cell's identity: scenario name, full parameter assignment, delivery
adversary, seed, horizon override, and the versions of every analysis pass
applied.  Repeated sweeps therefore become incremental — a cell whose key is
already present is a cache hit and is never re-simulated — while bumping an
analysis version re-runs exactly the cells it affects.

The store is the source of truth for resumable sweeps, so its writes are
crash-safe at two levels:

* *appends* (:meth:`ResultStore.put`) are a single ``write(2)`` on an
  ``O_APPEND`` descriptor, so a record is either entirely on disk or not at
  all — a crash can tear at most the final line, never interleave two;
* *rewrites* (:meth:`ResultStore.compact`, :meth:`ResultStore.recover`) go
  through a temp file in the same directory followed by an atomic
  ``os.replace``, with the data fsynced before the rename, so readers always
  observe either the old file or the complete new one.

A torn final line (from a ``kill -9`` mid-append) is ignored on load;
:meth:`ResultStore.recover` additionally rewrites the file without the torn
tail, and :meth:`ResultStore.compact` rewrites it keeping the newest record
per key.  Both are idempotent.

Multiple processes may share one store (a resumed sweep racing a report, or
the distributed coordinator's recovery path): appends take a *shared*
advisory ``flock`` and rewrites an *exclusive* one on a sidecar
``<path>.lock`` file, so a ``compact()``/``recover()`` can never interleave
with (and silently drop) a live append.  The sidecar — rather than the
store file itself — is locked because rewrites swap the store's inode via
``os.replace``, which would strand any lock held on the old inode.
Rewrites re-read the file under the lock, so records appended by other
processes after this process last loaded its index survive compaction.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

try:  # advisory locking is POSIX-only; the store degrades gracefully
    import fcntl

    _HAS_FLOCK = True
except ImportError:  # pragma: no cover - non-POSIX platforms
    _HAS_FLOCK = False

from ..obs import metrics as _metrics

#: Version stamp of the store's record layout; part of every cache key.
STORE_FORMAT_VERSION = 1

_C_APPENDS = _metrics.counter("store.appends")
_C_LOOKUPS = _metrics.counter("store.lookups")
_C_RECOVER_DROPPED = _metrics.counter("store.recover_dropped_lines")
_C_COMPACT_DROPPED = _metrics.counter("store.compact_dropped_lines")

#: Default store location, relative to the current working directory.
DEFAULT_STORE_PATH = os.path.join(".repro-store", "results.jsonl")


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), allow_nan=False)


def cell_key(
    scenario: str,
    params: Mapping[str, Any],
    adversary: str,
    seed: int,
    analysis_versions: Mapping[str, int],
    horizon: Optional[int] = None,
) -> str:
    """The stable content address of one sweep cell."""
    material = canonical_json(
        {
            "format": STORE_FORMAT_VERSION,
            "scenario": scenario,
            "params": dict(params),
            "adversary": adversary,
            "seed": seed,
            "horizon": horizon,
            "analyses": dict(analysis_versions),
        }
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class StoreError(ValueError):
    """Raised on malformed store records."""


def _parse_line(line: bytes) -> Optional[Dict[str, Any]]:
    """One JSONL line -> record, or ``None`` for blank/torn/keyless lines."""
    stripped = line.strip()
    if not stripped:
        return None
    try:
        record = json.loads(stripped)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or not isinstance(record.get("key"), str):
        return None
    return record


class ResultStore:
    """An append-only JSONL result cache with an in-memory key index."""

    def __init__(self, path: str = DEFAULT_STORE_PATH):
        self.path = path
        self._index: Dict[str, Dict[str, Any]] = {}
        self._loaded = False

    # -- loading -----------------------------------------------------------

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            for line in handle:
                record = _parse_line(line)
                if record is not None:
                    self._index[record["key"]] = record

    def reload(self) -> None:
        """Drop the in-memory index and re-read the file on next access."""
        self._index = {}
        self._loaded = False

    # -- locking -----------------------------------------------------------

    @contextlib.contextmanager
    def _locked(self, exclusive: bool):
        """Advisory flock on the sidecar lock file (no-op without fcntl).

        Shared for appends (many appenders interleave safely at line
        granularity), exclusive for rewrites — so compaction waits out live
        appends instead of snapshotting around them.
        """
        if not _HAS_FLOCK:
            yield
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        fd = os.open(self.path + ".lock", os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        self._ensure_loaded()
        return key in self._index

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        self._ensure_loaded()
        _C_LOOKUPS.value += 1
        return self._index.get(key)

    def keys(self) -> Tuple[str, ...]:
        self._ensure_loaded()
        return tuple(self._index)

    def records(self) -> List[Dict[str, Any]]:
        """All current records (newest per key), in insertion order."""
        self._ensure_loaded()
        return list(self._index.values())

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.records())

    # -- writes ------------------------------------------------------------

    def put(self, record: Mapping[str, Any]) -> None:
        """Append one record; the newest record per key wins on lookup.

        The append is a single ``write(2)`` on an ``O_APPEND`` descriptor:
        either the whole line lands on disk or (on a crash) none of it, and
        concurrent appenders from different processes cannot interleave.  If
        a previous append was torn mid-line, a leading newline is folded into
        the same write so the fragment cannot swallow this record too.  In
        the degenerate short-write case (disk full, file-size limit) the
        remainder is completed by follow-up writes — our own line stays whole
        or the call raises, but interleave-safety against *other* appenders
        is forfeited for that one record.
        """
        key = record.get("key")
        if not isinstance(key, str) or not key:
            raise StoreError("store records must carry a non-empty string 'key'")
        self._ensure_loaded()
        payload = dict(record)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with self._locked(exclusive=False):
            line = (canonical_json(payload) + "\n").encode("utf-8")
            if not self._ends_with_newline():
                line = b"\n" + line
            fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
            try:
                # Normally one write(2); loop to finish a short write
                # (ENOSPC, RLIMIT_FSIZE) so a silently-truncated count cannot
                # leave a torn line behind while the index believes the
                # record landed.
                view = memoryview(line)
                while view:
                    view = view[os.write(fd, view) :]
            finally:
                os.close(fd)
        # Only reached when the whole line is durably appended: an exception
        # above leaves the key out of the index, so the cell is re-executed
        # rather than served from a record that never fully landed.
        self._index[key] = payload
        _C_APPENDS.value += 1

    def put_many(self, records: Sequence[Mapping[str, Any]]) -> None:
        for record in records:
            self.put(record)

    def _ends_with_newline(self) -> bool:
        """Whether the file is empty or its last byte is a newline."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return True
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) == b"\n"
        except FileNotFoundError:
            return True

    def _atomic_rewrite(self, lines: Sequence[bytes]) -> None:
        """Replace the store file with ``lines`` via temp-file + rename.

        The temp file lives in the store's own directory (same filesystem, so
        the rename is atomic) and is fsynced before ``os.replace``; a crash at
        any point leaves either the old complete file or the new one.  The
        temp name is per-process so two rewriters never share a temp file;
        note that a rewrite snapshots the file, so records appended by
        *another* process between the read and the rename are dropped —
        rewrites (compact/recover) belong to a single coordinating process,
        while appends are safe from many.
        """
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp_path = f"{self.path}.{os.getpid()}.tmp"
        fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.writelines(lines)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        if directory:
            try:
                dir_fd = os.open(directory, os.O_RDONLY)
            except OSError:
                return  # platform without directory fds; rename already done
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)

    def recover(self) -> int:
        """Drop torn/corrupt lines from the file, atomically; idempotent.

        Scans the raw JSONL, keeps every parseable keyed record line (torn
        tails from a ``kill -9`` mid-append and any other corrupt lines are
        dropped), and rewrites the file via temp-file + rename only when
        something actually needs dropping.  Returns the number of lines
        dropped.  This is the entry point resumable sweeps call before
        trusting the store as the source of truth for completed cells.
        Runs under the exclusive advisory lock and re-reads the file inside
        it, so concurrent appenders neither tear the scan nor lose records.
        """
        if not os.path.exists(self.path):
            return 0
        with self._locked(exclusive=True):
            with open(self.path, "rb") as handle:
                raw = handle.read()
            kept: List[bytes] = []
            dropped = 0
            for line in raw.split(b"\n"):
                if not line.strip():
                    continue
                if _parse_line(line) is None:
                    dropped += 1
                else:
                    kept.append(line + b"\n")
            clean = raw.endswith(b"\n") or not raw
            if dropped == 0 and clean:
                self._ensure_loaded()
                return 0
            self._atomic_rewrite(kept)
            self.reload()
            self._ensure_loaded()
        _C_RECOVER_DROPPED.value += dropped
        return dropped

    def compact(self) -> int:
        """Rewrite the file keeping one (newest) record per key, atomically.

        Returns the number of lines dropped (superseded duplicates plus any
        torn/corrupt lines).  Compacting an already-compact store drops 0
        lines and rewrites nothing.

        Runs under the exclusive advisory lock and rebuilds its view from
        the *file*, not the in-memory index — another process may have
        appended records this process never loaded, and those must survive
        the rewrite.
        """
        if not os.path.exists(self.path):
            self._ensure_loaded()
            return 0
        with self._locked(exclusive=True):
            with open(self.path, "rb") as handle:
                raw = handle.read()
            merged: Dict[str, Dict[str, Any]] = {}
            total_lines = 0
            for line in raw.split(b"\n"):
                if not line.strip():
                    continue
                total_lines += 1
                record = _parse_line(line)
                if record is not None:
                    merged[record["key"]] = record
            if total_lines == len(merged) and (raw.endswith(b"\n") or not raw):
                self._index = merged
                self._loaded = True
                return 0
            self._atomic_rewrite(
                [
                    (canonical_json(record) + "\n").encode("utf-8")
                    for record in merged.values()
                ]
            )
            self._index = merged
            self._loaded = True
        dropped = total_lines - len(merged)
        _C_COMPACT_DROPPED.value += dropped
        return dropped
