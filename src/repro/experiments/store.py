"""A persistent, content-addressed JSONL store for sweep results.

Each record is one JSON object per line, keyed by a stable SHA-256 digest of
the cell's identity: scenario name, full parameter assignment, delivery
adversary, seed, horizon override, and the versions of every analysis pass
applied.  Repeated sweeps therefore become incremental — a cell whose key is
already present is a cache hit and is never re-simulated — while bumping an
analysis version re-runs exactly the cells it affects.

The store is append-only (crash-safe: a torn final line is ignored on load);
:meth:`ResultStore.compact` rewrites the file keeping the newest record per
key.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Version stamp of the store's record layout; part of every cache key.
STORE_FORMAT_VERSION = 1

#: Default store location, relative to the current working directory.
DEFAULT_STORE_PATH = os.path.join(".repro-store", "results.jsonl")


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def cell_key(
    scenario: str,
    params: Mapping[str, Any],
    adversary: str,
    seed: int,
    analysis_versions: Mapping[str, int],
    horizon: Optional[int] = None,
) -> str:
    """The stable content address of one sweep cell."""
    material = canonical_json(
        {
            "format": STORE_FORMAT_VERSION,
            "scenario": scenario,
            "params": dict(params),
            "adversary": adversary,
            "seed": seed,
            "horizon": horizon,
            "analyses": dict(analysis_versions),
        }
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class StoreError(ValueError):
    """Raised on malformed store records."""


class ResultStore:
    """An append-only JSONL result cache with an in-memory key index."""

    def __init__(self, path: str = DEFAULT_STORE_PATH):
        self.path = path
        self._index: Dict[str, Dict[str, Any]] = {}
        self._loaded = False

    # -- loading -----------------------------------------------------------

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing line from an interrupted append
                key = record.get("key")
                if isinstance(key, str):
                    self._index[key] = record

    def reload(self) -> None:
        """Drop the in-memory index and re-read the file on next access."""
        self._index = {}
        self._loaded = False

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        self._ensure_loaded()
        return key in self._index

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        self._ensure_loaded()
        return self._index.get(key)

    def keys(self) -> Tuple[str, ...]:
        self._ensure_loaded()
        return tuple(self._index)

    def records(self) -> List[Dict[str, Any]]:
        """All current records (newest per key), in insertion order."""
        self._ensure_loaded()
        return list(self._index.values())

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.records())

    # -- writes ------------------------------------------------------------

    def put(self, record: Mapping[str, Any]) -> None:
        """Append one record; the newest record per key wins on lookup."""
        key = record.get("key")
        if not isinstance(key, str) or not key:
            raise StoreError("store records must carry a non-empty string 'key'")
        self._ensure_loaded()
        payload = dict(record)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "ab") as handle:
            # If a previous append was interrupted mid-line, start fresh so the
            # torn fragment cannot swallow this record too.
            if handle.tell() > 0:
                with open(self.path, "rb") as reader:
                    reader.seek(-1, os.SEEK_END)
                    last = reader.read(1)
                if last != b"\n":
                    handle.write(b"\n")
            handle.write((canonical_json(payload) + "\n").encode("utf-8"))
        self._index[key] = payload

    def put_many(self, records: Sequence[Mapping[str, Any]]) -> None:
        for record in records:
            self.put(record)

    def compact(self) -> int:
        """Rewrite the file keeping one (newest) record per key.

        Returns the number of lines dropped.
        """
        self._ensure_loaded()
        if not os.path.exists(self.path):
            return 0
        with open(self.path, "r", encoding="utf-8") as handle:
            total_lines = sum(1 for line in handle if line.strip())
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for record in self._index.values():
                handle.write(canonical_json(record) + "\n")
        os.replace(tmp_path, self.path)
        return total_lines - len(self._index)
