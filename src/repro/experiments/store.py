"""A persistent, content-addressed, segmented JSONL store for sweep results.

Each record is one JSON object, keyed by a stable SHA-256 digest of the
cell's identity: scenario name, full parameter assignment, delivery
adversary, seed, horizon override, and the versions of every analysis pass
applied.  Repeated sweeps therefore become incremental — a cell whose key is
already present is a cache hit and is never re-simulated — while bumping an
analysis version re-runs exactly the cells it affects.

Layout.  The store is a single *active tail* file at ``path`` (plain JSONL,
exactly the original single-file format, so legacy stores open unchanged)
plus, once the tail outgrows ``rotate_bytes``, *sealed segments* under
``<path>.segments/``:

* ``<path>`` — the active tail.  All appends land here; it is always
  scanned in full on load, so appends can never stale the index.
* ``<path>.segments/seg-NNNNNN.jsonl`` — sealed segments.  One meta line
  (format version, record count, sealing owner), then one record per line
  wrapped as ``{"c": CRC32, "r": {record}}`` — every fetch is verified
  against its checksum, so a corrupt record degrades to a cache miss (the
  cell is recomputed and the fresh record supersedes it) instead of serving
  garbage.
* ``<path>.index.json`` — a sidecar index over the *sealed segments only*:
  cell key -> ``(segment, offset, length)``.  Resume and cache probes are
  O(1) dictionary hits plus one ``pread`` instead of a full-store scan.
  The index is advisory: when missing, stale (the on-disk segment list or
  sizes disagree), or corrupt it is rebuilt from the segments themselves.

Small stores (under ``rotate_bytes``) never grow sidecars: they stay a
single tail file, bit-for-bit the legacy layout.

Crash safety:

* *appends* (:meth:`ResultStore.put`) are a single ``write(2)`` on an
  ``O_APPEND`` descriptor, so a record is either entirely on disk or not at
  all — a crash can tear at most the final line, never interleave two;
* *rewrites* (:meth:`ResultStore.compact`, :meth:`ResultStore.recover`, and
  segment seals) go through a temp file in the same directory followed by an
  atomic ``os.replace``, with the data fsynced before the rename, so readers
  always observe either the old file or the complete new one;
* *rotation* seals (writes + fsyncs) the segment **before** truncating the
  tail: a crash between the two leaves harmless duplicates (the tail always
  wins over segments on lookup), never a lost record.

A torn final line (from a ``kill -9`` mid-append) is ignored on load;
:meth:`ResultStore.recover` additionally rewrites the tail without the torn
tail line and re-checks index freshness — it stays *shallow* (no segment
re-read) so resume cost is independent of store size.  The deep pass is
:meth:`ResultStore.verify`, which CRC-checks every sealed record and can
``repair=True`` (drop corrupt records, recover the tail, rebuild the
index).  :meth:`ResultStore.migrate` upgrades a legacy single-file store in
place by force-sealing its tail; records read back identically.

Multiple processes may share one store (several sweep coordinators, a
resumed sweep racing a report): appends take a *shared* advisory ``flock``
and rewrites/rotations an *exclusive* one on a sidecar ``<path>.lock``
file, so a rewrite can never interleave with (and silently drop) a live
append.  The sidecar — rather than the store file itself — is locked
because rewrites swap the store's inode via ``os.replace``, which would
strand any lock held on the old inode.  Rewrites re-read the disk under the
lock, so records appended by other processes after this process last loaded
its view survive compaction.  Each sealed segment records the owner
(``host:pid``) that sealed it; concurrent coordinators each seal their own
segments, and before writing an index a rotation folds in segments sealed
by other coordinators, so a persisted index always covers every segment it
declares — a reader never loads a "fresh" index that silently misses
another writer's records.  Anything that still goes stale (a racing index
write losing to an older one) fails the freshness check and is rebuilt.

Storage fault injection (``repro sweep --chaos`` with storage kinds, see
:mod:`repro.experiments.faults`) is consulted cooperatively at three
points: ``store.append`` (``torn-write`` truncates the append mid-line),
``store.seal`` (``corrupt-segment`` flips a byte in the sealed file,
``partial-fsync`` skips the fsync and tears the segment's last record), and
``store.rotate`` (``stale-index`` suppresses the index write).  All of them
are recoverable by construction: the damage surfaces as cache misses or an
index rebuild, never as wrong records.
"""

from __future__ import annotations

import binascii
import contextlib
import hashlib
import json
import os
import re
import socket
import time
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

try:  # advisory locking is POSIX-only; the store degrades gracefully
    import fcntl

    _HAS_FLOCK = True
except ImportError:  # pragma: no cover - non-POSIX platforms
    _HAS_FLOCK = False

from ..obs import metrics as _metrics
from . import faults as _faults

#: Version stamp of the store's record layout; part of every cache key.
STORE_FORMAT_VERSION = 1

#: Version stamp of the sealed-segment line format (meta line + CRC wrappers).
SEGMENT_FORMAT_VERSION = 2

#: Version stamp of the sidecar index file.
INDEX_FORMAT_VERSION = 2

#: Tail size at which an append triggers rotation into a sealed segment.
DEFAULT_ROTATE_BYTES = 4 * 1024 * 1024

_SEGMENT_RE = re.compile(r"^seg-(\d{6})\.jsonl$")

_C_APPENDS = _metrics.counter("store.appends")
_C_LOOKUPS = _metrics.counter("store.lookups")
_C_RECOVER_DROPPED = _metrics.counter("store.recover_dropped_lines")
_C_COMPACT_DROPPED = _metrics.counter("store.compact_dropped_lines")
_C_ROTATIONS = _metrics.counter("store.rotations")
_C_SEGMENTS_SEALED = _metrics.counter("store.segments_sealed")
_C_INDEX_REBUILDS = _metrics.counter("store.index_rebuilds")
_C_INDEX_HITS = _metrics.counter("store.index_hits")
_C_SEGMENT_FETCHES = _metrics.counter("store.segment_fetches")
_C_CRC_FAILURES = _metrics.counter("store.crc_failures")

#: Default store location, relative to the current working directory.
DEFAULT_STORE_PATH = os.path.join(".repro-store", "results.jsonl")


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), allow_nan=False)


def cell_key(
    scenario: str,
    params: Mapping[str, Any],
    adversary: str,
    seed: int,
    analysis_versions: Mapping[str, int],
    horizon: Optional[int] = None,
) -> str:
    """The stable content address of one sweep cell."""
    material = canonical_json(
        {
            "format": STORE_FORMAT_VERSION,
            "scenario": scenario,
            "params": dict(params),
            "adversary": adversary,
            "seed": seed,
            "horizon": horizon,
            "analyses": dict(analysis_versions),
        }
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class StoreError(ValueError):
    """Raised on malformed store records."""


def _parse_line(line: bytes) -> Optional[Dict[str, Any]]:
    """One JSONL line -> record, or ``None`` for blank/torn/keyless lines."""
    stripped = line.strip()
    if not stripped:
        return None
    try:
        record = json.loads(stripped)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict) or not isinstance(record.get("key"), str):
        return None
    return record


def _crc32(payload: bytes) -> int:
    return binascii.crc32(payload) & 0xFFFFFFFF


def _wrap_record(record: Mapping[str, Any]) -> bytes:
    """One sealed-segment line: the record plus the CRC32 of its canonical form."""
    body = canonical_json(record)
    return ('{"c":%d,"r":%s}\n' % (_crc32(body.encode("utf-8")), body)).encode("utf-8")


def _unwrap_record(line: bytes) -> Optional[Dict[str, Any]]:
    """Decode and CRC-verify one sealed line; ``None`` on any mismatch."""
    stripped = line.strip()
    if not stripped:
        return None
    try:
        wrapper = json.loads(stripped)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(wrapper, dict) or "r" not in wrapper:
        return None
    record = wrapper.get("r")
    crc = wrapper.get("c")
    if not isinstance(record, dict) or not isinstance(record.get("key"), str):
        return None
    if not isinstance(crc, int):
        return None
    if _crc32(canonical_json(record).encode("utf-8")) != crc:
        return None
    return record


class ResultStore:
    """An append-only, segmented JSONL result cache with an O(1) resume index.

    ``rotate_bytes`` is the tail size that triggers sealing (``None``
    disables rotation entirely — the store stays a legacy single file).
    ``use_index=False`` disables the sidecar index: sealed segments are
    fully scanned on load instead (the comparison baseline for the resume
    bench, and a fallback for read-only filesystems where index writes
    cannot land anyway).
    """

    def __init__(
        self,
        path: str = DEFAULT_STORE_PATH,
        rotate_bytes: Optional[int] = DEFAULT_ROTATE_BYTES,
        use_index: bool = True,
    ):
        if rotate_bytes is not None and rotate_bytes < 1:
            raise StoreError(f"rotate_bytes must be >= 1 or None, got {rotate_bytes}")
        self.path = path
        self.rotate_bytes = rotate_bytes
        self.use_index = use_index
        self._tail: Dict[str, Dict[str, Any]] = {}
        self._sealed_cache: Dict[str, Dict[str, Any]] = {}
        self._locators: Dict[str, Tuple[int, int, int]] = {}
        self._segments: List[str] = []
        # Segments whose records the in-memory view (locators or full-scan
        # cache) actually covers.  With several coordinators sealing into one
        # store this can lag self._segments; rotation folds the gap in before
        # writing an index, so a written index is always complete for the
        # segment list it declares.
        self._covered: set = set()
        self._loaded = False

    # -- layout ------------------------------------------------------------

    @property
    def segments_dir(self) -> str:
        return self.path + ".segments"

    @property
    def index_path(self) -> str:
        return self.path + ".index.json"

    def _segment_path(self, name: str) -> str:
        return os.path.join(self.segments_dir, name)

    def _list_segments(self) -> List[str]:
        try:
            names = os.listdir(self.segments_dir)
        except (FileNotFoundError, NotADirectoryError):
            return []
        return sorted(name for name in names if _SEGMENT_RE.match(name))

    def stat_signature(self) -> Tuple[Any, ...]:
        """A cheap fingerprint of the on-disk state — no record is read.

        Covers the tail, the advisory index, and every sealed segment as
        ``(name, size, mtime_ns)`` triples: any append (flock'd, so it
        always grows the tail), seal, compaction, or repair — by this
        process or another one sharing the store — changes the signature.
        ``repro serve`` keys its report cache on this, so repeat reports
        over an unchanged store are pure cache hits while a concurrent CLI
        sweep invalidates them naturally.
        """

        def stat(path: str) -> Optional[Tuple[int, int]]:
            try:
                info = os.stat(path)
            except OSError:
                return None
            return (info.st_size, info.st_mtime_ns)

        parts: List[Tuple[Any, ...]] = [
            ("tail", stat(self.path)),
            ("index", stat(self.index_path)),
        ]
        for name in self._list_segments():
            parts.append((name, stat(self._segment_path(name))))
        return tuple(parts)

    def _next_segment_name(self) -> str:
        last = 0
        for name in self._segments:
            match = _SEGMENT_RE.match(name)
            if match:
                last = max(last, int(match.group(1)))
        return f"seg-{last + 1:06d}.jsonl"

    # -- loading -----------------------------------------------------------

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        self._segments = self._list_segments()
        if self._segments:
            if self.use_index:
                if not self._try_load_index():
                    self._rebuild_index()
            else:
                self._scan_segments()
        self._load_tail()

    def _load_tail(self) -> None:
        self._tail = {}
        try:
            handle = open(self.path, "rb")
        except FileNotFoundError:
            return
        with handle:
            for line in handle:
                record = _parse_line(line)
                if record is not None:
                    self._tail[record["key"]] = record

    def reload(self) -> None:
        """Drop every in-memory view and re-read the disk on next access."""
        self._tail = {}
        self._sealed_cache = {}
        self._locators = {}
        self._segments = []
        self._covered = set()
        self._loaded = False

    # -- index -------------------------------------------------------------

    def _segment_stats(self) -> List[List[Any]]:
        stats = []
        for name in self._segments:
            try:
                size = os.path.getsize(self._segment_path(name))
            except OSError:
                size = -1
            stats.append([name, size])
        return stats

    def _try_load_index(self) -> bool:
        """Load the sidecar index; ``False`` when missing, stale, or corrupt.

        Staleness is a disk-truth check: the index must list exactly the
        sealed segments on disk, at their current sizes.  Appends only ever
        touch the tail (which is never indexed), so an index can go stale
        only through rotation, compaction, repair, or manual surgery — all
        of which change the segment list or a segment's size.
        """
        try:
            with open(self.index_path, "rb") as handle:
                data = json.loads(handle.read())
            if data.get("format") != INDEX_FORMAT_VERSION:
                return False
            if data.get("segments") != self._segment_stats():
                return False
            entries = data["entries"]
            locators: Dict[str, Tuple[int, int, int]] = {}
            count = len(self._segments)
            for key, loc in entries.items():
                si, offset, length = loc
                if not 0 <= si < count:
                    return False
                locators[key] = (si, offset, length)
        except (OSError, ValueError, KeyError, TypeError):
            return False
        self._locators = locators
        self._covered = set(self._segments)
        return True

    def _rebuild_index(self, persist: bool = True) -> None:
        """Rebuild locators by scanning every sealed segment, CRC-verifying.

        Corrupt records are left out of the index (they would fail their
        fetch-time CRC anyway), so a rebuild after segment damage turns the
        damaged cells into cache misses — the self-healing path the
        corrupted-segment/deleted-index recovery tests pin down.  The index
        write is best-effort: on a read-only filesystem the in-memory
        locators still serve this process.
        """
        locators: Dict[str, Tuple[int, int, int]] = {}
        for si, name in enumerate(self._segments):
            for record, offset, length in self._iter_segment(name):
                if record is not None:
                    locators[record["key"]] = (si, offset, length)
        self._locators = locators
        self._covered = set(self._segments)
        _C_INDEX_REBUILDS.value += 1
        if persist and self.use_index:
            try:
                self._write_index()
            except OSError:
                pass

    def _write_index(self) -> None:
        payload = {
            "format": INDEX_FORMAT_VERSION,
            "segments": self._segment_stats(),
            "entries": {key: list(loc) for key, loc in self._locators.items()},
        }
        data = (canonical_json(payload) + "\n").encode("utf-8")
        tmp_path = f"{self.index_path}.{os.getpid()}.tmp"
        fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.index_path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_path)
            raise

    def _iter_segment(
        self, name: str
    ) -> Iterator[Tuple[Optional[Dict[str, Any]], int, int]]:
        """Yield ``(record_or_None, offset, length)`` per non-meta line.

        ``None`` marks a corrupt line (bad JSON, missing key, CRC mismatch).
        The meta line and blank lines are skipped entirely.
        """
        try:
            with open(self._segment_path(name), "rb") as handle:
                raw = handle.read()
        except OSError:
            return
        offset = 0
        for line in raw.split(b"\n"):
            length = len(line) + 1  # the split newline
            stripped = line.strip()
            if stripped and not stripped.startswith(b'{"seg"'):
                yield _unwrap_record(line), offset, min(length, len(raw) - offset)
            offset += length

    def _scan_segments(self) -> None:
        """Full-scan fallback (``use_index=False``): parse every sealed record."""
        self._sealed_cache = {}
        for name in self._segments:
            for record, _, _ in self._iter_segment(name):
                if record is not None:
                    self._sealed_cache[record["key"]] = record
        self._covered = set(self._segments)

    def _absorb_foreign_segments(self) -> None:
        """Fold in segments sealed by other coordinators since our last sync.

        Called under the exclusive lock with ``self._segments`` freshly
        re-listed.  Segment numbers only ever grow (the next name is chosen
        from the full on-disk listing under the same lock), so our previous
        view is a prefix of the new list and existing locator seg-indices
        stay valid; any listed segment we never scanned is scanned here, so
        an index written afterwards covers every segment it declares — a
        reader must never load a "fresh" index that silently misses another
        writer's records.  A foreign compaction (which deletes old segments)
        invalidates the prefix property, so that case starts the view over.
        """
        on_disk = set(self._segments)
        if not self._covered <= on_disk:
            self._locators = {}
            self._sealed_cache = {}
            self._covered = set()
        if self.use_index:
            for si, name in enumerate(self._segments):
                if name in self._covered:
                    continue
                for record, offset, length in self._iter_segment(name):
                    if record is None:
                        continue
                    key = record["key"]
                    existing = self._locators.get(key)
                    if existing is None or existing[0] <= si:
                        self._locators[key] = (si, offset, length)
                        self._sealed_cache.pop(key, None)
                self._covered.add(name)
        elif not self._covered >= on_disk:
            self._scan_segments()

    def _fetch(self, key: str) -> Optional[Dict[str, Any]]:
        """Materialise one sealed record through its locator, CRC-verified."""
        loc = self._locators.get(key)
        if loc is None:
            return None
        si, offset, length = loc
        if si >= len(self._segments):
            return None
        _C_SEGMENT_FETCHES.value += 1
        try:
            with open(self._segment_path(self._segments[si]), "rb") as handle:
                handle.seek(offset)
                raw = handle.read(length)
        except OSError:
            _C_CRC_FAILURES.value += 1
            return None
        record = _unwrap_record(raw)
        if record is None or record.get("key") != key:
            # Damage degrades to a cache miss: the cell recomputes and its
            # fresh tail record supersedes the corrupt sealed one.
            _C_CRC_FAILURES.value += 1
            return None
        self._sealed_cache[key] = record
        return record

    # -- locking -----------------------------------------------------------

    @contextlib.contextmanager
    def _locked(self, exclusive: bool):
        """Advisory flock on the sidecar lock file (no-op without fcntl).

        Shared for appends (many appenders interleave safely at line
        granularity), exclusive for rewrites and rotations — so compaction
        waits out live appends instead of snapshotting around them.
        """
        if not _HAS_FLOCK:
            yield
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        fd = os.open(self.path + ".lock", os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    # -- queries -----------------------------------------------------------

    def _sealed_keys(self) -> Mapping[str, Any]:
        return self._locators if self.use_index else self._sealed_cache

    def __len__(self) -> int:
        self._ensure_loaded()
        sealed = self._sealed_keys()
        if not sealed:
            return len(self._tail)
        if not self._tail:
            return len(sealed)
        return len(set(sealed) | set(self._tail))

    def __contains__(self, key: str) -> bool:
        self._ensure_loaded()
        if key in self._tail:
            return True
        if key in self._sealed_keys():
            if self.use_index:
                _C_INDEX_HITS.value += 1
            return True
        return False

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        self._ensure_loaded()
        _C_LOOKUPS.value += 1
        record = self._tail.get(key)
        if record is not None:
            return record
        record = self._sealed_cache.get(key)
        if record is not None:
            if self.use_index:
                _C_INDEX_HITS.value += 1
            return record
        if self.use_index and key in self._locators:
            _C_INDEX_HITS.value += 1
            return self._fetch(key)
        return None

    def keys(self) -> Tuple[str, ...]:
        self._ensure_loaded()
        sealed = self._sealed_keys()
        if not sealed:
            return tuple(self._tail)
        merged = dict.fromkeys(sealed)
        merged.update(dict.fromkeys(self._tail))
        return tuple(merged)

    def records(self) -> List[Dict[str, Any]]:
        """All current records (newest per key), in insertion order.

        A full scan by design — reports want every record body.  Sealed
        segments are read in order, then the tail overrides (tail records
        are always newer than sealed ones).
        """
        self._ensure_loaded()
        merged: Dict[str, Dict[str, Any]] = {}
        for name in self._segments:
            for record, _, _ in self._iter_segment(name):
                if record is not None:
                    merged[record["key"]] = record
        for key, record in self._tail.items():
            merged[key] = record
        return list(merged.values())

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.records())

    # -- writes ------------------------------------------------------------

    def put(self, record: Mapping[str, Any]) -> None:
        """Append one record; the newest record per key wins on lookup.

        The append is a single ``write(2)`` on an ``O_APPEND`` descriptor:
        either the whole line lands on disk or (on a crash) none of it, and
        concurrent appenders from different processes cannot interleave.  If
        a previous append was torn mid-line, a leading newline is folded into
        the same write so the fragment cannot swallow this record too.  In
        the degenerate short-write case (disk full, file-size limit) the
        remainder is completed by follow-up writes — our own line stays whole
        or the call raises, but interleave-safety against *other* appenders
        is forfeited for that one record.

        When the tail reaches ``rotate_bytes`` the append also rotates: the
        tail is sealed into a checksummed segment and emptied (see
        :meth:`rotate`).
        """
        key = record.get("key")
        if not isinstance(key, str) or not key:
            raise StoreError("store records must carry a non-empty string 'key'")
        self._ensure_loaded()
        payload = dict(record)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        torn = any(
            rule.kind == "torn-write" for rule in _faults.storage_fault("store.append")
        )
        tail_size = 0
        with self._locked(exclusive=False):
            line = (canonical_json(payload) + "\n").encode("utf-8")
            if not self._ends_with_newline():
                line = b"\n" + line
            if torn:
                # Injected crash-mid-append: most of the line lands, the end
                # (including the newline) never does.
                line = line[: max(1, len(line) * 2 // 3)]
            fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
            try:
                # Normally one write(2); loop to finish a short write
                # (ENOSPC, RLIMIT_FSIZE) so a silently-truncated count cannot
                # leave a torn line behind while the index believes the
                # record landed.
                view = memoryview(line)
                while view:
                    view = view[os.write(fd, view) :]
                tail_size = os.fstat(fd).st_size
            finally:
                os.close(fd)
        if torn:
            # The record never fully landed: leaving the key out of the
            # in-memory view keeps this process honest too — the cell reads
            # as missing and is recomputed, exactly like after a real crash.
            return
        # Only reached when the whole line is durably appended: an exception
        # above leaves the key out of the index, so the cell is re-executed
        # rather than served from a record that never fully landed.
        self._tail[key] = payload
        _C_APPENDS.value += 1
        if self.rotate_bytes is not None and tail_size >= self.rotate_bytes:
            self.rotate()

    def put_many(self, records: Sequence[Mapping[str, Any]]) -> None:
        for record in records:
            self.put(record)

    def _ends_with_newline(self) -> bool:
        """Whether the file is empty or its last byte is a newline."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return True
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) == b"\n"
        except FileNotFoundError:
            return True

    def _atomic_rewrite(self, lines: Sequence[bytes]) -> None:
        """Replace the store file with ``lines`` via temp-file + rename.

        The temp file lives in the store's own directory (same filesystem, so
        the rename is atomic) and is fsynced before ``os.replace``; a crash at
        any point leaves either the old complete file or the new one.  The
        temp name is per-process so two rewriters never share a temp file;
        note that a rewrite snapshots the file, so records appended by
        *another* process between the read and the rename are dropped —
        rewrites (compact/recover) belong to a single coordinating process,
        while appends are safe from many.
        """
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp_path = f"{self.path}.{os.getpid()}.tmp"
        fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.writelines(lines)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        if directory:
            try:
                dir_fd = os.open(directory, os.O_RDONLY)
            except OSError:
                return  # platform without directory fds; rename already done
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)

    # -- rotation and sealing ----------------------------------------------

    def _write_segment(
        self,
        name: str,
        records: Sequence[Mapping[str, Any]],
        fire_faults: bool = True,
    ) -> Dict[str, Tuple[int, int]]:
        """Write one sealed segment atomically; returns key -> (offset, length).

        The file is fsynced before the rename, so by the time the caller
        truncates the tail the segment is durable — a crash between seal and
        truncate leaves duplicates (tail wins), never a lost record.
        """
        owner = f"{socket.gethostname()}:{os.getpid()}"
        meta = {
            "seg": {
                "format": SEGMENT_FORMAT_VERSION,
                "name": name,
                "records": len(records),
                "owner": owner,
                "sealed_at": round(time.time(), 3),
            }
        }
        buf = bytearray((canonical_json(meta) + "\n").encode("utf-8"))
        meta_len = len(buf)
        entries: Dict[str, Tuple[int, int]] = {}
        for record in records:
            line = _wrap_record(record)
            entries[record["key"]] = (len(buf), len(line))
            buf += line
        seal_kinds = (
            {rule.kind for rule in _faults.storage_fault("store.seal")}
            if fire_faults
            else set()
        )
        if "corrupt-segment" in seal_kinds and len(buf) > meta_len:
            # Bit rot, deterministically: flip one byte in the middle of the
            # record region.  The hit record fails its CRC and degrades to a
            # cache miss; every other record still verifies.
            position = meta_len + (len(buf) - meta_len) // 2
            buf[position] ^= 0xFF
        os.makedirs(self.segments_dir, exist_ok=True)
        final_path = self._segment_path(name)
        tmp_path = f"{final_path}.{os.getpid()}.tmp"
        fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(buf)
                handle.flush()
                if "partial-fsync" in seal_kinds:
                    # The fsync never happened and the page cache lost the
                    # end of the file: the last record line is torn.
                    handle.truncate(max(meta_len, len(buf) - 16))
                else:
                    os.fsync(handle.fileno())
            os.replace(tmp_path, final_path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_path)
            raise
        try:
            dir_fd = os.open(self.segments_dir, os.O_RDONLY)
        except OSError:
            pass
        else:
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        _C_SEGMENTS_SEALED.value += 1
        return entries

    def rotate(self, force: bool = False) -> Optional[str]:
        """Seal the current tail into a checksummed segment; empty the tail.

        Returns the new segment's name, or ``None`` when there was nothing
        to seal (or another process rotated first — the size is re-checked
        under the exclusive lock).  ``force=True`` seals regardless of size
        (the migration path).  Ordering is seal-then-truncate: the segment
        is durable on disk before the tail shrinks, so a crash in between
        leaves duplicates the lookup order (tail over segments) resolves.
        """
        self._ensure_loaded()
        if not os.path.exists(self.path):
            return None
        with self._locked(exclusive=True):
            with open(self.path, "rb") as handle:
                raw = handle.read()
            threshold = self.rotate_bytes
            if not force and (threshold is None or len(raw) < threshold):
                return None  # another process rotated while we waited
            sealed: List[Dict[str, Any]] = []
            for line in raw.split(b"\n"):
                record = _parse_line(line)
                if record is not None:
                    sealed.append(record)
            if not sealed:
                return None
            self._segments = self._list_segments()
            self._absorb_foreign_segments()
            name = self._next_segment_name()
            rotate_kinds = {rule.kind for rule in _faults.storage_fault("store.rotate")}
            entries = self._write_segment(name, sealed)
            self._atomic_rewrite([])
            si = len(self._segments)
            self._segments.append(name)
            self._covered.add(name)
            if self.use_index:
                for key, (offset, length) in entries.items():
                    self._locators[key] = (si, offset, length)
                if "stale-index" not in rotate_kinds:
                    with contextlib.suppress(OSError):
                        self._write_index()
            # The sealed records stay served from memory either way; the
            # values are identical to what a fetch would verify and return.
            for record in sealed:
                self._sealed_cache[record["key"]] = record
            self._tail = {}
        _C_ROTATIONS.value += 1
        return name

    def migrate(self) -> Dict[str, Any]:
        """Upgrade a legacy single-file store in place; idempotent.

        Seals the whole tail into a segment (regardless of size) and writes
        the sidecar index, so subsequent opens take the O(1) probe path.
        Records read back bit-identically — the layout changes, the record
        bytes do not (``canonical_json`` round-trip).  Returns :meth:`info`.
        """
        self._ensure_loaded()
        if self._tail:
            self.rotate(force=True)
        elif self._segments and self.use_index and not self._try_load_index():
            self._rebuild_index()
        return self.info()

    # -- maintenance ---------------------------------------------------------

    def recover(self) -> int:
        """Drop torn/corrupt tail lines, atomically; idempotent and *shallow*.

        Scans the raw tail JSONL, keeps every parseable keyed record line
        (torn tails from a ``kill -9`` mid-append and any other corrupt
        lines are dropped), and rewrites the tail via temp-file + rename
        only when something actually needs dropping.  Returns the number of
        lines dropped.  This is the entry point resumable sweeps call before
        trusting the store as the source of truth for completed cells.

        Sealed segments are *not* re-read (resume cost must not scale with
        store size): a stale or missing index is rebuilt, and per-record
        damage inside segments surfaces lazily as CRC-failed fetches — i.e.
        cache misses that recompute and supersede.  The deep scan is
        :meth:`verify`.  Runs under the exclusive advisory lock and re-reads
        the file inside it, so concurrent appenders neither tear the scan
        nor lose records.
        """
        self._ensure_loaded()
        dropped = 0
        if os.path.exists(self.path):
            with self._locked(exclusive=True):
                with open(self.path, "rb") as handle:
                    raw = handle.read()
                kept: List[bytes] = []
                for line in raw.split(b"\n"):
                    if not line.strip():
                        continue
                    if _parse_line(line) is None:
                        dropped += 1
                    else:
                        kept.append(line + b"\n")
                clean = raw.endswith(b"\n") or not raw
                if dropped or not clean:
                    self._atomic_rewrite(kept)
                    self._load_tail()
        on_disk = self._list_segments()
        if on_disk != self._segments or (
            on_disk and self.use_index and not self._try_load_index()
        ):
            self._segments = on_disk
            if self.use_index:
                self._rebuild_index()
            else:
                self._scan_segments()
        _C_RECOVER_DROPPED.value += dropped
        return dropped

    def compact(self) -> int:
        """Rewrite the store keeping one (newest) record per key, atomically.

        Returns the number of lines dropped (superseded duplicates plus any
        torn/corrupt lines).  Compacting an already-compact store drops 0
        lines and rewrites nothing.  When the surviving records fit under
        ``rotate_bytes`` the store collapses back to a single legacy tail
        file (segments and index removed); larger stores re-seal into fresh
        segments plus an empty tail.

        Runs under the exclusive advisory lock and rebuilds its view from
        the *disk*, not the in-memory state — another process may have
        appended records this process never loaded, and those must survive
        the rewrite.
        """
        self._ensure_loaded()
        if not os.path.exists(self.path) and not self._segments:
            return 0
        with self._locked(exclusive=True):
            self._segments = self._list_segments()
            merged: Dict[str, Dict[str, Any]] = {}
            total_lines = 0
            for name in self._segments:
                for record, _, _ in self._iter_segment(name):
                    total_lines += 1
                    if record is not None:
                        merged[record["key"]] = record
            try:
                with open(self.path, "rb") as handle:
                    raw = handle.read()
            except FileNotFoundError:
                raw = b""
            for line in raw.split(b"\n"):
                if not line.strip():
                    continue
                total_lines += 1
                record = _parse_line(line)
                if record is not None:
                    merged[record["key"]] = record
            clean = raw.endswith(b"\n") or not raw
            if total_lines == len(merged) and clean:
                return 0
            lines = [
                (canonical_json(record) + "\n").encode("utf-8")
                for record in merged.values()
            ]
            old_segments = list(self._segments)
            payload_bytes = sum(len(line) for line in lines)
            if (
                old_segments
                and self.rotate_bytes is not None
                and payload_bytes > self.rotate_bytes
            ):
                # Too big for one tail: re-seal into fresh segments (numbered
                # after the old ones so a crash mid-compaction leaves newer
                # duplicates that win the scan order), then an empty tail.
                records_list = list(merged.values())
                chunks: List[List[Dict[str, Any]]] = []
                chunk: List[Dict[str, Any]] = []
                chunk_bytes = 0
                for record, line in zip(records_list, lines):
                    if chunk and chunk_bytes + len(line) > self.rotate_bytes:
                        chunks.append(chunk)
                        chunk, chunk_bytes = [], 0
                    chunk.append(record)
                    chunk_bytes += len(line)
                if chunk:
                    chunks.append(chunk)
                new_segments: List[str] = []
                self._locators = {}
                self._sealed_cache = {}
                for chunk in chunks:
                    name = self._next_segment_name()
                    entries = self._write_segment(name, chunk, fire_faults=False)
                    si = len(new_segments)
                    self._segments = [*new_segments, name]
                    new_segments.append(name)
                    for key, (offset, length) in entries.items():
                        self._locators[key] = (si, offset, length)
                    for record in chunk:
                        self._sealed_cache[record["key"]] = record
                self._atomic_rewrite([])
                for name in old_segments:
                    with contextlib.suppress(OSError):
                        os.unlink(self._segment_path(name))
                self._segments = new_segments
                self._covered = set(new_segments)
                self._tail = {}
                if self.use_index:
                    with contextlib.suppress(OSError):
                        self._write_index()
            else:
                # Collapse to the legacy single-file layout: tail holds
                # everything, sidecars disappear.
                self._atomic_rewrite(lines)
                for name in old_segments:
                    with contextlib.suppress(OSError):
                        os.unlink(self._segment_path(name))
                with contextlib.suppress(OSError):
                    os.unlink(self.index_path)
                with contextlib.suppress(OSError):
                    os.rmdir(self.segments_dir)
                self._segments = []
                self._covered = set()
                self._locators = {}
                self._sealed_cache = {}
                self._tail = merged
        dropped = total_lines - len(merged)
        _C_COMPACT_DROPPED.value += dropped
        return dropped

    def verify(self, repair: bool = False) -> Dict[str, Any]:
        """Deep integrity check: CRC every sealed record, scan the tail.

        Returns a report dict; ``report["ok"]`` means no corrupt sealed
        records, no torn tail lines, and a fresh (or absent-by-design)
        index.  With ``repair=True`` corrupt sealed records are dropped
        (segment rewritten atomically), the tail is recovered, and the index
        rebuilt — the dropped cells become cache misses and recompute on the
        next resume.
        """
        self._ensure_loaded()
        report: Dict[str, Any] = {
            "path": self.path,
            "segments": [],
            "segment_records": 0,
            "corrupt_records": 0,
            "tail_records": 0,
            "tail_torn_lines": 0,
            "index": "none",
            "repaired": False,
        }
        with self._locked(exclusive=repair):
            self._segments = self._list_segments()
            damaged: Dict[str, List[Dict[str, Any]]] = {}
            for name in self._segments:
                good: List[Dict[str, Any]] = []
                corrupt = 0
                for record, _, _ in self._iter_segment(name):
                    if record is None:
                        corrupt += 1
                    else:
                        good.append(record)
                try:
                    size = os.path.getsize(self._segment_path(name))
                except OSError:
                    size = -1
                report["segments"].append(
                    {"name": name, "records": len(good), "corrupt": corrupt, "size": size}
                )
                report["segment_records"] += len(good)
                report["corrupt_records"] += corrupt
                if corrupt:
                    damaged[name] = good
            try:
                with open(self.path, "rb") as handle:
                    raw = handle.read()
            except FileNotFoundError:
                raw = b""
            for line in raw.split(b"\n"):
                if not line.strip():
                    continue
                if _parse_line(line) is None:
                    report["tail_torn_lines"] += 1
                else:
                    report["tail_records"] += 1
            if self._segments:
                if not self.use_index:
                    report["index"] = "disabled"
                elif not os.path.exists(self.index_path):
                    report["index"] = "missing"
                elif self._try_load_index():
                    report["index"] = "fresh"
                else:
                    report["index"] = "stale"
            if repair:
                for name, good in damaged.items():
                    self._write_segment(name, good, fire_faults=False)
                report["repaired"] = bool(damaged) or report["tail_torn_lines"] > 0
        if repair:
            # Outside the exclusive lock: recover() and the index rebuild
            # take their own locks.
            if report["tail_torn_lines"]:
                self.recover()
            self._segments = self._list_segments()
            if self._segments:
                if self.use_index:
                    self._rebuild_index()
                    report["index"] = "fresh"
                else:
                    self._scan_segments()
            report["corrupt_dropped"] = report["corrupt_records"]
            report["corrupt_records"] = 0
            report["tail_torn_lines"] = 0
        report["ok"] = (
            report["corrupt_records"] == 0
            and report["tail_torn_lines"] == 0
            and report["index"] in ("none", "fresh", "disabled")
        )
        return report

    def info(self) -> Dict[str, Any]:
        """Layout summary: segment count/records, tail records, index state."""
        self._ensure_loaded()
        index_state = "none"
        if self._segments:
            if not self.use_index:
                index_state = "disabled"
            elif not os.path.exists(self.index_path):
                index_state = "missing"
            else:
                index_state = "fresh" if self._try_load_index() else "stale"
        return {
            "path": self.path,
            "format": STORE_FORMAT_VERSION,
            "segment_format": SEGMENT_FORMAT_VERSION,
            "rotate_bytes": self.rotate_bytes,
            "segments": list(self._segments),
            "sealed_records": len(self._sealed_keys()),
            "tail_records": len(self._tail),
            "keys": len(self),
            "index": index_state,
        }
