"""``repro serve``: the HTTP front door over the sweep + store stack.

A long-running :class:`SweepService` turns the batch pipeline into a system
that serves traffic: clients POST sweep specs as JSON, poll or stream
progress, and read cell records and aggregated reports straight out of the
content-addressed :class:`~repro.experiments.store.ResultStore`.  The design
splits a small always-on hub from elastic workers: hot results cost one
advisory-index probe plus one pread, and only cold cells fan out to the
distributed fabric (:mod:`repro.experiments.remote`).

Everything is stdlib (``http.server.ThreadingHTTPServer``, newline-JSON
bodies) — no new dependencies.  Endpoints:

========================  ====================================================
``POST /sweeps``          validate a spec against the scenario registry's
                          typed ParamSpecs, return a sweep id; cells already
                          in the store are instant cache hits, cold cells
                          execute through the scheduler's dedup path
``GET /sweeps/{id}``      progress snapshot (counts + lease-based fabric
                          state while running)
``GET /sweeps/{id}/events``  chunked newline-JSON progress stream
``GET /results/{key}``    one record, content-addressed; a damaged or
                          missing record of a known cell degrades to
                          recompute-and-supersede (PR 9 semantics)
``GET /report``           aggregated report over the store (or one sweep),
                          cached against the store's on-disk signature
``GET /healthz``          liveness + store layout
``GET /metrics``          the ``repro.obs`` registry snapshot
========================  ====================================================

Invariants this module rides on (and must preserve):

* **All sweep result delivery goes through the scheduler.**  Jobs execute
  via :func:`~repro.experiments.runner.run_sweep` on a
  :class:`~repro.experiments.remote.RemoteExecutor` backend — with
  ``--workers-listen`` remote workers take leases, without it the inline
  fallback drains shards — and either way every record reaches the handler
  through ``FabricScheduler.complete``/``record_local``, whose dedup fires
  the handler exactly once per cell.
* **The store is the shared source of truth.**  Every request opens its own
  :class:`ResultStore` view, so reads ride the store invariants (tail always
  scanned in full, advisory index, tail-wins lookups, flock'd appends) and a
  serve process coexists with CLI sweeps on the same store.  ``/results``
  stays correct with the index deleted, stale, or disabled.
* **Telemetry is free.**  Every request increments ``serve.*`` counters and
  runs under :func:`~repro.obs.trace.span`, so ``/metrics`` self-reports the
  service's own traffic.
"""

from __future__ import annotations

import hashlib
import json
import queue
import socket
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..obs import metrics as _metrics
from ..obs.trace import span
from ..scenarios.base import RegistryError, get_scenario
from .analyses import AnalysisError, get_analysis
from .remote import RemoteExecutor
from .reporting import DEFAULT_REPORT_METRICS, cell_records, report_payload
from .runner import (
    ADVERSARIES,
    TELEMETRY_KIND,
    SweepCell,
    SweepError,
    execute_cell,
    expand_grid,
    run_sweep,
)
from .store import DEFAULT_STORE_PATH, ResultStore, canonical_json

__all__ = [
    "MAX_CELLS",
    "SpecError",
    "SweepService",
    "parse_endpoint",
    "validate_spec",
]

_C_REQUESTS = _metrics.counter("serve.requests")
_C_ERRORS = _metrics.counter("serve.errors")
_C_BAD_REQUESTS = _metrics.counter("serve.bad_requests")
_C_SWEEPS_POSTED = _metrics.counter("serve.sweeps_posted")
_C_CACHE_HIT = _metrics.counter("serve.cache_hit")
_C_CACHE_MISS = _metrics.counter("serve.cache_miss")
_C_RECOMPUTES = _metrics.counter("serve.recomputes")
_C_EVENT_STREAMS = _metrics.counter("serve.event_streams")

#: Ceiling on the cells one POSTed spec may expand to: a service must bound
#: the work a single request can enqueue (sweeps beyond this belong to the
#: batch CLI, which has no such cap).
MAX_CELLS = 10_000

#: Events kept per job (progress stream + snapshot); beyond this the stream
#: reports the drop instead of growing without bound.
_MAX_EVENTS = 20_000


# ---------------------------------------------------------------------------
# Endpoint parsing — shared by `repro serve/sweep/worker` (the CLI renders
# SweepError as a one-line `error: ...` with exit code 2).
# ---------------------------------------------------------------------------


def parse_endpoint(text: str, what: str = "address", resolve: bool = True) -> Tuple[str, int]:
    """Parse and validate ``HOST:PORT``.

    Raises :class:`SweepError` (one line, CLI-renderable) on a missing or
    non-numeric port, an out-of-range port, or — with ``resolve`` — a host
    that does not resolve.  An empty host (``:8080``) means loopback;
    bracketed IPv6 literals (``[::1]:8080``) are accepted.
    """
    host, sep, port_text = text.rpartition(":")
    if not sep or not port_text:
        raise SweepError(f"{what} expects HOST:PORT, got {text!r} (missing port)")
    try:
        port = int(port_text)
    except ValueError:
        raise SweepError(
            f"{what} expects a numeric port, got {port_text!r} in {text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise SweepError(f"{what} port must be in [0, 65535], got {port}")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    host = host or "127.0.0.1"
    if resolve:
        try:
            socket.getaddrinfo(host, port, type=socket.SOCK_STREAM)
        except OSError as exc:
            raise SweepError(f"{what}: cannot resolve host {host!r}: {exc}") from None
    return host, port


# ---------------------------------------------------------------------------
# Spec validation against the scenario registry's typed ParamSpecs.
# ---------------------------------------------------------------------------


class SpecError(ValueError):
    """A malformed sweep spec; ``field`` names the offending spec field."""

    def __init__(self, message: str, field: str = "spec"):
        super().__init__(message)
        self.field = field


_SPEC_FIELDS = ("scenarios", "adversaries", "seeds", "params", "analyses", "horizon")


def _spec_scenarios(spec: Mapping[str, Any]) -> List[str]:
    scenarios = spec.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        raise SpecError(
            "spec needs a non-empty 'scenarios' list", field="scenarios"
        )
    for name in scenarios:
        if not isinstance(name, str):
            raise SpecError(f"scenario names must be strings, got {name!r}", field="scenarios")
        try:
            get_scenario(name)
        except RegistryError as exc:
            raise SpecError(str(exc), field="scenarios") from None
    return [str(name) for name in scenarios]


def _spec_adversaries(spec: Mapping[str, Any]) -> List[str]:
    adversaries = spec.get("adversaries", list(ADVERSARIES))
    if not isinstance(adversaries, list) or not adversaries:
        raise SpecError("'adversaries' must be a non-empty list", field="adversaries")
    for name in adversaries:
        if name not in ADVERSARIES:
            raise SpecError(
                f"unknown adversary {name!r}; known: {list(ADVERSARIES)}",
                field="adversaries",
            )
    return [str(name) for name in adversaries]


def _spec_seeds(spec: Mapping[str, Any]) -> List[int]:
    seeds = spec.get("seeds", 1)
    if isinstance(seeds, bool):
        raise SpecError(f"'seeds' must be an int or a list of ints, got {seeds!r}", field="seeds")
    if isinstance(seeds, int):
        if seeds < 1:
            raise SpecError(f"'seeds' must be >= 1, got {seeds}", field="seeds")
        return list(range(seeds))
    if isinstance(seeds, list) and seeds and all(
        isinstance(s, int) and not isinstance(s, bool) for s in seeds
    ):
        return list(seeds)
    raise SpecError(f"'seeds' must be an int or a list of ints, got {seeds!r}", field="seeds")


def _spec_params(spec: Mapping[str, Any]) -> Dict[str, List[Any]]:
    params = spec.get("params", {})
    if not isinstance(params, Mapping):
        raise SpecError(f"'params' must be an object, got {params!r}", field="params")
    grid: Dict[str, List[Any]] = {}
    for name, values in params.items():
        if not isinstance(values, list):
            values = [values]  # a scalar sweeps one value
        if not values:
            raise SpecError(f"parameter {name!r} needs at least one value", field="params")
        grid[str(name)] = list(values)
    return grid


def _spec_analyses(spec: Mapping[str, Any]) -> Optional[List[str]]:
    analyses = spec.get("analyses")
    if analyses is None:
        return None
    if not isinstance(analyses, list) or not analyses:
        raise SpecError("'analyses' must be a non-empty list", field="analyses")
    for name in analyses:
        try:
            get_analysis(str(name))
        except AnalysisError as exc:
            raise SpecError(str(exc), field="analyses") from None
    return [str(name) for name in analyses]


def _spec_horizon(spec: Mapping[str, Any]) -> Optional[int]:
    horizon = spec.get("horizon")
    if horizon is None:
        return None
    if isinstance(horizon, bool) or not isinstance(horizon, int) or horizon < 1:
        raise SpecError(f"'horizon' must be an int >= 1, got {horizon!r}", field="horizon")
    return horizon


def validate_spec(
    spec: Any, max_cells: int = MAX_CELLS
) -> Tuple[List[SweepCell], Dict[str, Any]]:
    """Validate one POSTed sweep spec and expand it into cells.

    Every violation raises :class:`SpecError` with a ``field`` attribute
    naming the offending spec field (the HTTP layer turns that into a 400
    with a field-naming error body); parameter values are checked against
    the registry's typed :class:`~repro.scenarios.base.ParamSpec` entries,
    so the error message names the parameter too.
    """
    if not isinstance(spec, Mapping):
        raise SpecError(f"spec must be a JSON object, got {type(spec).__name__}")
    for name in spec:
        if name not in _SPEC_FIELDS:
            raise SpecError(
                f"unknown spec field {name!r}; allowed: {list(_SPEC_FIELDS)}",
                field=str(name),
            )
    scenarios = _spec_scenarios(spec)
    adversaries = _spec_adversaries(spec)
    seeds = _spec_seeds(spec)
    grid = _spec_params(spec)
    analyses = _spec_analyses(spec)
    horizon = _spec_horizon(spec)
    try:
        if analyses is None:
            cells = expand_grid(
                scenarios, adversaries=adversaries, seeds=seeds,
                param_grid=grid, horizon=horizon,
            )
        else:
            cells = expand_grid(
                scenarios, adversaries=adversaries, seeds=seeds,
                param_grid=grid, analyses=analyses, horizon=horizon,
            )
    except (RegistryError, SweepError) as exc:
        # ParamSpec.validate names the parameter; surface it under 'params'.
        raise SpecError(str(exc), field="params") from None
    if not cells:
        raise SpecError("spec expands to zero cells")
    if len(cells) > max_cells:
        raise SpecError(
            f"spec expands to {len(cells)} cells, over this service's "
            f"limit of {max_cells} (run it with the batch CLI instead)"
        )
    normalized: Dict[str, Any] = {
        "scenarios": scenarios,
        "adversaries": adversaries,
        "seeds": seeds,
        "params": grid,
        "horizon": horizon,
    }
    if analyses is not None:
        normalized["analyses"] = analyses
    return cells, normalized


# ---------------------------------------------------------------------------
# Sweep jobs.
# ---------------------------------------------------------------------------


class SweepJob:
    """One accepted sweep spec: cells, live counts, and a progress feed."""

    def __init__(self, job_id: str, cells: List[SweepCell], spec: Dict[str, Any]):
        self.id = job_id
        self.cells = cells
        self.spec = spec
        self.status = "queued"  # queued -> running -> done | failed
        self.error: Optional[str] = None
        self.counts = {"cached": 0, "executed": 0, "errors": 0}
        self.duration_s: Optional[float] = None
        self.backend: Optional[str] = None
        self.events: List[Dict[str, Any]] = []
        self.cond = threading.Condition()
        self.executor: Optional[RemoteExecutor] = None

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed")

    def emit(self, event: Dict[str, Any]) -> None:
        with self.cond:
            if len(self.events) < _MAX_EVENTS:
                self.events.append(event)
            elif len(self.events) == _MAX_EVENTS:
                self.events.append({"event": "truncated", "kept": _MAX_EVENTS})
            self.cond.notify_all()

    def observe(self, phase: str, cell: SweepCell, record: Dict[str, Any]) -> None:
        """The :func:`run_sweep` observer: fold one delivered cell in."""
        with self.cond:
            if phase == "cached":
                self.counts["cached"] += 1
            elif phase == "executed":
                self.counts["executed"] += 1
            else:
                self.counts["errors"] += 1
        event = {"event": phase, "key": record.get("key"), "cell": cell.describe()}
        if phase == "error":
            event["error"] = record.get("error")
        self.emit(event)

    def snapshot(self) -> Dict[str, Any]:
        with self.cond:
            counts = dict(self.counts)
            status = self.status
            events = len(self.events)
        delivered = counts["cached"] + counts["executed"] + counts["errors"]
        out: Dict[str, Any] = {
            "sweep": self.id,
            "status": status,
            "spec": self.spec,
            "cells": {
                "total": len(self.cells),
                "pending": max(0, len(self.cells) - delivered),
                **counts,
            },
            "events": events,
        }
        if self.backend is not None:
            out["backend"] = self.backend
        if self.duration_s is not None:
            out["duration_s"] = round(self.duration_s, 6)
        if self.error is not None:
            out["error"] = self.error
        executor = self.executor
        if executor is not None:
            # Live lease-based scheduler state (workers, leases, retries).
            out["fabric"] = executor.fabric_summary()
        return out


# ---------------------------------------------------------------------------
# The service.
# ---------------------------------------------------------------------------


class SweepService:
    """The serve hub: sweep jobs, content-addressed reads, cached reports.

    One background runner thread drains POSTed jobs in FIFO order; each job
    runs :func:`run_sweep` on a :class:`RemoteExecutor` backend (bound to
    ``workers_listen`` when given, else degrading instantly to the inline
    fallback), so every result reaches the store through the scheduler's
    exactly-once dedup path.  Sequential job execution makes overlapping
    grids naturally exactly-once: the second job's cache scan sees the
    first job's records.
    """

    def __init__(
        self,
        store_path: str = DEFAULT_STORE_PATH,
        *,
        rotate_bytes: Optional[int] = None,
        workers_listen: Optional[Tuple[str, int]] = None,
        workers: int = 2,
        shard_size: Optional[int] = None,
        local_fallback_s: float = 10.0,
        max_cells: int = MAX_CELLS,
        log: Optional[Callable[[str], None]] = None,
    ):
        self.store_path = store_path
        self.rotate_bytes = rotate_bytes
        self.workers_listen = workers_listen
        self.workers = max(1, workers)
        self.shard_size = shard_size
        self.local_fallback_s = local_fallback_s
        self.max_cells = max_cells
        self.log = log or (lambda message: None)
        self._lock = threading.Lock()
        self._jobs: Dict[str, SweepJob] = {}
        self._digests: Dict[str, List[str]] = {}  # grid digest -> job ids
        self._known_cells: Dict[str, SweepCell] = {}
        self._report_cache: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
        self._queue: "queue.Queue[Optional[SweepJob]]" = queue.Queue()
        self._runner: Optional[threading.Thread] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self.address: Optional[Tuple[str, int]] = None

    # -- store views -------------------------------------------------------

    def _open_store(self) -> ResultStore:
        """A fresh per-request view: re-reads disk, so a CLI sweep writing
        the same store (flock'd appends, tail-wins lookups) is visible."""
        if self.rotate_bytes is None:
            return ResultStore(self.store_path)
        return ResultStore(self.store_path, rotate_bytes=self.rotate_bytes or None)

    # -- sweep lifecycle ---------------------------------------------------

    def submit(self, spec: Any) -> Tuple[SweepJob, bool]:
        """Validate a spec; return ``(job, created)``.

        Re-POSTing a grid that is queued or running returns the existing
        job (idempotent); re-POSTing a finished grid creates a fresh job
        whose scan serves everything still in the store as cache hits.
        """
        cells, normalized = validate_spec(spec, max_cells=self.max_cells)
        digest = hashlib.sha256(
            canonical_json(sorted(cell.key() for cell in cells)).encode("utf-8")
        ).hexdigest()[:12]
        with self._lock:
            for job_id in self._digests.get(digest, ()):
                job = self._jobs[job_id]
                if not job.terminal:
                    return job, False
            attempt = len(self._digests.get(digest, ())) + 1
            job_id = f"sweep-{digest}" if attempt == 1 else f"sweep-{digest}-r{attempt}"
            job = SweepJob(job_id, cells, normalized)
            self._jobs[job_id] = job
            self._digests.setdefault(digest, []).append(job_id)
            for cell in cells:
                self._known_cells.setdefault(cell.key(), cell)
        # Instant cache accounting: probe the store once per cell so the
        # POST response already says how much of the grid is hot.
        store = self._open_store()
        hot = 0
        for cell in cells:
            record = store.get(cell.key())
            if (
                record is not None
                and record.get("kind") != TELEMETRY_KIND
                and record.get("status") == "ok"
            ):
                hot += 1
        _C_CACHE_HIT.value += hot
        _C_CACHE_MISS.value += len(cells) - hot
        _C_SWEEPS_POSTED.value += 1
        job.emit({"event": "accepted", "cells": len(cells), "hot": hot})
        self._queue.put(job)
        self.log(f"sweep {job.id}: accepted ({len(cells)} cells, {hot} hot)")
        return job, True

    def job(self, job_id: str) -> Optional[SweepJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def _make_executor(self) -> RemoteExecutor:
        if self.workers_listen is not None:
            host, port = self.workers_listen
            return RemoteExecutor(
                host,
                port,
                workers_hint=self.workers,
                shard_size=self.shard_size,
                local_fallback_after_s=self.local_fallback_s,
            )
        # No worker fleet: an ephemeral loopback coordinator that degrades
        # to the inline fallback immediately — results still flow through
        # FabricScheduler.take_local/record_local, keeping the dedup path.
        return RemoteExecutor(
            "127.0.0.1",
            0,
            workers_hint=self.workers,
            shard_size=self.shard_size,
            local_fallback_after_s=0.0,
        )

    def _run_job(self, job: SweepJob) -> None:
        started = time.perf_counter()
        with job.cond:
            job.status = "running"
            job.cond.notify_all()
        job.emit({"event": "started", "sweep": job.id})
        try:
            executor = self._make_executor()
        except OSError as exc:
            with job.cond:
                job.status = "failed"
                job.error = f"cannot bind workers-listen endpoint: {exc}"
                job.cond.notify_all()
            job.emit({"event": "failed", "error": job.error})
            return
        job.executor = executor
        if self.workers_listen is not None:
            self.log(
                f"sweep {job.id}: coordinator on "
                f"{executor.address[0]}:{executor.address[1]}"
            )
        try:
            with span("serve.sweep", sweep=job.id):
                outcome = run_sweep(
                    job.cells,
                    store=self._open_store(),
                    workers=self.workers,
                    backend=executor,
                    shard_size=self.shard_size,
                    observer=job.observe,
                )
            with job.cond:
                job.status = "done"
                job.duration_s = outcome.duration_s
                job.backend = outcome.backend
                job.cond.notify_all()
            job.emit(
                {
                    "event": "complete",
                    "sweep": job.id,
                    "cells": {
                        "total": outcome.total,
                        "executed": outcome.executed,
                        "cached": outcome.cached,
                        "errors": outcome.errors,
                    },
                    "duration_s": round(outcome.duration_s, 6),
                }
            )
            self.log(f"sweep {job.id}: {outcome.describe()}")
        except Exception as exc:  # noqa: BLE001 - a job must never kill the hub
            with job.cond:
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                job.duration_s = time.perf_counter() - started
                job.cond.notify_all()
            job.emit({"event": "failed", "error": job.error})
            self.log(f"sweep {job.id}: FAILED: {job.error}")
        finally:
            job.executor = None

    def _runner_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._run_job(job)

    # -- content-addressed reads -------------------------------------------

    def result(self, key: str) -> Optional[Dict[str, Any]]:
        """One record by cell key; a lost/damaged record of a known cell
        recomputes and supersedes (exactly the store's PR 9 degradation:
        a CRC-failed read is a cache miss, never a served wrong record)."""
        store = self._open_store()
        record = store.get(key)
        if record is not None:
            _C_CACHE_HIT.value += 1
            return record
        cell = self._known_cells.get(key)
        if cell is None:
            _C_CACHE_MISS.value += 1
            return None
        _C_RECOMPUTES.value += 1
        self.log(f"result {key[:12]}: store miss for a known cell, recomputing")
        with span("serve.recompute", key=key[:12]):
            fresh, _ = execute_cell(cell)
        store.put(fresh)  # newest-per-key wins: the recompute supersedes
        return fresh

    def report(
        self,
        *,
        sweep: Optional[str] = None,
        group_by: Sequence[str] = ("scenario", "adversary"),
        metrics: Optional[Sequence[str]] = None,
    ) -> Optional[Dict[str, Any]]:
        """Aggregate the store (or one sweep's cells) into a report payload.

        Cached against the store's on-disk :meth:`~ResultStore.stat_signature`
        — a repeat request over an unchanged store is a pure cache hit (no
        records re-read, no cells recomputed), and any append (this process
        or a CLI sweep on the same store) invalidates naturally.
        """
        chosen = tuple(metrics) if metrics else DEFAULT_REPORT_METRICS
        keys: Optional[frozenset] = None
        if sweep is not None:
            job = self.job(sweep)
            if job is None:
                return None
            keys = frozenset(cell.key() for cell in job.cells)
        store = self._open_store()
        cache_key = (sweep, tuple(group_by), chosen, store.stat_signature())
        with self._lock:
            cached = self._report_cache.get(cache_key)
        if cached is not None:
            _C_CACHE_HIT.value += 1
            return {**cached, "served_from_cache": True}
        _C_CACHE_MISS.value += 1
        with span("serve.report", groups=len(group_by)):
            records = cell_records(store.records())
            if keys is not None:
                records = [record for record in records if record.get("key") in keys]
            payload: Dict[str, Any] = {
                "store": self.store_path,
                "group_by": list(group_by),
                "metrics": list(chosen),
                "records": len(records),
                "groups": report_payload(records, list(group_by), list(chosen)),
            }
            if sweep is not None:
                payload["sweep"] = sweep
        with self._lock:
            if len(self._report_cache) >= 64:
                self._report_cache.clear()
            self._report_cache[cache_key] = payload
        return {**payload, "served_from_cache": False}

    def healthz(self) -> Dict[str, Any]:
        with self._lock:
            jobs = list(self._jobs.values())
        return {
            "ok": True,
            "store": self.store_path,
            "sweeps": {
                "total": len(jobs),
                "active": sum(1 for job in jobs if not job.terminal),
            },
            "workers_listen": (
                f"{self.workers_listen[0]}:{self.workers_listen[1]}"
                if self.workers_listen
                else None
            ),
        }

    # -- server lifecycle --------------------------------------------------

    def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind the HTTP server and start the runner + serving threads."""
        server = _ServeHTTPServer((host, port), _Handler)
        server.service = self
        self._server = server
        self.address = server.server_address[:2]
        self._runner = threading.Thread(
            target=self._runner_loop, name="repro-serve-runner", daemon=True
        )
        self._runner.start()
        self._server_thread = threading.Thread(
            target=server.serve_forever, name="repro-serve-http", daemon=True
        )
        self._server_thread.start()
        return self.address

    def join(self) -> None:
        """Block until the server stops (Ctrl-C propagates to the caller)."""
        thread = self._server_thread
        if thread is not None:
            while thread.is_alive():
                thread.join(timeout=0.5)

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._runner is not None:
            self._queue.put(None)
            self._runner.join(timeout=5.0)
            self._runner = None


class _ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: SweepService


# ---------------------------------------------------------------------------
# The HTTP handler.
# ---------------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    @property
    def service(self) -> SweepService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        self.service.log(f"http: {format % args}")

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    # -- plumbing ----------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        _C_REQUESTS.value += 1
        path, _, query = self.path.partition("?")
        params = urllib.parse.parse_qs(query)
        try:
            with span("serve.request", method=method, path=path.split("/")[1] or "/"):
                self._route(method, path, params)
        except SpecError as exc:
            _C_BAD_REQUESTS.value += 1
            self._send_json(400, {"error": str(exc), "field": exc.field})
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as exc:  # noqa: BLE001 - one request must not kill the server
            _C_ERRORS.value += 1
            self.service.log(f"http: 500 on {method} {path}: {exc}")
            try:
                self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            except OSError:
                self.close_connection = True

    def _route(self, method: str, path: str, params: Dict[str, List[str]]) -> None:
        parts = [part for part in path.split("/") if part]
        if method == "POST":
            if parts == ["sweeps"]:
                return self._post_sweep()
            return self._send_json(404, {"error": f"no POST route {path!r}"})
        if parts == ["healthz"]:
            return self._send_json(200, self.service.healthz())
        if parts == ["metrics"]:
            return self._get_metrics(params)
        if parts == ["report"]:
            return self._get_report(params)
        if len(parts) == 2 and parts[0] == "sweeps":
            return self._get_sweep(parts[1])
        if len(parts) == 3 and parts[0] == "sweeps" and parts[2] == "events":
            return self._stream_events(parts[1])
        if len(parts) == 2 and parts[0] == "results":
            return self._get_result(parts[1])
        self._send_json(404, {"error": f"no route {path!r}"})

    def _send_json(self, status: int, payload: Any) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Any:
        length_text = self.headers.get("Content-Length")
        if length_text is None:
            raise SpecError("POST needs a Content-Length JSON body", field="body")
        try:
            length = int(length_text)
        except ValueError:
            raise SpecError(f"bad Content-Length {length_text!r}", field="body") from None
        if length <= 0 or length > 8 * 1024 * 1024:
            raise SpecError(f"body length {length} out of range", field="body")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise SpecError(f"body is not valid JSON: {exc}", field="body") from None

    # -- routes ------------------------------------------------------------

    def _post_sweep(self) -> None:
        spec = self._read_json_body()
        job, created = self.service.submit(spec)
        snapshot = job.snapshot()
        snapshot["created"] = created
        self._send_json(201 if created else 200, snapshot)

    def _get_sweep(self, job_id: str) -> None:
        job = self.service.job(job_id)
        if job is None:
            return self._send_json(404, {"error": f"unknown sweep {job_id!r}"})
        self._send_json(200, job.snapshot())

    def _get_result(self, key: str) -> None:
        record = self.service.result(key)
        if record is None:
            return self._send_json(
                404,
                {
                    "error": f"no record for key {key!r} (POST its sweep spec "
                    "to /sweeps to compute it)",
                    "key": key,
                },
            )
        self._send_json(200, record)

    def _get_metrics(self, params: Dict[str, List[str]]) -> None:
        snapshot = _metrics.registry().snapshot()
        if params.get("format", [""])[0] == "flat":
            flat = _metrics.flatten_snapshot(snapshot)
            body = "".join(f"{name} {value}\n" for name, value in flat.items()).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self._send_json(200, snapshot)

    def _get_report(self, params: Dict[str, List[str]]) -> None:
        sweep = params.get("sweep", [None])[0]
        group_by = params.get("group_by", ["scenario,adversary"])[0]
        group_fields = [field.strip() for field in group_by.split(",") if field.strip()]
        if not group_fields:
            raise SpecError("'group_by' needs at least one field", field="group_by")
        metrics = params.get("metric") or None
        payload = self.service.report(sweep=sweep, group_by=group_fields, metrics=metrics)
        if payload is None:
            return self._send_json(404, {"error": f"unknown sweep {sweep!r}"})
        self._send_json(200, payload)

    def _stream_events(self, job_id: str) -> None:
        job = self.service.job(job_id)
        if job is None:
            return self._send_json(404, {"error": f"unknown sweep {job_id!r}"})
        _C_EVENT_STREAMS.value += 1
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def write_chunk(payload: Dict[str, Any]) -> None:
            data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            self.wfile.write(f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n")

        sent = 0
        try:
            while True:
                with job.cond:
                    while len(job.events) <= sent and not job.terminal:
                        job.cond.wait(timeout=0.5)
                    batch = job.events[sent:]
                    sent += len(batch)
                    finished = job.terminal and sent == len(job.events)
                for event in batch:
                    write_chunk(event)
                if finished:
                    write_chunk({"event": "end", "sweep": job.id, "status": job.status})
                    break
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away mid-stream
        self.close_connection = True
