"""The distributed sweep fabric: coordinator, workers, leases, heartbeats.

This module takes the sweep stack off one machine.  A
:class:`RemoteExecutor` is a :class:`~repro.experiments.executors.\
SweepExecutor` that *serves* shards instead of forking them: it binds a TCP
socket, plans shards exactly like the local sharded backend, and hands them
to whatever worker processes connect (``repro worker --connect HOST:PORT``).
Results stream back into the sweep's crash-safe
:class:`~repro.experiments.store.ResultStore` as they arrive, so
``--resume`` doubles as the recovery path for killed coordinators *and*
killed workers alike.

Failure semantics (the design inputs, not afterthoughts):

* **Heartbeats** — every worker pings the coordinator on an interval; a
  worker silent for ``heartbeat_timeout_s`` is declared dead and its shards
  are requeued.
* **Leases** — a shard assignment carries a deadline derived from its size
  (``lease_base_s + lease_cell_s * cells``).  An expired lease is requeued
  even if the worker still heartbeats (it may be wedged in a way that keeps
  threads alive), with exponential backoff between reassignments.
* **Retry + quarantine** — a shard that fails twice is split into
  single-cell shards to isolate the culprit; a cell that fails on
  ``max_cell_failures`` *distinct* workers is quarantined as a
  ``status: "error"`` record instead of being retried forever.
* **Exactly-once delivery** — reassignment means two workers may compute
  the same cell; the coordinator dedupes by cell index, so the sweep's
  result handler fires exactly once per cell (the backend-equivalence
  contract).  Duplicate results are dropped, which is safe because every
  backend produces records identical to serial execution.
* **Graceful degradation** — if no live worker exists for
  ``local_fallback_after_s``, the coordinator starts draining shards
  inline, so a sweep never hangs on an empty (or fully dead) fleet.

Wire protocol: newline-delimited JSON messages over TCP.  Cells travel as
plain JSON (:func:`cell_to_wire` / :func:`cell_from_wire` — the same
schema-stable identity that keys the result store, so a decoded cell's
``key()`` matches the coordinator's); the hash-consed run substrate is
never shipped — each worker rebuilds scenarios locally inside its own
intern pool (:func:`~repro.experiments.executors.run_shard_monitored`), per
the interning invariants.  Worker metric deltas ride back on result
messages, so sweep telemetry stays backend-identical.

The deterministic chaos harness (:mod:`repro.experiments.faults`) hooks the
worker runtime at ``worker.connect`` / ``worker.shard`` / ``worker.cell`` /
``worker.result``: tests and ``repro sweep --chaos`` script kills, hangs,
slowdowns, and dropped connections at exact points.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..obs import metrics as _metrics
from ..obs.trace import tracing_enabled
from ..simulation.interning import intern_pool
from . import faults
from .executors import ResultHandler, SweepExecutor, plan_shards, run_shard_monitored
from .runner import SweepCell, SweepError, error_record, execute_cell_inline

__all__ = [
    "FabricScheduler",
    "RemoteExecutor",
    "WorkerFailure",
    "cell_from_wire",
    "cell_to_wire",
    "read_message",
    "run_worker",
    "send_message",
]

_C_WORKERS_JOINED = _metrics.counter("remote.workers_joined")
_C_WORKERS_DEAD = _metrics.counter("remote.workers_dead")
_C_HEARTBEATS = _metrics.counter("remote.heartbeats")
_C_LEASES_GRANTED = _metrics.counter("remote.leases_granted")
_C_LEASES_EXPIRED = _metrics.counter("remote.leases_expired")
_C_SHARD_RETRIES = _metrics.counter("remote.shard_retries")
_C_RESULTS = _metrics.counter("remote.results_received")
_C_DUPLICATES = _metrics.counter("remote.duplicate_results_dropped")
_C_QUARANTINED = _metrics.counter("remote.cells_quarantined")
_C_FALLBACK_CELLS = _metrics.counter("remote.local_fallback_cells")
_C_WORKER_SHARDS = _metrics.counter("remote.worker_shards_executed")
_C_WORKER_RECONNECTS = _metrics.counter("remote.worker_reconnects")


class WorkerFailure(RuntimeError):
    """A cell was quarantined after failing on too many distinct workers."""


# ---------------------------------------------------------------------------
# Wire format: newline-delimited JSON messages, JSON-native cells.
# ---------------------------------------------------------------------------


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one message (a single line of JSON) to a socket."""
    sock.sendall(json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n")


def read_message(reader) -> Optional[Dict[str, Any]]:
    """Read one message from a buffered reader; ``None`` on EOF.

    Raises ``TimeoutError`` when the underlying socket has a timeout and it
    elapses; malformed lines raise ``ValueError`` (a peer speaking another
    protocol should fail loudly, not silently stall).
    """
    line = reader.readline()
    if not line:
        return None
    message = json.loads(line)
    if not isinstance(message, dict):
        raise ValueError(f"expected a JSON object per line, got {type(message).__name__}")
    return message


def cell_to_wire(cell: SweepCell) -> Dict[str, Any]:
    """A cell as plain JSON (stable under round-trips: ``key()`` preserved)."""
    return {
        "scenario": cell.scenario,
        "params": [[name, value] for name, value in cell.params],
        "adversary": cell.adversary,
        "seed": cell.seed,
        "analyses": list(cell.analyses),
        "horizon": cell.horizon,
    }


def cell_from_wire(data: Dict[str, Any]) -> SweepCell:
    """Rebuild a cell from its wire form.

    No registry validation: the coordinator already resolved the cell, and a
    worker may legitimately execute cells for stores it did not plan.  The
    run substrate is *not* decoded here — workers re-intern everything
    locally when they build and run the scenario.
    """
    return SweepCell(
        scenario=str(data["scenario"]),
        params=tuple((str(name), value) for name, value in data["params"]),
        adversary=str(data["adversary"]),
        seed=int(data["seed"]),
        analyses=tuple(str(name) for name in data.get("analyses", ())),
        horizon=data.get("horizon"),
    )


# ---------------------------------------------------------------------------
# The scheduler: pure lease/heartbeat/retry state, injected time.
# ---------------------------------------------------------------------------


@dataclass
class _Shard:
    cells: List[Tuple[int, SweepCell]]
    ready_at: float = 0.0
    failures: int = 0
    failed_workers: Set[str] = field(default_factory=set)


@dataclass
class _Lease:
    lease_id: str
    worker: str
    shard: _Shard
    deadline: float


@dataclass
class _Worker:
    worker_id: str
    last_seen: float
    alive: bool = True
    generation: int = 0
    failures: int = 0
    completed_cells: int = 0
    leases: Set[str] = field(default_factory=set)


class FabricScheduler:
    """Lease-based shard assignment with liveness, backoff, and quarantine.

    Pure state machine: every method takes ``now`` (a monotonic timestamp)
    so tests drive it with a fake clock, and it performs no I/O — the
    coordinator owns sockets and locking.  Invariants:

    * every pending cell index is, at all times, in exactly one of: the
      shard queue, an active lease, ``done``, or ``quarantined``;
    * ``complete``/``record_local`` return each index at most once ever
      (duplicate results from reassigned shards are dropped);
    * a failed shard (dead worker, expired lease, severed connection)
      requeues with exponential backoff, splits into single-cell shards
      after two failures, and sheds cells that have failed on
      ``max_cell_failures`` distinct workers into ``quarantined``.
    """

    def __init__(
        self,
        pending: Sequence[Tuple[int, SweepCell]],
        *,
        workers_hint: int = 2,
        shard_size: Optional[int] = None,
        lease_base_s: float = 10.0,
        lease_cell_s: float = 5.0,
        heartbeat_timeout_s: float = 5.0,
        max_cell_failures: int = 3,
        backoff_base_s: float = 0.25,
        backoff_max_s: float = 5.0,
    ):
        if lease_base_s <= 0 or lease_cell_s < 0:
            raise SweepError("lease budgets must be positive")
        if heartbeat_timeout_s <= 0:
            raise SweepError("heartbeat timeout must be positive")
        if max_cell_failures < 1:
            raise SweepError("max cell failures must be >= 1")
        self.lease_base_s = lease_base_s
        self.lease_cell_s = lease_cell_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.max_cell_failures = max_cell_failures
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self._cells: Dict[int, SweepCell] = {index: cell for index, cell in pending}
        self._queue: List[_Shard] = [
            _Shard(cells=list(shard))
            for shard in plan_shards(pending, workers=max(1, workers_hint), shard_size=shard_size)
        ]
        self._leases: Dict[str, _Lease] = {}
        self._workers: Dict[str, _Worker] = {}
        self._done: Set[int] = set()
        self._quarantined: Set[int] = set()
        #: index -> distinct workers whose assignment of this cell failed.
        self._cell_failures: Dict[int, Set[str]] = {}
        self._lease_seq = 0
        self.counts: Dict[str, int] = {}
        self.events: List[Dict[str, Any]] = []

    # -- accounting --------------------------------------------------------

    def _count(self, key: str, amount: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + amount

    def _event(self, now: float, event: str, **extra: Any) -> None:
        if len(self.events) < 500:  # bounded: telemetry, not a log
            self.events.append({"t": round(now, 3), "event": event, **extra})

    @property
    def total(self) -> int:
        return len(self._cells)

    @property
    def finished(self) -> bool:
        return len(self._done) + len(self._quarantined) == len(self._cells)

    @property
    def outstanding(self) -> int:
        return len(self._cells) - len(self._done) - len(self._quarantined)

    def live_workers(self, now: float) -> int:
        return sum(
            1
            for worker in self._workers.values()
            if worker.alive and now - worker.last_seen <= self.heartbeat_timeout_s
        )

    # -- worker lifecycle --------------------------------------------------

    def _touch(self, worker_id: str, now: float) -> _Worker:
        worker = self._workers.get(worker_id)
        if worker is None:
            worker = self._workers[worker_id] = _Worker(worker_id=worker_id, last_seen=now)
            _C_WORKERS_JOINED.value += 1
            self._count("workers_joined")
            self._event(now, "worker-joined", worker=worker_id)
        worker.last_seen = now
        if not worker.alive:
            worker.alive = True
            self._count("workers_rejoined")
            self._event(now, "worker-rejoined", worker=worker_id)
        return worker

    def hello(self, worker_id: str, now: float) -> int:
        """Register (or revive) a worker; returns its connection generation."""
        worker = self._touch(worker_id, now)
        worker.generation += 1
        return worker.generation

    def heartbeat(self, worker_id: str, now: float) -> None:
        self._touch(worker_id, now)
        _C_HEARTBEATS.value += 1
        self._count("heartbeats")

    def disconnect(
        self, worker_id: str, generation: int, now: float
    ) -> List[Tuple[int, SweepCell, int]]:
        """A worker's connection closed: kill it (if this is its live link).

        ``generation`` guards reconnecting workers — a stale connection's
        teardown must not kill the fresh session that already said hello.
        Returns the cells newly quarantined by requeueing its leases.
        """
        worker = self._workers.get(worker_id)
        if worker is None or worker.generation != generation or not worker.alive:
            return []
        return self._kill_worker(worker, now, reason="disconnect")

    def _kill_worker(
        self, worker: _Worker, now: float, reason: str
    ) -> List[Tuple[int, SweepCell, int]]:
        worker.alive = False
        _C_WORKERS_DEAD.value += 1
        self._count("workers_dead")
        self._event(now, "worker-dead", worker=worker.worker_id, reason=reason)
        quarantined: List[Tuple[int, SweepCell, int]] = []
        for lease_id in list(worker.leases):
            lease = self._leases.get(lease_id)
            if lease is not None:
                quarantined.extend(self._fail_lease(lease, now, reason=reason))
        return quarantined

    # -- assignment --------------------------------------------------------

    def try_assign(self, worker_id: str, now: float) -> Optional[Dict[str, Any]]:
        """Grant the next ready shard to a worker, as an ``assign`` message.

        Shards that already failed on this worker are offered to it only
        when nothing else is ready (a sole surviving worker must still be
        able to finish the sweep).
        """
        worker = self._touch(worker_id, now)
        choice: Optional[int] = None
        fallback: Optional[int] = None
        for position, shard in enumerate(self._queue):
            if shard.ready_at > now:
                continue
            if worker_id in shard.failed_workers:
                if fallback is None:
                    fallback = position
                continue
            choice = position
            break
        if choice is None:
            choice = fallback
        if choice is None:
            return None
        shard = self._queue.pop(choice)
        self._lease_seq += 1
        lease_id = f"lease-{self._lease_seq}"
        deadline = now + self.lease_base_s + self.lease_cell_s * len(shard.cells)
        self._leases[lease_id] = _Lease(
            lease_id=lease_id, worker=worker_id, shard=shard, deadline=deadline
        )
        worker.leases.add(lease_id)
        _C_LEASES_GRANTED.value += 1
        self._count("leases_granted")
        return {
            "type": "assign",
            "lease": lease_id,
            "deadline_s": round(deadline - now, 3),
            "cells": [
                {"index": index, "cell": cell_to_wire(cell)}
                for index, cell in shard.cells
            ],
        }

    # -- results -----------------------------------------------------------

    def complete(
        self,
        worker_id: str,
        lease_id: Optional[str],
        results: Sequence[Tuple[int, Dict[str, Any]]],
        now: float,
    ) -> List[Tuple[int, SweepCell, Dict[str, Any]]]:
        """Accept a worker's results; return only the first-seen cells.

        Results for unknown/expired leases are still accepted (cell-level
        dedup makes that safe, and the work is already paid for); duplicates
        and results for quarantined cells are dropped so the handler fires
        exactly once per cell.
        """
        worker = self._touch(worker_id, now)
        _C_RESULTS.value += 1
        self._count("results_received")
        lease = self._leases.pop(lease_id, None) if lease_id else None
        if lease is not None:
            self._workers[lease.worker].leases.discard(lease.lease_id)
        fresh: List[Tuple[int, SweepCell, Dict[str, Any]]] = []
        for index, record in results:
            if index in self._done or index in self._quarantined or index not in self._cells:
                _C_DUPLICATES.value += 1
                self._count("duplicates_dropped")
                continue
            self._done.add(index)
            worker.completed_cells += 1
            fresh.append((index, self._cells[index], record))
        return fresh

    # -- failure handling --------------------------------------------------

    def _fail_lease(
        self, lease: _Lease, now: float, reason: str
    ) -> List[Tuple[int, SweepCell, int]]:
        self._leases.pop(lease.lease_id, None)
        worker = self._workers.get(lease.worker)
        if worker is not None:
            worker.leases.discard(lease.lease_id)
            worker.failures += 1
        shard = lease.shard
        shard.failures += 1
        shard.failed_workers.add(lease.worker)
        _C_SHARD_RETRIES.value += 1
        self._count("shard_retries")
        self._event(now, "shard-requeued", worker=lease.worker, reason=reason,
                    cells=len(shard.cells), failures=shard.failures)
        quarantined: List[Tuple[int, SweepCell, int]] = []
        keep: List[Tuple[int, SweepCell]] = []
        for index, cell in shard.cells:
            if index in self._done or index in self._quarantined:
                continue
            failed_on = self._cell_failures.setdefault(index, set())
            failed_on.add(lease.worker)
            if len(failed_on) >= self.max_cell_failures:
                self._quarantined.add(index)
                _C_QUARANTINED.value += 1
                self._count("cells_quarantined")
                self._event(now, "cell-quarantined", index=index,
                            distinct_workers=len(failed_on))
                quarantined.append((index, cell, len(failed_on)))
            else:
                keep.append((index, cell))
        if keep:
            backoff = min(
                self.backoff_max_s,
                self.backoff_base_s * (2 ** max(0, shard.failures - 1)),
            )
            ready_at = now + backoff
            if len(keep) > 1 and shard.failures >= 2:
                # Split to isolate a poison cell: from here each cell fails
                # (and is quarantined) on its own.
                for index, cell in keep:
                    self._queue.append(
                        _Shard(
                            cells=[(index, cell)],
                            ready_at=ready_at,
                            failures=shard.failures,
                            failed_workers=set(shard.failed_workers),
                        )
                    )
            else:
                shard.cells = keep
                shard.ready_at = ready_at
                self._queue.append(shard)
        return quarantined

    def expire(self, now: float) -> List[Tuple[int, SweepCell, int]]:
        """Advance liveness: dead workers and expired leases requeue shards.

        Returns cells newly quarantined in the process (the coordinator
        turns them into error records).  This is the method that guarantees
        a sweep never waits past a lease deadline: it runs on every
        coordinator tick regardless of socket traffic.
        """
        quarantined: List[Tuple[int, SweepCell, int]] = []
        for worker in self._workers.values():
            if worker.alive and now - worker.last_seen > self.heartbeat_timeout_s:
                quarantined.extend(
                    self._kill_worker(worker, now, reason="missed-heartbeats")
                )
        for lease in list(self._leases.values()):
            if now > lease.deadline:
                _C_LEASES_EXPIRED.value += 1
                self._count("leases_expired")
                self._event(now, "lease-expired", worker=lease.worker,
                            lease=lease.lease_id)
                quarantined.extend(self._fail_lease(lease, now, reason="lease-expired"))
        return quarantined

    # -- local fallback ----------------------------------------------------

    def take_local(self, now: float) -> Optional[List[Tuple[int, SweepCell]]]:
        """Pop one queued shard for inline execution (ignores backoff)."""
        if not self._queue:
            return None
        position = min(
            range(len(self._queue)), key=lambda i: self._queue[i].ready_at
        )
        shard = self._queue.pop(position)
        cells = [
            (index, cell)
            for index, cell in shard.cells
            if index not in self._done and index not in self._quarantined
        ]
        return cells or None

    def record_local(
        self, results: Sequence[Tuple[int, SweepCell, Dict[str, Any]]]
    ) -> List[Tuple[int, SweepCell, Dict[str, Any]]]:
        """Register inline-executed cells (same dedup as :meth:`complete`)."""
        fresh: List[Tuple[int, SweepCell, Dict[str, Any]]] = []
        for index, cell, record in results:
            if index in self._done or index in self._quarantined:
                self._count("duplicates_dropped")
                continue
            self._done.add(index)
            _C_FALLBACK_CELLS.value += 1
            self._count("local_fallback_cells")
            fresh.append((index, cell, record))
        return fresh

    # -- telemetry ---------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Liveness and retry accounting for the sweep telemetry record."""
        return {
            "backend": "remote",
            "cells": len(self._cells),
            "completed": len(self._done),
            "quarantined": len(self._quarantined),
            "counters": dict(self.counts),
            "workers": {
                worker_id: {
                    "alive": worker.alive,
                    "failures": worker.failures,
                    "completed_cells": worker.completed_cells,
                }
                for worker_id, worker in self._workers.items()
            },
            "events": list(self.events),
        }


# ---------------------------------------------------------------------------
# The coordinator.
# ---------------------------------------------------------------------------

#: How long a connection reader blocks before re-checking the stop flag.
_CONN_READ_TIMEOUT_S = 0.5


class RemoteExecutor(SweepExecutor):
    """Serve sweep shards to remote workers over a socket wire protocol.

    Construction binds the listening socket immediately (``port=0`` picks an
    ephemeral port), so :attr:`address` is known before :meth:`execute`
    starts and workers may connect early — they poll for work, and the
    coordinator answers ``wait`` until the sweep begins.  One executor
    serves one ``execute()`` call; the server socket closes when it returns.

    All scheduler state is guarded by one lock; connection threads only
    translate messages into scheduler calls and queue deliveries — the
    sweep's result handler runs exclusively on the :meth:`execute` thread,
    which also enforces lease deadlines on every tick (so a hung fleet can
    never stall the sweep past its deadlines) and degrades to inline
    execution when no live workers remain.
    """

    name = "remote"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers_hint: int = 2,
        shard_size: Optional[int] = None,
        lease_base_s: float = 10.0,
        lease_cell_s: float = 5.0,
        heartbeat_timeout_s: float = 5.0,
        max_cell_failures: int = 3,
        backoff_base_s: float = 0.25,
        backoff_max_s: float = 5.0,
        local_fallback_after_s: Optional[float] = 30.0,
        poll_s: float = 0.05,
    ):
        if workers_hint < 1:
            raise SweepError(f"workers hint must be >= 1, got {workers_hint}")
        self.workers_hint = workers_hint
        self.shard_size = shard_size
        self.lease_base_s = lease_base_s
        self.lease_cell_s = lease_cell_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.max_cell_failures = max_cell_failures
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.local_fallback_after_s = local_fallback_after_s
        self.poll_s = poll_s
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(64)
        self._server.settimeout(0.2)
        self.address: Tuple[str, int] = self._server.getsockname()[:2]
        self._scheduler: Optional[FabricScheduler] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._conns: List[socket.socket] = []
        self._threads: List[threading.Thread] = []

    # -- public surface ----------------------------------------------------

    def execute(self, pending: Sequence[Tuple[int, SweepCell]], handle: ResultHandler) -> None:
        try:
            if pending:
                self._execute(pending, handle)
        finally:
            self._shutdown()
            if self._scheduler is not None:
                # Flushed once, after shutdown: connection teardown records
                # the final worker-dead events.
                for event in self._scheduler.events:
                    self.worker_telemetry.add_worker_event(event)

    def fabric_summary(self) -> Dict[str, Any]:
        summary = dict(self.__dict__.get("_fabric") or {})
        if self._scheduler is not None:
            summary.update(self._scheduler.summary())
        return summary

    # -- coordinator main loop ---------------------------------------------

    def _execute(self, pending: Sequence[Tuple[int, SweepCell]], handle: ResultHandler) -> None:
        scheduler = FabricScheduler(
            pending,
            workers_hint=self.workers_hint,
            shard_size=self.shard_size,
            lease_base_s=self.lease_base_s,
            lease_cell_s=self.lease_cell_s,
            heartbeat_timeout_s=self.heartbeat_timeout_s,
            max_cell_failures=self.max_cell_failures,
            backoff_base_s=self.backoff_base_s,
            backoff_max_s=self.backoff_max_s,
        )
        self._scheduler = scheduler
        deliveries: "queue.Queue[Tuple[str, Any]]" = queue.Queue()
        accept_thread = threading.Thread(
            target=self._accept_loop,
            args=(scheduler, deliveries),
            name="repro-coordinator-accept",
            daemon=True,
        )
        accept_thread.start()
        no_workers_since: Optional[float] = time.monotonic()
        while True:
            with self._lock:
                finished = scheduler.finished
            if finished:
                break
            self._drain(deliveries, handle)
            now = time.monotonic()
            with self._lock:
                quarantined = scheduler.expire(now)
                live = scheduler.live_workers(now)
            self._emit_quarantined(quarantined, handle)
            if live:
                no_workers_since = None
            else:
                if no_workers_since is None:
                    no_workers_since = now
                if (
                    self.local_fallback_after_s is not None
                    and now - no_workers_since >= self.local_fallback_after_s
                ):
                    self._run_local_shard(scheduler, handle)
                    continue
            try:
                event = deliveries.get(timeout=self.poll_s)
            except queue.Empty:
                continue
            self._handle_delivery(event, handle)
        self._drain(deliveries, handle)

    def _drain(self, deliveries: "queue.Queue[Tuple[str, Any]]", handle: ResultHandler) -> None:
        while True:
            try:
                event = deliveries.get_nowait()
            except queue.Empty:
                return
            self._handle_delivery(event, handle)

    def _handle_delivery(self, event: Tuple[str, Any], handle: ResultHandler) -> None:
        kind, value = event
        if kind == "fresh":
            for index, cell, record in value:
                handle(index, cell, record)
        elif kind == "payload":
            payload, cells = value
            self._absorb_worker_payload(payload, cells=cells)
        elif kind == "quarantined":
            self._emit_quarantined(value, handle)

    def _emit_quarantined(
        self,
        quarantined: Sequence[Tuple[int, SweepCell, int]],
        handle: ResultHandler,
    ) -> None:
        for index, cell, distinct in quarantined:
            handle(
                index,
                cell,
                error_record(
                    cell,
                    WorkerFailure(
                        f"cell failed on {distinct} distinct worker(s); quarantined"
                    ),
                ),
            )

    def _run_local_shard(self, scheduler: FabricScheduler, handle: ResultHandler) -> None:
        """Graceful degradation: drain one shard inline (no live workers)."""
        with self._lock:
            shard = scheduler.take_local(time.monotonic())
        if not shard:
            return
        started = time.perf_counter()
        results: List[Tuple[int, SweepCell, Dict[str, Any]]] = []
        with intern_pool():
            base_cache: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], Any] = {}
            for index, cell in shard:
                try:
                    record, _ = execute_cell_inline(cell, base_cache=base_cache)
                except Exception as exc:  # noqa: BLE001 - per-cell isolation
                    record = error_record(cell, exc)
                results.append((index, cell, record))
        with self._lock:
            fresh = scheduler.record_local(results)
        # In-process execution: metrics already landed in the parent
        # registry, so record shard wall-time metadata only.
        self.worker_telemetry.add_shard(
            len(shard), time.perf_counter() - started, in_process=True, local_fallback=True
        )
        self._bump("local_fallback_shards")
        for index, cell, record in fresh:
            handle(index, cell, record)

    # -- connection handling -----------------------------------------------

    def _accept_loop(
        self, scheduler: FabricScheduler, deliveries: "queue.Queue[Tuple[str, Any]]"
    ) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # server socket closed: coordinator shutting down
            conn.settimeout(_CONN_READ_TIMEOUT_S)
            with self._lock:
                self._conns.append(conn)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, scheduler, deliveries),
                name="repro-coordinator-conn",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _serve_connection(
        self,
        conn: socket.socket,
        scheduler: FabricScheduler,
        deliveries: "queue.Queue[Tuple[str, Any]]",
    ) -> None:
        reader = conn.makefile("rb")
        worker_id: Optional[str] = None
        generation = 0
        try:
            while not self._stop.is_set():
                try:
                    message = read_message(reader)
                except (TimeoutError, socket.timeout):
                    continue
                except (OSError, ValueError):
                    break
                if message is None:
                    break  # EOF: the worker hung up
                mtype = message.get("type")
                now = time.monotonic()
                response: Optional[Dict[str, Any]] = None
                with self._lock:
                    if mtype == "hello":
                        worker_id = str(message.get("worker") or f"anon-{id(conn):x}")
                        generation = scheduler.hello(worker_id, now)
                    elif mtype == "heartbeat":
                        scheduler.heartbeat(str(message.get("worker")), now)
                    elif mtype == "ready":
                        wid = str(message.get("worker"))
                        if scheduler.finished:
                            response = {"type": "shutdown"}
                        else:
                            response = scheduler.try_assign(wid, now) or {
                                "type": "wait",
                                "poll_s": max(self.poll_s, 0.05),
                            }
                    elif mtype == "result":
                        wid = str(message.get("worker"))
                        results = [
                            (int(entry["index"]), entry["record"])
                            for entry in message.get("results", ())
                            if isinstance(entry, dict)
                        ]
                        fresh = scheduler.complete(wid, message.get("lease"), results, now)
                        payload = {
                            "metrics": message.get("metrics"),
                            "wall_s": message.get("wall_s"),
                            "trace": message.get("trace"),
                        }
                        deliveries.put(("payload", (payload, len(results))))
                        if fresh:
                            deliveries.put(("fresh", fresh))
                if response is not None:
                    try:
                        send_message(conn, response)
                    except OSError:
                        break
                    if response.get("type") == "shutdown":
                        break
        finally:
            try:
                reader.close()
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
            if worker_id is not None:
                now = time.monotonic()
                with self._lock:
                    quarantined = scheduler.disconnect(worker_id, generation, now)
                if quarantined:
                    deliveries.put(("quarantined", quarantined))

    def _shutdown(self) -> None:
        self._stop.set()
        try:
            self._server.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                send_message(conn, {"type": "shutdown"})
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=1.0)


# ---------------------------------------------------------------------------
# The worker runtime (`repro worker --connect HOST:PORT`).
# ---------------------------------------------------------------------------


def _parse_address(text: str) -> Tuple[str, int]:
    host, _, port_text = text.rpartition(":")
    if not host or not port_text:
        raise SweepError(f"expected HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise SweepError(f"expected a numeric port in {text!r}")
    return host, port


def _connect_with_retry(
    address: Tuple[str, int], deadline: float, retry_s: float = 0.2
) -> Optional[socket.socket]:
    """Dial the coordinator, retrying until ``deadline`` (monotonic)."""
    while True:
        try:
            sock = socket.create_connection(address, timeout=2.0)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock
        except OSError:
            if time.monotonic() >= deadline:
                return None
            time.sleep(retry_s)


def run_worker(
    connect: str,
    *,
    worker_id: Optional[str] = None,
    heartbeat_s: float = 1.0,
    poll_s: float = 0.1,
    faults_spec: Optional[str] = None,
    connect_timeout_s: float = 30.0,
    log: Optional[Callable[[str], None]] = None,
    snapshot_path: Optional[str] = None,
) -> int:
    """The worker main loop: connect, heartbeat, execute leases, repeat.

    Returns 0 when the coordinator sends ``shutdown``, 1 when the
    coordinator becomes unreachable for ``connect_timeout_s``.  The process
    is marked as a fault-injection worker, so ``--faults`` (or the
    ``REPRO_FAULTS`` environment) scripts kills, hangs, slowdowns, and
    dropped connections deterministically; a dropped connection (injected or
    real) reconnects under the same worker id and the lease machinery
    re-covers whatever was in flight.

    ``snapshot_path`` warm-starts the worker from a snapshot written by
    ``repro store snapshot`` (:mod:`repro.experiments.snapshot`): the intern
    pool is pre-populated and base scenarios pre-built before the first
    lease, so first-shard latency on a big sweep drops from a rebuild to a
    file load.  A missing or corrupt snapshot is reported and ignored —
    warm-start is an optimisation, never a correctness dependency.
    """
    faults.mark_worker(faults_spec)
    address = _parse_address(connect)
    wid = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    notify = log or (lambda message: None)
    base_cache = None
    if snapshot_path is not None:
        from .snapshot import SnapshotError, load_snapshot

        try:
            base_cache = load_snapshot(snapshot_path)
            notify(f"worker {wid}: warm start ({len(base_cache)} bases)")
        except SnapshotError as exc:
            notify(f"worker {wid}: snapshot ignored: {exc}")
    deadline = time.monotonic() + connect_timeout_s
    first_session = True
    while True:
        sock = _connect_with_retry(address, deadline)
        if sock is None:
            notify(f"worker {wid}: coordinator unreachable, giving up")
            return 1
        if not first_session:
            _C_WORKER_RECONNECTS.value += 1
        first_session = False
        outcome = _worker_session(
            sock,
            wid,
            heartbeat_s=heartbeat_s,
            poll_s=poll_s,
            notify=notify,
            base_cache=base_cache,
        )
        if outcome == "shutdown":
            notify(f"worker {wid}: shutdown received, exiting")
            return 0
        # Severed connection (injected drop, coordinator restart, network
        # blip): re-dial inside a fresh retry window.
        deadline = time.monotonic() + connect_timeout_s


def _worker_session(
    sock: socket.socket,
    wid: str,
    *,
    heartbeat_s: float,
    poll_s: float,
    notify: Callable[[str], None],
    base_cache: Optional[Dict[Any, Any]] = None,
) -> str:
    """One connection's lifetime; returns ``"shutdown"`` or ``"reconnect"``."""
    write_lock = threading.Lock()
    stop_heartbeats = threading.Event()

    def send(message: Dict[str, Any]) -> None:
        with write_lock:
            send_message(sock, message)

    def heartbeat_loop() -> None:
        while not stop_heartbeats.wait(heartbeat_s):
            if faults.hang_active():
                continue  # a hung process does not heartbeat
            try:
                send({"type": "heartbeat", "worker": wid})
            except OSError:
                return

    reader = sock.makefile("rb")
    sock.settimeout(max(2.0, heartbeat_s * 3))
    heartbeat_thread = threading.Thread(
        target=heartbeat_loop, name="repro-worker-heartbeat", daemon=True
    )
    try:
        try:
            faults.fire("worker.connect")
            send({"type": "hello", "worker": wid, "pid": os.getpid()})
        except (OSError, faults.DropConnection):
            return "reconnect"
        heartbeat_thread.start()
        while True:
            try:
                send({"type": "ready", "worker": wid})
            except OSError:
                return "reconnect"
            try:
                message = read_message(reader)
            except (TimeoutError, socket.timeout):
                continue  # coordinator busy: re-announce readiness
            except (OSError, ValueError):
                return "reconnect"
            if message is None:
                return "reconnect"
            mtype = message.get("type")
            if mtype == "shutdown":
                return "shutdown"
            if mtype == "wait":
                time.sleep(float(message.get("poll_s") or poll_s))
                continue
            if mtype != "assign":
                continue
            entries = message.get("cells", ())
            indices = [int(entry["index"]) for entry in entries]
            cells = [cell_from_wire(entry["cell"]) for entry in entries]
            notify(f"worker {wid}: lease {message.get('lease')} ({len(cells)} cells)")
            try:
                # A warm-started worker keeps its snapshot-populated process
                # pool (fresh_pool=False); cold workers scope a pool per
                # shard as before.  Results are identical either way.
                payload = run_shard_monitored(
                    cells, base_cache=base_cache, fresh_pool=base_cache is None
                )
                _C_WORKER_SHARDS.value += 1
                faults.fire("worker.result")
                send(
                    {
                        "type": "result",
                        "worker": wid,
                        "lease": message.get("lease"),
                        "wall_s": payload["wall_s"],
                        "metrics": payload["metrics"],
                        "trace": payload["trace"] if tracing_enabled() else [],
                        "results": [
                            {"index": index, "record": record}
                            for index, record in zip(indices, payload["records"])
                        ],
                    }
                )
            except faults.DropConnection:
                return "reconnect"
            except OSError:
                return "reconnect"
    finally:
        stop_heartbeats.set()
        try:
            reader.close()
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass
