"""Shared aggregation for ``repro report`` (text, JSON, and HTML surfaces).

Historically the report flattened analysis results with a *numeric-only*
walk, so non-numeric fields — achievability booleans rendered as labels,
role names, status strings — silently vanished from every table.  This
module is the fix and the single source of truth for all report formats:

* :func:`flatten_scalars` keeps **every** scalar leaf: numbers as floats,
  booleans as booleans, strings as strings, ``None`` as ``None``, and lists
  of scalars by index (``path.0``, ``path.1``, ...);
* :func:`aggregate_metric` summarises one flattened column per group —
  numerically (``mean/min/max/n``) when every observed value is a number,
  categorically (value counts) otherwise, so a boolean or label column
  reports ``True:3 False:1`` instead of disappearing.

The store holds more than cells: per-sweep telemetry records ride in the
same JSONL file (``kind="sweep_telemetry"``), and the invariant is that they
never masquerade as cells in any aggregate.  :func:`cell_records` is the one
place the filter lives for the report surfaces, and :func:`group_records`
additionally drops telemetry defensively so no direct caller can regress the
invariant by skipping the pre-filter.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .runner import TELEMETRY_KIND

__all__ = [
    "DEFAULT_REPORT_METRICS",
    "aggregate_metric",
    "cell_records",
    "discover_metrics",
    "flatten_scalars",
    "format_aggregate",
    "group_records",
    "report_payload",
]

#: Metrics aggregated when none are requested explicitly (shared by
#: ``repro report`` and the serve ``/report`` endpoint).  Mixes numeric
#: columns (mean/min/max) with boolean/label columns (value counts) — the
#: latter were silently dropped before the report grew a categorical
#: aggregation path.
DEFAULT_REPORT_METRICS = (
    "summary.sends",
    "summary.deliveries",
    "bounds_graph.edges",
    "coordination.achieved_margin",
    "coordination.applicable",
    "coordination.go_sender",
)


def cell_records(
    records: Sequence[Mapping[str, Any]], require_ok: bool = True
) -> List[Mapping[str, Any]]:
    """Only the sweep *cells* of a store scan: telemetry records never pass.

    With ``require_ok`` (the default for report tables) error cells are
    dropped too; ``require_ok=False`` keeps them for surfaces that show
    failures but must still exclude telemetry.
    """
    out: List[Mapping[str, Any]] = []
    for record in records:
        if record.get("kind") == TELEMETRY_KIND:
            continue
        if require_ok and record.get("status") != "ok":
            continue
        out.append(record)
    return out


def flatten_scalars(value: Any, prefix: str = "") -> Dict[str, Any]:
    """Flatten nested mappings/sequences into dotted-path scalar leaves.

    Every scalar survives: numbers become floats, booleans stay booleans,
    strings stay strings, ``None`` stays ``None``.  Lists and tuples flatten
    by index.  Unknown leaf types degrade to ``repr`` (still visible, never
    dropped).
    """
    flat: Dict[str, Any] = {}
    _flatten_into(prefix, value, flat)
    return flat


def _flatten_into(prefix: str, value: Any, into: Dict[str, Any]) -> None:
    if isinstance(value, Mapping):
        for key, inner in value.items():
            _flatten_into(f"{prefix}.{key}" if prefix else str(key), inner, into)
    elif isinstance(value, (list, tuple)):
        for index, inner in enumerate(value):
            _flatten_into(f"{prefix}.{index}" if prefix else str(index), inner, into)
    elif isinstance(value, bool) or value is None or isinstance(value, str):
        into[prefix] = value
    elif isinstance(value, (int, float)):
        into[prefix] = float(value)
    else:
        into[prefix] = repr(value)


def group_records(
    records: Sequence[Mapping[str, Any]],
    group_fields: Sequence[str],
    source: str = "analyses",
) -> Dict[Tuple[str, ...], List[Dict[str, Any]]]:
    """Bucket records by their group-field values; rows are flattened leaves.

    Telemetry records are skipped even if a caller forgot
    :func:`cell_records`: a ``sweep_telemetry`` record carries no analyses,
    and counting it as a cell would corrupt every ``cells`` column.
    """
    groups: Dict[Tuple[str, ...], List[Dict[str, Any]]] = {}
    for record in records:
        if record.get("kind") == TELEMETRY_KIND:
            continue
        group = tuple(str(record.get(field, "?")) for field in group_fields)
        groups.setdefault(group, []).append(flatten_scalars(record.get(source, {})))
    return groups


def aggregate_metric(
    rows: Sequence[Mapping[str, Any]], metric: str
) -> Optional[Dict[str, Any]]:
    """Summarise one metric column across a group's rows.

    Returns ``None`` when no row carries the metric.  All-numeric columns
    (booleans excluded — ``True`` is a label here, not ``1.0``) aggregate to
    ``{"mean", "min", "max", "n"}``; anything else aggregates to value
    counts ``{"counts": {...}, "n"}`` with deterministic (sorted) count keys.
    """
    values = [row[metric] for row in rows if metric in row]
    if not values:
        return None
    if all(isinstance(v, float) and not isinstance(v, bool) for v in values):
        return {
            "mean": sum(values) / len(values),
            "min": min(values),
            "max": max(values),
            "n": len(values),
        }
    counts: Dict[str, int] = {}
    for value in values:
        label = str(value)
        counts[label] = counts.get(label, 0) + 1
    return {"counts": dict(sorted(counts.items())), "n": len(values)}


def format_aggregate(summary: Optional[Mapping[str, Any]]) -> str:
    """One table cell: ``mean/min/max`` for numbers, ``label:n`` for counts."""
    if summary is None:
        return "-"
    if "mean" in summary:
        return f"{summary['mean']:.2f}/{summary['min']:g}/{summary['max']:g}"
    return " ".join(f"{label}:{n}" for label, n in summary["counts"].items())


def report_payload(
    records: Sequence[Mapping[str, Any]],
    group_fields: Sequence[str],
    metrics: Optional[Sequence[str]] = None,
) -> List[Dict[str, Any]]:
    """The machine-readable report: one dict per group, sorted by group.

    Each entry carries the group-field values, the ``cells`` count, and one
    :func:`aggregate_metric` summary per requested metric (absent metrics
    are omitted, not ``None``-padded).  This is the single shape behind
    ``repro report --json`` and the serve ``/report`` endpoint, so the two
    surfaces can never drift.
    """
    chosen = list(metrics) if metrics else list(DEFAULT_REPORT_METRICS)
    groups = group_records(records, group_fields)
    payload: List[Dict[str, Any]] = []
    for group, rows in sorted(groups.items()):
        entry: Dict[str, Any] = dict(zip(group_fields, group))
        entry["cells"] = len(rows)
        for metric in chosen:
            summary = aggregate_metric(rows, metric)
            if summary is not None:
                entry[metric] = summary
        payload.append(entry)
    return payload


def discover_metrics(
    groups: Mapping[Tuple[str, ...], Sequence[Mapping[str, Any]]],
) -> List[str]:
    """Every flattened metric path present in any row, sorted."""
    names: set = set()
    for rows in groups.values():
        for row in rows:
            names.update(row)
    return sorted(names)
