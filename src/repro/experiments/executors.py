"""Pluggable execution backends for the sweep runner.

:func:`repro.experiments.runner.run_sweep` separates *what* to run (the cache
scan against the result store) from *how* to run it (this module).  A backend
is a :class:`SweepExecutor`: it receives the pending ``(index, cell)`` pairs
and must invoke the result handler exactly once per cell, in completion
order, with either the cell's result record or an error record.

Four backends ship:

* :class:`SerialExecutor` — in-process, cell by cell.  No pool spawn cost,
  so it is the right choice for single-worker runs and tiny sweeps.
* :class:`ProcessExecutor` — one :class:`~concurrent.futures.\
ProcessPoolExecutor` task per cell (the classic behaviour).  Maximum
  scheduling freedom, but every cell pays task dispatch, a fresh intern
  pool, and scenario construction on its own.
* :class:`ChunkedShardExecutor` — groups cells into per-worker *shards* and
  dispatches whole shards.  Cells are grouped by their shard signature
  (scenario name plus the parameters flagged ``shard_key=True`` on their
  :class:`~repro.scenarios.base.ParamSpec`), so one worker task runs a
  family of structurally identical instances back to back: pool dispatch is
  paid once per shard, the hash-consing intern pool is shared across the
  shard, and the base scenario is built once per distinct parameter
  assignment and re-decorated per adversary.  On sweeps of many small cells
  this amortisation dominates (see ``benchmarks/test_bench_sweep.py``).
  The trade-off is checkpoint granularity: a worker reports a whole shard
  at once, so a sweep killed mid-shard loses that shard's completed-but-
  unreported cells (bounded by the shard size), where the per-cell
  backends lose at most one cell per worker.
* :class:`~repro.experiments.remote.RemoteExecutor` — serves shards to
  remote worker processes over a socket wire protocol with heartbeats and
  lease-based assignment (see :mod:`repro.experiments.remote`).

The pool-backed backends are supervised (:class:`_PoolSupervisor`): a
worker that dies mid-task (``BrokenProcessPool``) triggers a pool restart
and resubmission of the lost tasks instead of aborting the sweep; a task
whose worker exceeds its execution deadline is abandoned (the pool is
killed and restarted) and, after repeated timeouts, quarantined as an error
record; and when the pool keeps breaking without making progress, execution
degrades gracefully to the in-process serial path for whatever remains.  A
shard that fails as a unit is re-run inline cell by cell, so one poison
cell costs one error record, not its whole shard.

Every backend produces records identical to the serial one (modulo the
``duration_s`` timing field): cells are seeded by their identity, interning
never changes semantics, and shard grouping is a scheduling hint only.
"""

from __future__ import annotations

import contextlib
import math
import time
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..obs import metrics as _metrics
from ..obs.collect import Collector, registry_baseline, registry_delta
from ..obs.trace import trace_events
from ..scenarios.base import RegistryError, get_scenario
from ..simulation.interning import intern_pool
from . import faults
from .runner import (
    SweepCell,
    SweepError,
    error_record,
    execute_cell_inline,
    run_cell,
)

#: The backend names ``run_sweep``/the CLI accept.
BACKENDS: Tuple[str, ...] = ("auto", "serial", "process", "sharded", "remote")

#: Ceiling on *derived* cells per shard: bounds a worker's intern-pool
#: lifetime (memory) and keeps shards small enough to balance across the
#: pool.  An explicit ``shard_size`` is the caller's choice and may exceed it.
DEFAULT_MAX_SHARD_CELLS = 32

#: Shards-per-worker target when deriving a shard size automatically; a bit
#: of oversubscription lets the pool rebalance around slow shards.
_SHARDS_PER_WORKER = 4

#: Consecutive pool restarts that deliver no result before a supervised
#: backend stops restarting and degrades to in-process execution.
DEFAULT_MAX_POOL_RESTARTS = 3

#: Execution-deadline violations (distinct pool incarnations) a single task
#: survives before it is quarantined as a failed record.
DEFAULT_MAX_TASK_ATTEMPTS = 3

#: How often the supervision loop wakes to check worker deadlines.
_SUPERVISE_TICK_S = 0.05

#: ``handle(index, cell, record)`` — invoked exactly once per pending cell.
ResultHandler = Callable[[int, SweepCell, Dict[str, Any]], None]

_C_POOL_RESTARTS = _metrics.counter("sweep.pool_restarts")
_C_POOL_BROKEN = _metrics.counter("sweep.pool_broken")
_C_TASK_TIMEOUTS = _metrics.counter("sweep.task_timeouts")
_C_TASK_RETRIES = _metrics.counter("sweep.task_retries")
_C_QUARANTINED = _metrics.counter("sweep.cells_quarantined")
_C_INLINE_FALLBACK = _metrics.counter("sweep.inline_fallback_cells")
_C_SHARD_INLINE_RETRY = _metrics.counter("sweep.shard_inline_retries")


class WorkerTimeout(RuntimeError):
    """A task's worker exceeded its execution deadline repeatedly."""


class SweepExecutor(ABC):
    """How the pending cells of one sweep get executed."""

    #: Short name reported in outcomes and the CLI.
    name: str = "abstract"

    @abstractmethod
    def execute(self, pending: Sequence[Tuple[int, SweepCell]], handle: ResultHandler) -> None:
        """Run every pending cell, calling ``handle`` once per cell.

        Implementations must never raise on a failing cell; failures are
        reported as ``status: "error"`` records (see
        :func:`~repro.experiments.runner.error_record`).
        """

    @property
    def worker_telemetry(self) -> Collector:
        """Worker metric deltas and shard timings absorbed during execute().

        Lazily created (and stored on the instance ``__dict__``), so custom
        executors that never call ``super().__init__()`` still expose an
        empty collector.  Backends that run work *in-process* must record
        shard wall-time metadata only — their metric increments already land
        in the parent registry, and absorbing them again would double count.
        """
        collector = self.__dict__.get("_worker_telemetry")
        if collector is None:
            collector = Collector()
            self.__dict__["_worker_telemetry"] = collector
        return collector

    @property
    def fabric(self) -> Dict[str, Any]:
        """Mutable robustness accounting (restarts, retries, quarantines).

        Persisted into the sweep telemetry record as its ``fabric`` section
        (see :func:`repro.experiments.runner.run_sweep`); lazily created so
        executors that never touch it ship nothing.
        """
        stats = self.__dict__.get("_fabric")
        if stats is None:
            stats = {}
            self.__dict__["_fabric"] = stats
        return stats

    def fabric_summary(self) -> Dict[str, Any]:
        """A JSON-safe copy of the robustness accounting (may be empty)."""
        return dict(self.__dict__.get("_fabric") or {})

    def _bump(self, key: str, amount: int = 1) -> None:
        fabric = self.fabric
        fabric[key] = fabric.get(key, 0) + amount

    def _absorb_worker_payload(
        self, payload: Mapping[str, Any], cells: int, **extra: Any
    ) -> None:
        """Fold one out-of-process worker payload into the telemetry."""
        collector = self.worker_telemetry
        collector.add_metrics(payload.get("metrics"))
        collector.add_shard(cells, float(payload.get("wall_s") or 0.0), **extra)
        collector.add_trace(payload.get("trace"))


class SerialExecutor(SweepExecutor):
    """Run cells one after another in the calling process."""

    name = "serial"

    def execute(self, pending: Sequence[Tuple[int, SweepCell]], handle: ResultHandler) -> None:
        for index, cell in pending:
            try:
                record = run_cell(cell)
            except Exception as exc:  # noqa: BLE001 - per-cell isolation
                record = error_record(cell, exc)
            handle(index, cell, record)


# ---------------------------------------------------------------------------
# Pool supervision: broken-pool recovery, deadlines, graceful degradation.
# ---------------------------------------------------------------------------


def _abandon_pool(executor: ProcessPoolExecutor) -> None:
    """Tear down a pool that may contain hung or dying workers.

    A graceful ``shutdown(wait=True)`` would block behind a hung task, so
    queued work is cancelled, the worker processes are SIGKILLed outright,
    and the join is best-effort.  Private-attribute access is deliberate:
    :class:`ProcessPoolExecutor` offers no public way to reap a wedged
    worker, and leaking a process that sleeps for minutes would stall
    interpreter shutdown.
    """
    processes = list(getattr(executor, "_processes", {}).values())
    executor.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.kill()
        except Exception:  # noqa: BLE001 - already-dead workers are fine
            pass
    for process in processes:
        try:
            process.join(timeout=1.0)
        except Exception:  # noqa: BLE001
            pass


class _PoolSupervisor:
    """Run payloads through worker pools, surviving sick workers.

    Generic over the payload: ``fn(payload)`` executes in a pool worker and
    ``on_done(task_id, ("ok", value) | ("error", exc))`` delivers outcomes in
    the parent, at most once per task.  The supervisor guarantees forward
    progress and bounded failure handling:

    * ``BrokenProcessPool`` (a worker died mid-task) restarts the pool and
      resubmits every unfinished task;
    * with ``task_timeout`` set, a task observed *running* longer than the
      timeout marks the pool sick: the pool is killed
      (:func:`_abandon_pool`), the timed-out tasks are charged an attempt,
      and everything unfinished is resubmitted — a task charged
      ``max_attempts`` times lands in the returned ``timed_out`` list
      instead of being retried forever;
    * ``max_restarts`` consecutive pool incarnations that deliver nothing
      stop the restart loop; the unfinished remainder comes back in
      ``leftover`` for the caller's in-process fallback.

    Workers are initialised with :func:`repro.experiments.faults.\
pool_worker_init`, so chaos plans (``REPRO_FAULTS``) apply to pool workers
    and never to the supervising parent.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        workers: int,
        *,
        task_timeout: Optional[float] = None,
        max_restarts: int = DEFAULT_MAX_POOL_RESTARTS,
        max_attempts: int = DEFAULT_MAX_TASK_ATTEMPTS,
    ):
        self.fn = fn
        self.workers = workers
        self.task_timeout = task_timeout
        self.max_restarts = max_restarts
        self.max_attempts = max_attempts
        self.stats: Dict[str, int] = {}

    def _count(self, key: str, amount: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + amount

    def run(
        self,
        payloads: Sequence[Any],
        on_done: Callable[[int, Tuple[str, Any]], None],
    ) -> Tuple[List[int], List[int]]:
        """Execute every payload; return ``(leftover_ids, timed_out_ids)``.

        Every task id is either delivered exactly once via ``on_done`` or
        returned in exactly one of the two lists.
        """
        pending: deque[int] = deque(range(len(payloads)))
        timeouts: Dict[int, int] = {}
        timed_out_ids: List[int] = []
        unproductive = 0
        first_pool = True
        while pending:
            if unproductive > self.max_restarts:
                break
            if not first_pool:
                _C_POOL_RESTARTS.value += 1
                self._count("pool_restarts")
            first_pool = False
            batch = list(pending)
            pending.clear()
            resolved: set = set()
            delivered = 0
            broken = False
            abandoned = False
            executor = ProcessPoolExecutor(
                max_workers=min(self.workers, len(batch)),
                initializer=faults.pool_worker_init,
            )
            try:
                futures = {
                    executor.submit(self.fn, payloads[tid]): tid for tid in batch
                }
                remaining = set(futures)
                running_since: Dict[Any, float] = {}
                while remaining:
                    done, not_done = wait(
                        remaining, timeout=_SUPERVISE_TICK_S, return_when=FIRST_COMPLETED
                    )
                    now = time.monotonic()
                    for future in done:
                        tid = futures[future]
                        try:
                            value = future.result()
                        except BrokenProcessPool:
                            broken = True
                            break
                        except Exception as exc:  # noqa: BLE001 - per-task isolation
                            on_done(tid, ("error", exc))
                            resolved.add(tid)
                            delivered += 1
                        else:
                            on_done(tid, ("ok", value))
                            resolved.add(tid)
                            delivered += 1
                    if broken:
                        _C_POOL_BROKEN.value += 1
                        self._count("pool_broken")
                        break
                    remaining = not_done
                    if self.task_timeout is None:
                        continue
                    expired = False
                    for future in remaining:
                        if not future.running():
                            continue
                        started = running_since.setdefault(future, now)
                        if now - started >= self.task_timeout:
                            tid = futures[future]
                            timeouts[tid] = timeouts.get(tid, 0) + 1
                            _C_TASK_TIMEOUTS.value += 1
                            self._count("task_timeouts")
                            expired = True
                    if expired:
                        abandoned = True
                        break
            finally:
                if broken or abandoned:
                    _abandon_pool(executor)
                else:
                    executor.shutdown(wait=True)
            for tid in batch:
                if tid in resolved:
                    continue
                if timeouts.get(tid, 0) >= self.max_attempts:
                    timed_out_ids.append(tid)
                    continue
                pending.append(tid)
                _C_TASK_RETRIES.value += 1
                self._count("task_retries")
            unproductive = 0 if delivered else unproductive + 1
        return list(pending), timed_out_ids


def _fold_supervisor(executor: SweepExecutor, supervisor: _PoolSupervisor) -> None:
    fabric = executor.fabric
    for key, value in supervisor.stats.items():
        fabric[key] = fabric.get(key, 0) + value


class ProcessExecutor(SweepExecutor):
    """One process-pool task per cell (per-cell dispatch), supervised."""

    name = "process"

    def __init__(
        self,
        workers: int,
        cell_timeout: Optional[float] = None,
        max_restarts: int = DEFAULT_MAX_POOL_RESTARTS,
        max_attempts: int = DEFAULT_MAX_TASK_ATTEMPTS,
    ):
        if workers < 1:
            raise SweepError(f"workers must be >= 1, got {workers}")
        if cell_timeout is not None and cell_timeout <= 0:
            raise SweepError(f"cell timeout must be > 0, got {cell_timeout}")
        self.workers = workers
        self.cell_timeout = cell_timeout
        self.max_restarts = max_restarts
        self.max_attempts = max_attempts

    def execute(self, pending: Sequence[Tuple[int, SweepCell]], handle: ResultHandler) -> None:
        if self.workers == 1 or len(pending) <= 1:
            # In-process: increments land in the parent registry directly.
            SerialExecutor().execute(pending, handle)
            return
        supervisor = _PoolSupervisor(
            run_cell_monitored,
            self.workers,
            task_timeout=self.cell_timeout,
            max_restarts=self.max_restarts,
            max_attempts=self.max_attempts,
        )

        def on_done(tid: int, outcome: Tuple[str, Any]) -> None:
            index, cell = pending[tid]
            kind, value = outcome
            if kind == "ok":
                record = value["record"]
                self._absorb_worker_payload(value, cells=1)
            else:
                record = error_record(cell, value)
            handle(index, cell, record)

        leftover, timed_out = supervisor.run([cell for _, cell in pending], on_done)
        _fold_supervisor(self, supervisor)
        # Quarantine repeat deadline violators: a cell that hung its worker
        # on every attempt would hang the sweep itself if re-run inline.
        for tid in timed_out:
            index, cell = pending[tid]
            _C_QUARANTINED.value += 1
            self._bump("cells_quarantined")
            handle(
                index,
                cell,
                error_record(
                    cell,
                    WorkerTimeout(
                        f"cell exceeded {self.cell_timeout}s on "
                        f"{self.max_attempts} worker(s); quarantined"
                    ),
                ),
            )
        # Graceful degradation: workers died faster than they made progress,
        # so whatever never timed out finishes on the in-process serial path.
        if leftover:
            _C_INLINE_FALLBACK.value += len(leftover)
            self._bump("inline_fallback_cells", len(leftover))
            SerialExecutor().execute([pending[tid] for tid in leftover], handle)


def shard_signature(cell: SweepCell) -> Tuple[Any, ...]:
    """The grouping key of a cell for sharded execution.

    Scenario name, the sweep-level horizon override, and the values of every
    parameter the scenario flags as a shard key.  Cells sharing a signature
    build the same family of instances, so running them in one worker shard
    maximises intern-pool and scenario-construction reuse.  Unregistered
    scenarios (possible when decoding foreign stores) degrade to the name.
    """
    try:
        spec = get_scenario(cell.scenario)
    except RegistryError:
        return (cell.scenario, cell.horizon)
    params = cell.params_dict()
    structural = tuple((name, params.get(name)) for name in spec.shard_params())
    return (cell.scenario, cell.horizon) + structural


def plan_shards(
    pending: Sequence[Tuple[int, SweepCell]],
    workers: int,
    shard_size: Optional[int] = None,
) -> List[List[Tuple[int, SweepCell]]]:
    """Group pending cells into shards of structurally similar cells.

    Cells are bucketed by :func:`shard_signature`, each bucket is sorted so
    cells with identical parameter assignments sit next to each other (grid
    expansion iterates adversaries in the outer loop, which would otherwise
    scatter the cells a shard's base-scenario cache could serve), and then
    each bucket is chunked.  The chunk size is ``shard_size`` when given,
    otherwise derived so the sweep yields roughly ``workers * 4`` shards
    (bounded by :data:`DEFAULT_MAX_SHARD_CELLS`): enough shards for the pool
    to balance load, few enough that dispatch stays amortised.
    """
    if shard_size is not None and shard_size < 1:
        raise SweepError(f"shard size must be >= 1, got {shard_size}")
    buckets: Dict[Tuple[Any, ...], List[Tuple[int, SweepCell]]] = {}
    for index, cell in pending:
        buckets.setdefault(shard_signature(cell), []).append((index, cell))
    for bucket in buckets.values():
        bucket.sort(key=lambda item: (item[1].params, item[1].seed, item[1].adversary))
    if shard_size is None:
        target = math.ceil(len(pending) / max(1, workers * _SHARDS_PER_WORKER))
        shard_size = max(1, min(DEFAULT_MAX_SHARD_CELLS, target))
    shards: List[List[Tuple[int, SweepCell]]] = []
    for bucket in buckets.values():
        for start in range(0, len(bucket), shard_size):
            shards.append(bucket[start : start + shard_size])
    return shards


def run_cell_monitored(cell: SweepCell) -> Dict[str, Any]:
    """Execute one cell and ship its metric delta with the record.

    The worker half of the snapshot-delta protocol
    (:mod:`repro.obs.collect`): the payload carries the result record plus
    everything the cell's execution added to this process's registry, so the
    sweep parent can merge metrics from reused pool workers without double
    counting.  New trace events ride along when deep tracing is on.
    """
    baseline = registry_baseline()
    mark = len(trace_events())
    started = time.perf_counter()
    faults.fire("worker.cell")
    record = run_cell(cell)
    return {
        "record": record,
        "metrics": registry_delta(baseline),
        "wall_s": time.perf_counter() - started,
        "trace": trace_events()[mark:],
    }


def run_shard_monitored(
    cells: Sequence[SweepCell],
    base_cache: Optional[Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], Any]] = None,
    fresh_pool: bool = True,
) -> Dict[str, Any]:
    """Execute one shard in the current process (pure; pool-safe).

    The whole shard shares one intern pool — every cell of the shard rides
    the same hash-consed substrate, so structurally identical histories,
    messages, and causal pasts are built once — and a per-shard scenario
    cache rebuilds the base scenario only once per distinct ``(scenario,
    params)`` assignment (cells differing only in adversary re-decorate it).
    ``records`` holds one record per cell, aligned with the input order; a
    failing cell yields an error record without poisoning the rest of the
    shard.  Like :func:`run_cell_monitored`, the payload carries the shard's
    registry delta, wall time, and new trace events.

    A warm-started worker (``repro worker --snapshot``, see
    :mod:`repro.experiments.snapshot`) passes its pre-built ``base_cache``
    and ``fresh_pool=False`` so the shard runs in the process pool the
    snapshot already populated instead of a scratch one; results are
    bit-identical either way (cache hits equal rebuilds by construction).

    Fault-injection points ``worker.shard`` (once, up front) and
    ``worker.cell`` (per cell) fire here; they are no-ops outside marked
    worker processes (see :mod:`repro.experiments.faults`).
    """
    baseline = registry_baseline()
    mark = len(trace_events())
    started = time.perf_counter()
    faults.fire("worker.shard")
    records: List[Dict[str, Any]] = []
    scope = intern_pool() if fresh_pool else contextlib.nullcontext()
    with scope:
        if base_cache is None:
            base_cache = {}
        for cell in cells:
            # Outside the per-cell try: a DropConnection fault must sever the
            # shard (the remote worker catches it at its connection loop),
            # never masquerade as a cell error record.
            faults.fire("worker.cell")
            try:
                record, _ = execute_cell_inline(cell, base_cache=base_cache)
            except Exception as exc:  # noqa: BLE001 - per-cell isolation
                record = error_record(cell, exc)
            records.append(record)
    return {
        "records": records,
        "metrics": registry_delta(baseline),
        "wall_s": time.perf_counter() - started,
        "trace": trace_events()[mark:],
    }


def run_shard(cells: Sequence[SweepCell]) -> List[Dict[str, Any]]:
    """The records of :func:`run_shard_monitored` (compatibility surface)."""
    return run_shard_monitored(cells)["records"]


class ChunkedShardExecutor(SweepExecutor):
    """Dispatch per-worker shards of structurally similar cells, supervised."""

    name = "sharded"

    def __init__(
        self,
        workers: int,
        shard_size: Optional[int] = None,
        shard_timeout: Optional[float] = None,
        max_restarts: int = DEFAULT_MAX_POOL_RESTARTS,
        max_attempts: int = DEFAULT_MAX_TASK_ATTEMPTS,
    ):
        if workers < 1:
            raise SweepError(f"workers must be >= 1, got {workers}")
        if shard_size is not None and shard_size < 1:
            raise SweepError(f"shard size must be >= 1, got {shard_size}")
        if shard_timeout is not None and shard_timeout <= 0:
            raise SweepError(f"shard timeout must be > 0, got {shard_timeout}")
        self.workers = workers
        self.shard_size = shard_size
        self.shard_timeout = shard_timeout
        self.max_restarts = max_restarts
        self.max_attempts = max_attempts

    def execute(self, pending: Sequence[Tuple[int, SweepCell]], handle: ResultHandler) -> None:
        shards = plan_shards(pending, self.workers, self.shard_size)
        if self.workers == 1 or len(shards) <= 1:
            # Still amortised (shared pool, scenario cache), just in-process.
            # Record shard wall-time metadata only: the metric increments and
            # trace events already landed in the parent registry/buffer, and
            # absorbing the payload too would double count them.
            for shard in shards:
                payload = run_shard_monitored([cell for _, cell in shard])
                self.worker_telemetry.add_shard(
                    len(shard), payload["wall_s"], in_process=True
                )
                self._deliver(shard, payload["records"], handle)
            return
        supervisor = _PoolSupervisor(
            run_shard_monitored,
            min(self.workers, len(shards)),
            task_timeout=self.shard_timeout,
            max_restarts=self.max_restarts,
            max_attempts=self.max_attempts,
        )

        def on_done(tid: int, outcome: Tuple[str, Any]) -> None:
            shard = shards[tid]
            kind, value = outcome
            if kind == "ok":
                self._absorb_worker_payload(value, cells=len(shard))
                self._deliver(shard, value["records"], handle)
            else:
                # The shard failed as a unit (its worker raised outside the
                # per-cell isolation): re-run inline per cell so one poison
                # cell costs one record, not the whole shard.
                self._retry_shard_inline(shard, handle, cause=value)

        leftover, timed_out = supervisor.run(
            [[cell for _, cell in shard] for shard in shards], on_done
        )
        _fold_supervisor(self, supervisor)
        for tid in timed_out:
            # Quarantine: this shard repeatedly hung its worker past the
            # deadline; re-running it inline could hang the sweep itself.
            for index, cell in shards[tid]:
                _C_QUARANTINED.value += 1
                self._bump("cells_quarantined")
                handle(
                    index,
                    cell,
                    error_record(
                        cell,
                        WorkerTimeout(
                            f"shard exceeded {self.shard_timeout}s on "
                            f"{self.max_attempts} worker(s); quarantined"
                        ),
                    ),
                )
        for tid in leftover:
            # Workers died faster than they made progress: finish in-process.
            self._retry_shard_inline(shards[tid], handle, cause=None)

    def _retry_shard_inline(
        self,
        shard: Sequence[Tuple[int, SweepCell]],
        handle: ResultHandler,
        cause: Optional[BaseException],
    ) -> None:
        """Run a failed shard's cells one by one in the parent process.

        Per-cell granularity is the point: only the genuinely failing cell
        yields an error record.  In-process execution, so only shard
        wall-time metadata is recorded (metrics land in the parent registry
        directly).  Injected faults never fire here — the parent is not a
        marked worker — which also makes this the safe terminal fallback.
        """
        _C_SHARD_INLINE_RETRY.value += 1
        self._bump("shard_inline_retries")
        if cause is not None:
            self.fabric["last_shard_error"] = f"{type(cause).__name__}: {cause}"
        started = time.perf_counter()
        with intern_pool():
            base_cache: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], Any] = {}
            for index, cell in shard:
                try:
                    record, _ = execute_cell_inline(cell, base_cache=base_cache)
                except Exception as exc:  # noqa: BLE001 - per-cell isolation
                    record = error_record(cell, exc)
                handle(index, cell, record)
        self.worker_telemetry.add_shard(
            len(shard), time.perf_counter() - started, in_process=True, inline_retry=True
        )

    @staticmethod
    def _deliver(
        shard: Sequence[Tuple[int, SweepCell]],
        records: Sequence[Dict[str, Any]],
        handle: ResultHandler,
    ) -> None:
        # strict: a worker returning the wrong record count must fail loudly,
        # not silently drop the tail of the shard.
        for (index, cell), record in zip(shard, records, strict=True):
            handle(index, cell, record)


def resolve_executor(
    backend: Union[str, SweepExecutor] = "auto",
    workers: int = 1,
    shard_size: Optional[int] = None,
    cell_timeout: Optional[float] = None,
) -> SweepExecutor:
    """Turn a backend name (or a ready executor) into a :class:`SweepExecutor`.

    ``auto`` picks the serial path for one worker and per-cell process
    dispatch otherwise; ``process`` with one worker also degrades to serial
    (no point spawning a pool for sequential work).  ``sharded`` keeps its
    chunked execution even single-worker — the shared-pool and scenario-cache
    amortisation applies in-process too.  ``remote`` builds a loopback
    coordinator with default fabric settings; callers who need a fixed
    listen address or tuned lease/heartbeat timeouts construct a
    :class:`~repro.experiments.remote.RemoteExecutor` themselves and pass it
    as the backend (the CLI does).  ``cell_timeout`` is the per-cell (or,
    sharded, per-shard) worker execution deadline; ``None`` disables
    deadline supervision.
    """
    if isinstance(backend, SweepExecutor):
        return backend
    if workers < 1:
        raise SweepError(f"workers must be >= 1, got {workers}")
    if backend == "auto":
        backend = "serial" if workers == 1 else "process"
    if backend == "serial":
        return SerialExecutor()
    if backend == "process":
        if workers == 1:
            return SerialExecutor()
        return ProcessExecutor(workers, cell_timeout=cell_timeout)
    if backend == "sharded":
        return ChunkedShardExecutor(
            workers, shard_size=shard_size, shard_timeout=cell_timeout
        )
    if backend == "remote":
        from .remote import RemoteExecutor  # executors <-> remote layering

        return RemoteExecutor(workers_hint=workers, shard_size=shard_size)
    raise SweepError(f"unknown backend {backend!r}; known: {list(BACKENDS)}")
