"""Pluggable execution backends for the sweep runner.

:func:`repro.experiments.runner.run_sweep` separates *what* to run (the cache
scan against the result store) from *how* to run it (this module).  A backend
is a :class:`SweepExecutor`: it receives the pending ``(index, cell)`` pairs
and must invoke the result handler exactly once per cell, in completion
order, with either the cell's result record or an error record.

Three backends ship:

* :class:`SerialExecutor` — in-process, cell by cell.  No pool spawn cost,
  so it is the right choice for single-worker runs and tiny sweeps.
* :class:`ProcessExecutor` — one :class:`~concurrent.futures.\
ProcessPoolExecutor` task per cell (the classic behaviour).  Maximum
  scheduling freedom, but every cell pays task dispatch, a fresh intern
  pool, and scenario construction on its own.
* :class:`ChunkedShardExecutor` — groups cells into per-worker *shards* and
  dispatches whole shards.  Cells are grouped by their shard signature
  (scenario name plus the parameters flagged ``shard_key=True`` on their
  :class:`~repro.scenarios.base.ParamSpec`), so one worker task runs a
  family of structurally identical instances back to back: pool dispatch is
  paid once per shard, the hash-consing intern pool is shared across the
  shard, and the base scenario is built once per distinct parameter
  assignment and re-decorated per adversary.  On sweeps of many small cells
  this amortisation dominates (see ``benchmarks/test_bench_sweep.py``).
  The trade-off is checkpoint granularity: a worker reports a whole shard
  at once, so a sweep killed mid-shard loses that shard's completed-but-
  unreported cells (bounded by the shard size), where the per-cell
  backends lose at most one cell per worker.

Every backend produces records identical to the serial one (modulo the
``duration_s`` timing field): cells are seeded by their identity, interning
never changes semantics, and shard grouping is a scheduling hint only.
"""

from __future__ import annotations

import math
import time
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..obs.collect import Collector, registry_baseline, registry_delta
from ..obs.trace import trace_events
from ..scenarios.base import RegistryError, get_scenario
from ..simulation.interning import intern_pool
from .runner import (
    SweepCell,
    SweepError,
    error_record,
    execute_cell_inline,
    run_cell,
)

#: The backend names ``run_sweep``/the CLI accept.
BACKENDS: Tuple[str, ...] = ("auto", "serial", "process", "sharded")

#: Ceiling on *derived* cells per shard: bounds a worker's intern-pool
#: lifetime (memory) and keeps shards small enough to balance across the
#: pool.  An explicit ``shard_size`` is the caller's choice and may exceed it.
DEFAULT_MAX_SHARD_CELLS = 32

#: Shards-per-worker target when deriving a shard size automatically; a bit
#: of oversubscription lets the pool rebalance around slow shards.
_SHARDS_PER_WORKER = 4

#: ``handle(index, cell, record)`` — invoked exactly once per pending cell.
ResultHandler = Callable[[int, SweepCell, Dict[str, Any]], None]


class SweepExecutor(ABC):
    """How the pending cells of one sweep get executed."""

    #: Short name reported in outcomes and the CLI.
    name: str = "abstract"

    @abstractmethod
    def execute(self, pending: Sequence[Tuple[int, SweepCell]], handle: ResultHandler) -> None:
        """Run every pending cell, calling ``handle`` once per cell.

        Implementations must never raise on a failing cell; failures are
        reported as ``status: "error"`` records (see
        :func:`~repro.experiments.runner.error_record`).
        """

    @property
    def worker_telemetry(self) -> Collector:
        """Worker metric deltas and shard timings absorbed during execute().

        Lazily created (and stored on the instance ``__dict__``), so custom
        executors that never call ``super().__init__()`` still expose an
        empty collector.  Backends that run work *in-process* must record
        shard wall-time metadata only — their metric increments already land
        in the parent registry, and absorbing them again would double count.
        """
        collector = self.__dict__.get("_worker_telemetry")
        if collector is None:
            collector = Collector()
            self.__dict__["_worker_telemetry"] = collector
        return collector

    def _absorb_worker_payload(
        self, payload: Mapping[str, Any], cells: int, **extra: Any
    ) -> None:
        """Fold one out-of-process worker payload into the telemetry."""
        collector = self.worker_telemetry
        collector.add_metrics(payload.get("metrics"))
        collector.add_shard(cells, float(payload.get("wall_s") or 0.0), **extra)
        collector.add_trace(payload.get("trace"))


class SerialExecutor(SweepExecutor):
    """Run cells one after another in the calling process."""

    name = "serial"

    def execute(self, pending: Sequence[Tuple[int, SweepCell]], handle: ResultHandler) -> None:
        for index, cell in pending:
            try:
                record = run_cell(cell)
            except Exception as exc:  # noqa: BLE001 - per-cell isolation
                record = error_record(cell, exc)
            handle(index, cell, record)


class ProcessExecutor(SweepExecutor):
    """One process-pool task per cell (per-cell dispatch)."""

    name = "process"

    def __init__(self, workers: int):
        if workers < 1:
            raise SweepError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def execute(self, pending: Sequence[Tuple[int, SweepCell]], handle: ResultHandler) -> None:
        if self.workers == 1 or len(pending) <= 1:
            # In-process: increments land in the parent registry directly.
            SerialExecutor().execute(pending, handle)
            return
        with ProcessPoolExecutor(max_workers=self.workers) as executor:
            futures = {
                executor.submit(run_cell_monitored, cell): (index, cell)
                for index, cell in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    index, cell = futures[future]
                    try:
                        payload = future.result()
                        record = payload["record"]
                        self._absorb_worker_payload(payload, cells=1)
                    except Exception as exc:  # noqa: BLE001 - per-cell isolation
                        record = error_record(cell, exc)
                    handle(index, cell, record)


def shard_signature(cell: SweepCell) -> Tuple[Any, ...]:
    """The grouping key of a cell for sharded execution.

    Scenario name, the sweep-level horizon override, and the values of every
    parameter the scenario flags as a shard key.  Cells sharing a signature
    build the same family of instances, so running them in one worker shard
    maximises intern-pool and scenario-construction reuse.  Unregistered
    scenarios (possible when decoding foreign stores) degrade to the name.
    """
    try:
        spec = get_scenario(cell.scenario)
    except RegistryError:
        return (cell.scenario, cell.horizon)
    params = cell.params_dict()
    structural = tuple((name, params.get(name)) for name in spec.shard_params())
    return (cell.scenario, cell.horizon) + structural


def plan_shards(
    pending: Sequence[Tuple[int, SweepCell]],
    workers: int,
    shard_size: Optional[int] = None,
) -> List[List[Tuple[int, SweepCell]]]:
    """Group pending cells into shards of structurally similar cells.

    Cells are bucketed by :func:`shard_signature`, each bucket is sorted so
    cells with identical parameter assignments sit next to each other (grid
    expansion iterates adversaries in the outer loop, which would otherwise
    scatter the cells a shard's base-scenario cache could serve), and then
    each bucket is chunked.  The chunk size is ``shard_size`` when given,
    otherwise derived so the sweep yields roughly ``workers * 4`` shards
    (bounded by :data:`DEFAULT_MAX_SHARD_CELLS`): enough shards for the pool
    to balance load, few enough that dispatch stays amortised.
    """
    if shard_size is not None and shard_size < 1:
        raise SweepError(f"shard size must be >= 1, got {shard_size}")
    buckets: Dict[Tuple[Any, ...], List[Tuple[int, SweepCell]]] = {}
    for index, cell in pending:
        buckets.setdefault(shard_signature(cell), []).append((index, cell))
    for bucket in buckets.values():
        bucket.sort(key=lambda item: (item[1].params, item[1].seed, item[1].adversary))
    if shard_size is None:
        target = math.ceil(len(pending) / max(1, workers * _SHARDS_PER_WORKER))
        shard_size = max(1, min(DEFAULT_MAX_SHARD_CELLS, target))
    shards: List[List[Tuple[int, SweepCell]]] = []
    for bucket in buckets.values():
        for start in range(0, len(bucket), shard_size):
            shards.append(bucket[start : start + shard_size])
    return shards


def run_cell_monitored(cell: SweepCell) -> Dict[str, Any]:
    """Execute one cell and ship its metric delta with the record.

    The worker half of the snapshot-delta protocol
    (:mod:`repro.obs.collect`): the payload carries the result record plus
    everything the cell's execution added to this process's registry, so the
    sweep parent can merge metrics from reused pool workers without double
    counting.  New trace events ride along when deep tracing is on.
    """
    baseline = registry_baseline()
    mark = len(trace_events())
    started = time.perf_counter()
    record = run_cell(cell)
    return {
        "record": record,
        "metrics": registry_delta(baseline),
        "wall_s": time.perf_counter() - started,
        "trace": trace_events()[mark:],
    }


def run_shard_monitored(cells: Sequence[SweepCell]) -> Dict[str, Any]:
    """Execute one shard in the current process (pure; pool-safe).

    The whole shard shares one intern pool — every cell of the shard rides
    the same hash-consed substrate, so structurally identical histories,
    messages, and causal pasts are built once — and a per-shard scenario
    cache rebuilds the base scenario only once per distinct ``(scenario,
    params)`` assignment (cells differing only in adversary re-decorate it).
    ``records`` holds one record per cell, aligned with the input order; a
    failing cell yields an error record without poisoning the rest of the
    shard.  Like :func:`run_cell_monitored`, the payload carries the shard's
    registry delta, wall time, and new trace events.
    """
    baseline = registry_baseline()
    mark = len(trace_events())
    started = time.perf_counter()
    records: List[Dict[str, Any]] = []
    with intern_pool():
        base_cache: Dict[Tuple[str, Tuple[Tuple[str, Any], ...]], Any] = {}
        for cell in cells:
            try:
                record, _ = execute_cell_inline(cell, base_cache=base_cache)
            except Exception as exc:  # noqa: BLE001 - per-cell isolation
                record = error_record(cell, exc)
            records.append(record)
    return {
        "records": records,
        "metrics": registry_delta(baseline),
        "wall_s": time.perf_counter() - started,
        "trace": trace_events()[mark:],
    }


def run_shard(cells: Sequence[SweepCell]) -> List[Dict[str, Any]]:
    """The records of :func:`run_shard_monitored` (compatibility surface)."""
    return run_shard_monitored(cells)["records"]


class ChunkedShardExecutor(SweepExecutor):
    """Dispatch per-worker shards of structurally similar cells."""

    name = "sharded"

    def __init__(self, workers: int, shard_size: Optional[int] = None):
        if workers < 1:
            raise SweepError(f"workers must be >= 1, got {workers}")
        if shard_size is not None and shard_size < 1:
            raise SweepError(f"shard size must be >= 1, got {shard_size}")
        self.workers = workers
        self.shard_size = shard_size

    def execute(self, pending: Sequence[Tuple[int, SweepCell]], handle: ResultHandler) -> None:
        shards = plan_shards(pending, self.workers, self.shard_size)
        if self.workers == 1 or len(shards) <= 1:
            # Still amortised (shared pool, scenario cache), just in-process.
            # Record shard wall-time metadata only: the metric increments and
            # trace events already landed in the parent registry/buffer, and
            # absorbing the payload too would double count them.
            for shard in shards:
                payload = run_shard_monitored([cell for _, cell in shard])
                self.worker_telemetry.add_shard(
                    len(shard), payload["wall_s"], in_process=True
                )
                self._deliver(shard, payload["records"], handle)
            return
        with ProcessPoolExecutor(max_workers=min(self.workers, len(shards))) as executor:
            futures = {
                executor.submit(run_shard_monitored, [cell for _, cell in shard]): shard
                for shard in shards
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    shard = futures[future]
                    try:
                        payload = future.result()
                        records = payload["records"]
                        self._absorb_worker_payload(payload, cells=len(shard))
                    except Exception as exc:  # noqa: BLE001 - whole-shard failure
                        records = [error_record(cell, exc) for _, cell in shard]
                    self._deliver(shard, records, handle)

    @staticmethod
    def _deliver(
        shard: Sequence[Tuple[int, SweepCell]],
        records: Sequence[Dict[str, Any]],
        handle: ResultHandler,
    ) -> None:
        # strict: a worker returning the wrong record count must fail loudly,
        # not silently drop the tail of the shard.
        for (index, cell), record in zip(shard, records, strict=True):
            handle(index, cell, record)


def resolve_executor(
    backend: Union[str, SweepExecutor] = "auto",
    workers: int = 1,
    shard_size: Optional[int] = None,
) -> SweepExecutor:
    """Turn a backend name (or a ready executor) into a :class:`SweepExecutor`.

    ``auto`` picks the serial path for one worker and per-cell process
    dispatch otherwise; ``process`` with one worker also degrades to serial
    (no point spawning a pool for sequential work).  ``sharded`` keeps its
    chunked execution even single-worker — the shared-pool and scenario-cache
    amortisation applies in-process too.
    """
    if isinstance(backend, SweepExecutor):
        return backend
    if workers < 1:
        raise SweepError(f"workers must be >= 1, got {workers}")
    if backend == "auto":
        backend = "serial" if workers == 1 else "process"
    if backend == "serial":
        return SerialExecutor()
    if backend == "process":
        return SerialExecutor() if workers == 1 else ProcessExecutor(workers)
    if backend == "sharded":
        return ChunkedShardExecutor(workers, shard_size=shard_size)
    raise SweepError(f"unknown backend {backend!r}; known: {list(BACKENDS)}")
