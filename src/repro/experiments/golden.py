"""Golden-corpus serialization of registered scenarios.

A golden corpus pins two independent layers of the system at once:

* the **runs** every registered scenario produces under its default
  parameters (via the lossless :meth:`Run.to_dict` wire format), and
* the **knowledge answers** a :class:`KnowledgeChecker` derives from those
  runs -- for every observing process's final node, the max known gap between
  every ordered pair of boundary nodes of its past.

The corpus lives under ``tests/data/golden/`` (one JSON file per scenario)
and is regenerated with ``python scripts/regenerate_golden.py``.  The
regression test re-executes every scenario and requires the canonical JSON
to be bit-identical to the stored file, so *any* behavioural drift -- in the
simulator, the serialization format, the extended bounds graph, or the
longest-path engine -- shows up as a corpus diff that must be either fixed
or consciously re-recorded.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING

from ..core.causality import boundary_nodes
from ..core.knowledge_session import KnowledgeSession

# Import via the package (not ``.base``) so every scenario module runs its
# ``@register_scenario`` decorators before the registry is consulted.
from ..scenarios import get_scenario, list_scenarios

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulation.runs import Run

#: Version stamp of the golden-file layout (not of the Run wire format).
GOLDEN_FORMAT_VERSION = 1


def knowledge_answers(run: "Run") -> List[Dict[str, Any]]:
    """The recorded knowledge queries for one run.

    For each process's final node ``sigma`` (sorted by process name), every
    ordered pair of boundary nodes of ``past(sigma)`` is queried in one
    batch.  Nodes are identified by ``[process, step_count]``, which is
    unambiguous within a single run.

    One :class:`KnowledgeSession` serves all the observers: when consecutive
    final nodes are causally ordered the session absorbs the delta, and
    otherwise it resets to a cold build -- either way the answers recorded
    here are exactly the ones a fresh per-sigma ``KnowledgeChecker`` yields
    (the property-test suite pins that equivalence), so routing the corpus
    through the session keeps the stored bytes bit-identical while pinning
    the session substrate itself.
    """
    answers: List[Dict[str, Any]] = []
    session = KnowledgeSession(run.timed_network)
    for process in sorted(run.processes):
        sigma = run.final_node(process)
        session.advance(sigma)
        queried = sorted(
            boundary_nodes(sigma).values(), key=lambda node: node.process
        )
        pairs = [(earlier, later) for earlier in queried for later in queried]
        gaps = session.max_known_gaps(pairs)
        for (earlier, later), gap in zip(pairs, gaps):
            answers.append(
                {
                    "sigma": [sigma.process, sigma.step_count],
                    "earlier": [earlier.process, earlier.step_count],
                    "later": [later.process, later.step_count],
                    "gap": gap,
                }
            )
    return answers


def golden_payload(name: str) -> Dict[str, Any]:
    """Build the full golden payload for one registered scenario."""
    spec = get_scenario(name)
    run = spec.build().run()
    return {
        "format": GOLDEN_FORMAT_VERSION,
        "scenario": name,
        "params": spec.defaults(),
        "run": run.to_dict(),
        "knowledge": knowledge_answers(run),
    }


def golden_json(payload: Dict[str, Any]) -> str:
    """The byte-exact serialization the corpus stores and tests compare."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def corpus_path(directory: Path, name: str) -> Path:
    return Path(directory) / f"{name}.json"


def load_payload(path: Path) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_corpus(
    directory: Path, names: Optional[Iterable[str]] = None
) -> List[Tuple[str, Path, bool]]:
    """(Re)write golden files; returns ``(name, path, changed)`` per scenario."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    results: List[Tuple[str, Path, bool]] = []
    for name in names if names is not None else list_scenarios():
        path = corpus_path(directory, name)
        text = golden_json(golden_payload(name))
        previous = path.read_text(encoding="utf-8") if path.exists() else None
        changed = previous != text
        if changed:
            path.write_text(text, encoding="utf-8")
        results.append((name, path, changed))
    return results


def check_corpus(
    directory: Path, names: Optional[Iterable[str]] = None
) -> List[Tuple[str, str]]:
    """Verify stored files against freshly computed payloads without writing.

    Returns a list of ``(name, problem)`` entries; empty means the corpus is
    bit-identical to what the current code produces.
    """
    directory = Path(directory)
    problems: List[Tuple[str, str]] = []
    for name in names if names is not None else list_scenarios():
        path = corpus_path(directory, name)
        if not path.exists():
            problems.append((name, f"missing golden file {path}"))
            continue
        if path.read_text(encoding="utf-8") != golden_json(golden_payload(name)):
            problems.append((name, f"golden file {path} is stale"))
    return problems
