"""Hash-consing for the bcm substrate: one object per structural value.

The bcm model is full-information: every :class:`~repro.simulation.messages.Message`
carries its sender's entire :class:`~repro.simulation.messages.History`, so
histories nest recursively and the same prefix is re-embedded thousands of
times per run.  Treating equality, hashing, and causal-past traversal
structurally makes deep runs quadratic (or worse) in the horizon.  This module
restructures the *sharing topology* instead: every structurally distinct
history, message, observation, and basic node is constructed exactly once per
:class:`InternPool`, so

* ``a == b`` degrades to ``a is b`` for values of the same pool (the
  structural comparison is kept as a guarded fallback for values that cross
  pools, e.g. after a pool swap or process boundary);
* ``History.extend`` is O(step) instead of O(history) -- histories are
  persistent parent-pointer chains, and extending re-uses the interned child
  when it exists; and
* run-level caches (causal pasts as bitsets over dense node uids, boundary
  maps, delivery maps) can be keyed by identity and live exactly as long as
  the pool that owns their values.

The pool is deliberately *not* a weak-value table: it pins every value
interned into it.  That is the right trade for simulation workloads (a run
re-uses its prefixes constantly and the pool dies with the workload), but it
means long-lived processes should scope heavy work with :func:`intern_pool`::

    with intern_pool():
        run = scenario.run()          # everything interned into a fresh pool
        ...                           # caches filled, identity equality holds
    # pool dropped here; the run stays valid (guarded structural fallbacks)

Each OS process has its own current pool (module global), which is what makes
ProcessPool sweep workers naturally isolated; pools are not thread-scoped, so
do not swap pools concurrently from multiple threads.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple


class InternPool:
    """One hash-consing universe plus the identity-keyed caches built on it.

    The first group of tables interns values (structural key -> the unique
    instance); the second group memoizes derived causal data keyed by those
    instances.  Everything is per-pool so dropping the pool drops both the
    values it pinned and every cache entry about them.
    """

    __slots__ = (
        # value tables
        "externals",  # tag -> ExternalReceipt
        "actions",  # name -> LocalAction
        "receipts",  # Message -> MessageReceipt
        "messages",  # (sender, recipients, history, payload) -> Message
        "history_initials",  # process -> initial History
        "history_children",  # (parent History, step) -> History
        "nodes",  # History -> BasicNode
        "node_by_uid",  # dense uid -> BasicNode (uids index bitset pasts)
        # derived caches (identity-keyed through cached hashes)
        "direct_causes",  # BasicNode -> Tuple[BasicNode, ...]
        "past_masks",  # BasicNode -> int bitmask over node uids
        "past_sets",  # BasicNode -> FrozenSet[BasicNode]
        "boundaries",  # BasicNode -> {process: BasicNode}
        "delivery_maps",  # BasicNode -> {(sender_node, dest): receiver_node}
        # cross-pool canonicalisation (id(foreign value) -> canonical value;
        # the pin list keeps the foreign objects alive so ids stay unique)
        "canonical_memo",
        "canonical_pins",
    )

    def __init__(self) -> None:
        self.externals: Dict[str, Any] = {}
        self.actions: Dict[str, Any] = {}
        self.receipts: Dict[Any, Any] = {}
        self.messages: Dict[Tuple[Any, ...], Any] = {}
        self.history_initials: Dict[str, Any] = {}
        self.history_children: Dict[Tuple[Any, Any], Any] = {}
        self.nodes: Dict[Any, Any] = {}
        self.node_by_uid: List[Any] = []
        self.direct_causes: Dict[Any, Tuple[Any, ...]] = {}
        self.past_masks: Dict[Any, int] = {}
        self.past_sets: Dict[Any, Any] = {}
        self.boundaries: Dict[Any, Dict[str, Any]] = {}
        self.delivery_maps: Dict[Any, Dict[Any, Any]] = {}
        self.canonical_memo: Dict[int, Any] = {}
        self.canonical_pins: List[Any] = []

    def register_node(self, node: Any) -> int:
        """Assign the next dense uid to a freshly interned basic node."""
        uid = len(self.node_by_uid)
        self.node_by_uid.append(node)
        return uid

    def nodes_for_uids(self, uids: Iterable[int]) -> List[Any]:
        """Materialise dense uids back into their interned nodes, in order.

        The vectorized bitset scans in :mod:`repro.core.causality` produce
        uid arrays over this pool's dense uid space; this is the single
        place those arrays turn back into node objects.
        """
        table = self.node_by_uid
        return [table[uid] for uid in uids]

    def clear(self) -> None:
        """Drop every interned value and cache (previously returned objects stay valid)."""
        for name in self.__slots__:
            getattr(self, name).clear()

    def stats(self) -> Dict[str, int]:
        """Table sizes, for tests and capacity reporting."""
        return {name: len(getattr(self, name)) for name in self.__slots__}


#: The current pool of this process.  Hot constructors read this attribute
#: directly (``interning._POOL``); swap it only via :func:`set_pool` /
#: :func:`intern_pool`.
_POOL = InternPool()


def current_pool() -> InternPool:
    """The pool new values are interned into right now."""
    return _POOL


def set_pool(pool: InternPool) -> InternPool:
    """Install ``pool`` as the current pool and return the previous one."""
    global _POOL
    previous = _POOL
    _POOL = pool
    return previous


@contextmanager
def intern_pool(pool: Optional[InternPool] = None) -> Iterator[InternPool]:
    """Scope a block to its own intern pool (a fresh one unless given).

    On exit the previous pool is restored; values created inside the scope
    remain usable (their equality falls back to the guarded structural path
    against values of other pools) but are no longer pinned once the caller
    drops them.
    """
    scoped = pool if pool is not None else InternPool()
    previous = set_pool(scoped)
    try:
        yield scoped
    finally:
        set_pool(previous)


def intern_stats() -> Dict[str, int]:
    """Table sizes of the current pool."""
    return _POOL.stats()
