"""Contexts and external-input schedules.

A context ``gamma = ((Net, L, U), G0)`` pairs a timed network with the set of
possible initial global states.  In this reproduction the initial global state
is always "every process is in its empty initial local state" (the paper's
analysis never relies on richer initial states), so :class:`Context` carries
the timed network plus bookkeeping for the spontaneous external messages
``E`` that the environment may deliver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from .messages import GO_TRIGGER
from .network import Process, TimedNetwork


class ScheduleError(ValueError):
    """Raised when an external-input schedule is malformed."""


@dataclass(frozen=True, order=True)
class ExternalInput:
    """One spontaneous external message: ``tag`` delivered to ``process`` at ``time``.

    External delivery is spontaneous and independent of other events; the
    model forbids delivery at time 0 (processes do not act spontaneously at
    the start of a run).
    """

    time: int
    process: Process
    tag: str = GO_TRIGGER

    def __post_init__(self) -> None:
        if self.time < 1:
            raise ScheduleError(
                f"external inputs must be delivered at time >= 1, got {self.time}"
            )


@dataclass(frozen=True)
class Context:
    """The context ``gamma`` in which protocols operate."""

    timed_network: TimedNetwork
    description: str = ""

    @property
    def processes(self) -> Tuple[Process, ...]:
        return self.timed_network.processes

    def initial_processes(self) -> Tuple[Process, ...]:
        return self.timed_network.processes


def schedule(inputs: Iterable[Tuple[int, Process, str] | ExternalInput]) -> List[ExternalInput]:
    """Normalise a collection of external inputs into a sorted schedule.

    Accepts either :class:`ExternalInput` objects or ``(time, process, tag)``
    tuples.  The model assumes a given external message is delivered to at
    most one process in a run; duplicate ``(tag, process)`` pairs are allowed
    (they model distinct external messages with the same label) but duplicate
    exact triples are rejected as they are almost certainly a mistake.
    """
    normalised: List[ExternalInput] = []
    for item in inputs:
        if isinstance(item, ExternalInput):
            normalised.append(item)
        else:
            time, process, tag = item
            normalised.append(ExternalInput(int(time), process, str(tag)))
    triples = [(e.time, e.process, e.tag) for e in normalised]
    if len(triples) != len(set(triples)):
        raise ScheduleError("duplicate external inputs in schedule")
    return sorted(normalised)


def go_at(time: int, process: Process, tag: str = GO_TRIGGER) -> List[ExternalInput]:
    """A one-element schedule delivering the go trigger to ``process`` at ``time``."""
    return [ExternalInput(time, process, tag)]
