"""Exhaustive enumeration of the legal runs of a small context.

The bcm environment is nondeterministic: each message may be delivered at any
time inside its channel window.  For *small* networks and horizons it is
feasible to enumerate every legal schedule, which gives a ground-truth oracle
against which the analytical machinery (bounds graphs, knowledge, optimal
protocols) is validated in the test suite:

* Theorem 1 is checked by confirming that a zigzag's weight lower-bounds the
  head/tail gap in *every* enumerated run containing the pattern;
* Theorem 4 is checked by comparing the knowledge computed from the extended
  bounds graph with the minimum gap over all enumerated runs that are
  indistinguishable at the observing node.

The enumeration branches over the delivery delay of every message at the
moment it is sent.  Delays that would push delivery past the horizon are
collapsed into a single "still pending" choice, which keeps the enumeration
finite and free of duplicate prefixes.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.nodes import BasicNode
from .context import Context, ExternalInput, schedule
from .engine import Simulator, _InTransit
from .messages import History, LocalAction, Message
from .network import Process
from .protocols import ProtocolAssignment, StepContext
from .runs import DeliveryRecord, ExternalDeliveryRecord, Run, SendRecord

#: Sentinel delay meaning "the message is still in transit at the horizon".
_PENDING = None


class _State:
    """A snapshot of the enumeration: everything needed to continue a run."""

    __slots__ = (
        "histories",
        "timelines",
        "in_transit",
        "sends",
        "deliveries",
        "externals",
        "pending",
    )

    def __init__(
        self,
        histories: Dict[Process, History],
        timelines: Dict[Process, List[Tuple[int, BasicNode]]],
        in_transit: List[_InTransit],
        sends: List[SendRecord],
        deliveries: List[DeliveryRecord],
        externals: List[ExternalDeliveryRecord],
        pending: List[SendRecord],
    ):
        self.histories = histories
        self.timelines = timelines
        self.in_transit = in_transit
        self.sends = sends
        self.deliveries = deliveries
        self.externals = externals
        self.pending = pending

    def copy(self) -> "_State":
        return _State(
            dict(self.histories),
            {p: list(t) for p, t in self.timelines.items()},
            list(self.in_transit),
            list(self.sends),
            list(self.deliveries),
            list(self.externals),
            list(self.pending),
        )


def enumerate_runs(
    context: Context,
    protocols=None,
    external_inputs: Iterable[ExternalInput | Tuple[int, Process, str]] = (),
    horizon: int = 10,
    max_runs: Optional[int] = None,
) -> Iterator[Run]:
    """Yield every legal run of ``protocols`` in ``context`` up to ``horizon``.

    The number of runs is exponential in the number of messages; keep networks
    tiny (2--4 processes) and horizons short (<= ~10) or pass ``max_runs``.
    """
    from .engine import _normalise_protocols

    assignment = _normalise_protocols(
        protocols if protocols is not None else ProtocolAssignment()
    )
    net = context.timed_network
    external_schedule = schedule(external_inputs)
    externals_by_time: Dict[int, List[ExternalInput]] = {}
    for external in external_schedule:
        externals_by_time.setdefault(external.time, []).append(external)

    initial = _State(
        histories={p: History.initial(p) for p in net.processes},
        timelines={p: [(0, BasicNode.initial(p))] for p in net.processes},
        in_transit=[],
        sends=[],
        deliveries=[],
        externals=[],
        pending=[],
    )

    produced = 0

    def finish(state: _State) -> Run:
        return Run(
            context=context,
            horizon=horizon,
            timelines={p: tuple(t) for p, t in state.timelines.items()},
            sends=tuple(state.sends),
            deliveries=tuple(state.deliveries),
            external_deliveries=tuple(state.externals),
            pending=tuple(state.pending) + tuple(item.send for item in state.in_transit),
        )

    def expand(state: _State, now: int) -> Iterator[Run]:
        nonlocal produced
        if max_runs is not None and produced >= max_runs:
            return
        if now > horizon:
            produced += 1
            yield finish(state)
            return

        due = [item for item in state.in_transit if item.delivery_time == now]
        remaining = [item for item in state.in_transit if item.delivery_time != now]
        due_externals = externals_by_time.get(now, [])

        incoming: Dict[Process, Dict[str, list]] = {}
        for external in due_externals:
            incoming.setdefault(external.process, {"ext": [], "msg": []})["ext"].append(external)
        for item in due:
            incoming.setdefault(item.send.destination, {"ext": [], "msg": []})["msg"].append(item)

        state = state.copy()
        state.in_transit = remaining
        new_sends: List[SendRecord] = []
        for process in net.processes:
            if process not in incoming:
                continue
            slot = incoming[process]
            observations, delivered_items, delivered_externals = Simulator._build_observations(
                slot["ext"], slot["msg"]
            )
            previous = state.histories[process]
            ctx = StepContext(
                process=process,
                previous_history=previous,
                observations=observations,
                timed_network=net,
            )
            decision = assignment.for_process(process).on_step(ctx)
            step = observations + tuple(LocalAction(name) for name in decision.actions)
            new_history = previous.extend(step)
            state.histories[process] = new_history
            new_node = BasicNode(process, new_history)
            state.timelines[process].append((now, new_node))
            for item in delivered_items:
                state.deliveries.append(
                    DeliveryRecord(send=item.send, receiver_node=new_node, delivery_time=now)
                )
            for external in delivered_externals:
                state.externals.append(
                    ExternalDeliveryRecord(external=external, receiver_node=new_node)
                )
            destinations = Simulator._destinations(decision, process, net)
            if destinations:
                message = Message(
                    sender=process,
                    recipients=tuple(destinations),
                    sender_history=new_history,
                    payload=decision.payload,
                )
                for destination in destinations:
                    new_sends.append(
                        SendRecord(
                            message=message,
                            sender_node=new_node,
                            destination=destination,
                            send_time=now,
                        )
                    )

        state.sends.extend(new_sends)

        # Branch over the delivery delay of every message sent in this step.
        choice_lists: List[List[Optional[int]]] = []
        for record in new_sends:
            lower = net.L(record.sender, record.destination)
            upper = net.U(record.sender, record.destination)
            choices: List[Optional[int]] = [
                delay for delay in range(lower, upper + 1) if now + delay <= horizon
            ]
            if now + upper > horizon:
                choices.append(_PENDING)
            choice_lists.append(choices)

        if not choice_lists:
            yield from expand(state, now + 1)
            return

        for combination in itertools.product(*choice_lists):
            if max_runs is not None and produced >= max_runs:
                return
            branch = state.copy()
            for record, delay in zip(new_sends, combination):
                if delay is _PENDING:
                    branch.pending.append(record)
                else:
                    branch.in_transit.append(
                        _InTransit(send=record, delivery_time=now + delay)
                    )
            yield from expand(branch, now + 1)

    yield from expand(initial, 1)


def enumerate_indistinguishable_runs(
    context: Context,
    sigma: BasicNode,
    protocols=None,
    external_inputs: Iterable[ExternalInput | Tuple[int, Process, str]] = (),
    horizon: int = 10,
    max_runs: Optional[int] = None,
) -> Iterator[Run]:
    """Yield the enumerated runs in which the basic node ``sigma`` appears.

    These are exactly the runs indistinguishable from the current one at
    ``sigma`` (``r' ~sigma r``), restricted to the given external schedule and
    horizon.
    """
    for run in enumerate_runs(
        context,
        protocols=protocols,
        external_inputs=external_inputs,
        horizon=horizon,
        max_runs=max_runs,
    ):
        if run.appears(sigma):
            yield run
