"""Communication networks and transmission-time bounds for the bcm model.

The bounded communication model (bcm) of the paper is parameterised by a
directed network ``Net = (Procs, Chans)`` together with per-channel lower and
upper bounds ``L, U : Chans -> N`` on message transmission times, satisfying
``1 <= L_ij <= U_ij < infinity``.

This module provides :class:`Network` (the directed graph of processes and
channels), :class:`Bounds` (the L/U functions, extended to paths), and
:class:`TimedNetwork`, the pairing of the two that the rest of the library
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple

Process = str
Channel = Tuple[Process, Process]
Path = Tuple[Process, ...]


class NetworkError(ValueError):
    """Raised when a network, bound assignment, or path is malformed."""


def as_path(path: Sequence[Process]) -> Path:
    """Normalise a sequence of process names into a path tuple.

    A path is a non-empty sequence of process names.  A singleton path
    ``[i]`` denotes the trivial path that stays at process ``i``.
    """
    result = tuple(path)
    if not result:
        raise NetworkError("a path must contain at least one process")
    return result


def compose_paths(first: Sequence[Process], second: Sequence[Process]) -> Path:
    """Compose two paths whose endpoints coincide (the paper's ``p * q``).

    The last element of ``first`` must equal the first element of ``second``;
    the shared element appears once in the result.
    """
    p = as_path(first)
    q = as_path(second)
    if p[-1] != q[0]:
        raise NetworkError(
            f"cannot compose paths: {p} ends at {p[-1]!r} but {q} starts at {q[0]!r}"
        )
    return p + q[1:]


def concatenate_paths(first: Sequence[Process], second: Sequence[Process]) -> Path:
    """Concatenate two paths (the paper's ``p . q``), keeping both endpoints."""
    return as_path(first) + as_path(second)


@dataclass(frozen=True)
class Network:
    """A directed communication network ``Net = (Procs, Chans)``.

    Parameters
    ----------
    processes:
        The process names.  Order is preserved and used for deterministic
        iteration throughout the library.
    channels:
        Directed channels ``(i, j)`` meaning process ``i`` can send messages
        to process ``j``.  Self-channels are permitted (the paper uses them to
        model actions that extend over time).
    """

    processes: Tuple[Process, ...]
    channels: Tuple[Channel, ...]
    _out: Mapping[Process, Tuple[Process, ...]] = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )
    _in: Mapping[Process, Tuple[Process, ...]] = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __init__(self, processes: Iterable[Process], channels: Iterable[Channel]):
        procs = tuple(processes)
        if len(procs) != len(set(procs)):
            raise NetworkError("duplicate process names")
        if not procs:
            raise NetworkError("a network needs at least one process")
        chans = tuple((str(i), str(j)) for i, j in channels)
        proc_set = set(procs)
        seen = set()
        for i, j in chans:
            if i not in proc_set or j not in proc_set:
                raise NetworkError(f"channel ({i}, {j}) references unknown process")
            if (i, j) in seen:
                raise NetworkError(f"duplicate channel ({i}, {j})")
            seen.add((i, j))
        object.__setattr__(self, "processes", procs)
        object.__setattr__(self, "channels", chans)
        out: Dict[Process, list] = {p: [] for p in procs}
        incoming: Dict[Process, list] = {p: [] for p in procs}
        for i, j in chans:
            out[i].append(j)
            incoming[j].append(i)
        object.__setattr__(self, "_out", {p: tuple(v) for p, v in out.items()})
        object.__setattr__(self, "_in", {p: tuple(v) for p, v in incoming.items()})

    # -- basic queries -----------------------------------------------------

    def has_process(self, process: Process) -> bool:
        return process in self._out

    def has_channel(self, sender: Process, receiver: Process) -> bool:
        return (sender, receiver) in set(self.channels)

    def out_neighbors(self, process: Process) -> Tuple[Process, ...]:
        """Processes that ``process`` can send messages to."""
        self._require_process(process)
        return self._out[process]

    def in_neighbors(self, process: Process) -> Tuple[Process, ...]:
        """Processes that can send messages to ``process``."""
        self._require_process(process)
        return self._in[process]

    def _require_process(self, process: Process) -> None:
        if process not in self._out:
            raise NetworkError(f"unknown process {process!r}")

    # -- paths -------------------------------------------------------------

    def is_path(self, path: Sequence[Process]) -> bool:
        """Whether ``path`` is a walk in the network graph."""
        p = as_path(path)
        if any(not self.has_process(node) for node in p):
            return False
        channel_set = set(self.channels)
        return all((p[k], p[k + 1]) in channel_set for k in range(len(p) - 1))

    def validate_path(self, path: Sequence[Process]) -> Path:
        p = as_path(path)
        if not self.is_path(p):
            raise NetworkError(f"{p} is not a path in the network")
        return p

    def iter_paths(self, source: Process, max_hops: int) -> Iterator[Path]:
        """Yield every walk of at most ``max_hops`` hops starting at ``source``.

        Used by planners and exhaustive searches on small networks.  Walks may
        revisit processes (the paper's paths are arbitrary walks in ``Net``).
        """
        self._require_process(source)
        frontier: list[Path] = [(source,)]
        for _ in range(max_hops + 1):
            next_frontier: list[Path] = []
            for path in frontier:
                yield path
                for succ in self._out[path[-1]]:
                    next_frontier.append(path + (succ,))
            frontier = next_frontier
            if not frontier:
                return

    def __contains__(self, process: Process) -> bool:
        return self.has_process(process)

    def __len__(self) -> int:
        return len(self.processes)


@dataclass(frozen=True)
class Bounds:
    """Per-channel lower/upper transmission-time bounds ``L`` and ``U``.

    Bounds must satisfy ``1 <= L_ij <= U_ij`` for every channel.  The class
    also extends the bounds to paths: ``path_lower(p)`` is the sum of lower
    bounds along ``p`` (the paper's ``L(p)``) and ``path_upper(p)`` the sum of
    upper bounds (``U(p)``).
    """

    lower: Mapping[Channel, int]
    upper: Mapping[Channel, int]

    def __init__(
        self,
        lower: Mapping[Channel, int],
        upper: Mapping[Channel, int],
    ):
        lo = {(str(i), str(j)): int(v) for (i, j), v in dict(lower).items()}
        up = {(str(i), str(j)): int(v) for (i, j), v in dict(upper).items()}
        if set(lo) != set(up):
            raise NetworkError("lower and upper bounds must cover the same channels")
        for chan, l_value in lo.items():
            u_value = up[chan]
            if not 1 <= l_value <= u_value:
                raise NetworkError(
                    f"bounds for channel {chan} must satisfy 1 <= L <= U, "
                    f"got L={l_value}, U={u_value}"
                )
        object.__setattr__(self, "lower", lo)
        object.__setattr__(self, "upper", up)

    @classmethod
    def uniform(cls, channels: Iterable[Channel], lower: int, upper: int) -> "Bounds":
        """Assign the same ``(lower, upper)`` window to every channel."""
        chans = list(channels)
        return cls({c: lower for c in chans}, {c: upper for c in chans})

    @classmethod
    def from_pairs(cls, pairs: Mapping[Channel, Tuple[int, int]]) -> "Bounds":
        """Build bounds from ``{channel: (L, U)}`` pairs."""
        return cls(
            {c: lu[0] for c, lu in pairs.items()},
            {c: lu[1] for c, lu in pairs.items()},
        )

    def channels(self) -> Tuple[Channel, ...]:
        return tuple(self.lower)

    def L(self, sender: Process, receiver: Process) -> int:  # noqa: N802 (paper notation)
        """Lower bound ``L_ij`` for the channel ``(sender, receiver)``."""
        return self._lookup(self.lower, sender, receiver)

    def U(self, sender: Process, receiver: Process) -> int:  # noqa: N802 (paper notation)
        """Upper bound ``U_ij`` for the channel ``(sender, receiver)``."""
        return self._lookup(self.upper, sender, receiver)

    def window(self, sender: Process, receiver: Process) -> Tuple[int, int]:
        return self.L(sender, receiver), self.U(sender, receiver)

    def _lookup(self, table: Mapping[Channel, int], sender: Process, receiver: Process) -> int:
        try:
            return table[(sender, receiver)]
        except KeyError:
            raise NetworkError(f"no bounds declared for channel ({sender}, {receiver})") from None

    def path_lower(self, path: Sequence[Process]) -> int:
        """The paper's ``L(p)``: sum of lower bounds along the path."""
        p = as_path(path)
        return sum(self.L(p[k], p[k + 1]) for k in range(len(p) - 1))

    def path_upper(self, path: Sequence[Process]) -> int:
        """The paper's ``U(p)``: sum of upper bounds along the path."""
        p = as_path(path)
        return sum(self.U(p[k], p[k + 1]) for k in range(len(p) - 1))


@dataclass(frozen=True)
class TimedNetwork:
    """A network together with its transmission bounds: ``(Net, L, U)``."""

    network: Network
    bounds: Bounds

    def __post_init__(self) -> None:
        declared = set(self.bounds.channels())
        actual = set(self.network.channels)
        if declared != actual:
            missing = actual - declared
            extra = declared - actual
            raise NetworkError(
                "bounds must be declared for exactly the network channels; "
                f"missing={sorted(missing)}, extra={sorted(extra)}"
            )

    # Convenience pass-throughs so call sites read like the paper.
    @property
    def processes(self) -> Tuple[Process, ...]:
        return self.network.processes

    @property
    def channels(self) -> Tuple[Channel, ...]:
        return self.network.channels

    def L(self, sender: Process, receiver: Process) -> int:  # noqa: N802
        return self.bounds.L(sender, receiver)

    def U(self, sender: Process, receiver: Process) -> int:  # noqa: N802
        return self.bounds.U(sender, receiver)

    def path_lower(self, path: Sequence[Process]) -> int:
        self.network.validate_path(path)
        return self.bounds.path_lower(path)

    def path_upper(self, path: Sequence[Process]) -> int:
        self.network.validate_path(path)
        return self.bounds.path_upper(path)

    def out_neighbors(self, process: Process) -> Tuple[Process, ...]:
        return self.network.out_neighbors(process)

    def in_neighbors(self, process: Process) -> Tuple[Process, ...]:
        return self.network.in_neighbors(process)

    def is_path(self, path: Sequence[Process]) -> bool:
        return self.network.is_path(path)


def timed_network(
    channel_bounds: Mapping[Channel, Tuple[int, int]],
    processes: Iterable[Process] | None = None,
) -> TimedNetwork:
    """Build a :class:`TimedNetwork` from ``{(i, j): (L, U)}`` in one call.

    If ``processes`` is omitted, the process set is inferred from the channel
    endpoints (in first-appearance order).
    """
    chans = list(channel_bounds)
    if processes is None:
        seen: list[Process] = []
        for i, j in chans:
            if i not in seen:
                seen.append(i)
            if j not in seen:
                seen.append(j)
        procs: Iterable[Process] = seen
    else:
        procs = processes
    network = Network(procs, chans)
    bounds = Bounds.from_pairs(channel_bounds)
    return TimedNetwork(network, bounds)


def fully_connected(
    processes: Sequence[Process], lower: int = 1, upper: int = 1
) -> TimedNetwork:
    """A complete directed network (no self loops) with uniform bounds."""
    procs = list(processes)
    chans = [(i, j) for i in procs for j in procs if i != j]
    return TimedNetwork(Network(procs, chans), Bounds.uniform(chans, lower, upper))


def ring(processes: Sequence[Process], lower: int = 1, upper: int = 1) -> TimedNetwork:
    """A unidirectional ring network with uniform bounds."""
    procs = list(processes)
    if len(procs) < 2:
        raise NetworkError("a ring needs at least two processes")
    chans = [(procs[k], procs[(k + 1) % len(procs)]) for k in range(len(procs))]
    return TimedNetwork(Network(procs, chans), Bounds.uniform(chans, lower, upper))


def line(
    processes: Sequence[Process], lower: int = 1, upper: int = 1, bidirectional: bool = True
) -> TimedNetwork:
    """A line (path) network with uniform bounds."""
    procs = list(processes)
    if len(procs) < 2:
        raise NetworkError("a line needs at least two processes")
    chans = [(procs[k], procs[k + 1]) for k in range(len(procs) - 1)]
    if bidirectional:
        chans += [(procs[k + 1], procs[k]) for k in range(len(procs) - 1)]
    return TimedNetwork(Network(procs, chans), Bounds.uniform(chans, lower, upper))


def star(
    hub: Process, leaves: Sequence[Process], lower: int = 1, upper: int = 1
) -> TimedNetwork:
    """A star network: the hub has bidirectional channels to every leaf."""
    procs = [hub, *leaves]
    chans = [(hub, leaf) for leaf in leaves] + [(leaf, hub) for leaf in leaves]
    return TimedNetwork(Network(procs, chans), Bounds.uniform(chans, lower, upper))


def grid(
    rows: int,
    cols: int,
    lower: int = 1,
    upper: int = 1,
    wrap: bool = False,
) -> TimedNetwork:
    """A ``rows x cols`` mesh with bidirectional channels between neighbours.

    Processes are named ``r{row}c{col}`` in row-major order.  With ``wrap``
    the mesh closes on itself in both dimensions (a torus); wrap-around
    channels that would duplicate an existing channel or form a self loop
    (degenerate dimensions of size 1 or 2) are silently dropped.
    """
    if rows < 1 or cols < 1:
        raise NetworkError("a grid needs at least one row and one column")
    if rows * cols < 2:
        raise NetworkError("a grid needs at least two processes")

    def name(r: int, c: int) -> Process:
        return f"r{r}c{c}"

    procs = [name(r, c) for r in range(rows) for c in range(cols)]
    chans: Dict[Channel, None] = {}

    def connect(a: Process, b: Process) -> None:
        if a != b:
            chans[(a, b)] = None
            chans[(b, a)] = None

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                connect(name(r, c), name(r, c + 1))
            elif wrap:
                connect(name(r, c), name(r, 0))
            if r + 1 < rows:
                connect(name(r, c), name(r + 1, c))
            elif wrap:
                connect(name(r, c), name(0, c))
    channel_list = list(chans)
    return TimedNetwork(Network(procs, channel_list), Bounds.uniform(channel_list, lower, upper))


def torus(rows: int, cols: int, lower: int = 1, upper: int = 1) -> TimedNetwork:
    """A ``rows x cols`` grid with wrap-around channels in both dimensions."""
    return grid(rows, cols, lower=lower, upper=upper, wrap=True)


def tree(
    branching: int = 2, depth: int = 2, lower: int = 1, upper: int = 1
) -> TimedNetwork:
    """A rooted tree with bidirectional parent/child channels.

    The root is ``n0`` and nodes are numbered breadth-first, so level ``d``
    holds ``branching ** d`` processes and the whole tree
    ``(branching**(depth+1) - 1) / (branching - 1)`` of them.
    """
    if branching < 1:
        raise NetworkError("a tree needs a branching factor of at least one")
    if depth < 1:
        raise NetworkError("a tree needs depth at least one")
    procs: list[Process] = ["n0"]
    chans: list[Channel] = []
    frontier = ["n0"]
    counter = 1
    for _ in range(depth):
        next_frontier: list[Process] = []
        for parent in frontier:
            for _ in range(branching):
                child = f"n{counter}"
                counter += 1
                procs.append(child)
                chans.append((parent, child))
                chans.append((child, parent))
                next_frontier.append(child)
        frontier = next_frontier
    return TimedNetwork(Network(procs, chans), Bounds.uniform(chans, lower, upper))
